//! Batch-formation policy for the dynamic micro-batching scheduler.
//!
//! This module is pure decision logic — no threads, no channels — so the
//! batching invariants can be property-tested directly:
//!
//! * a batch never mixes databases (one dispatch = one `Database` handle,
//!   hence one revision);
//! * a batch never mixes config fingerprints or deadline classes;
//! * a batch never exceeds `max_batch` members;
//! * the linger window never pushes a member past its deadline — a seed
//!   that cannot comfortably afford the linger bypasses batching
//!   ([`BypassReason::Deadline`]), and a drained candidate that is
//!   incompatible or too close to its deadline stops formation and seeds
//!   the next dispatch ([`BypassReason::Mismatch`] / `Deadline`).
//!
//! The pool's worker loop drives this state machine against its shared
//! queue: dequeue a seed, ask [`BatchPolicy::seed_can_linger`], then feed
//! each further dequeued job through [`Formation::consider`] until the
//! batch is full, the linger expires, or a verdict says stop.

// The scheduler decides who waits for whom under a deadline — a stray
// unwrap here would turn a malformed edge case into a hung batch.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::time::Duration;

use codes::{config_fingerprint, Config, InferenceRequest};

/// Why a request was dispatched outside a multi-member batch (the
/// `reason` label of `codes_serve_batch_bypass_total`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BypassReason {
    /// The member's remaining deadline could not survive the linger
    /// window, so it was dispatched solo immediately.
    Deadline,
    /// A drained job was incompatible with the forming batch (different
    /// database, config fingerprint, or deadline class); it stops
    /// formation and becomes the seed of the next batch.
    Mismatch,
}

impl BypassReason {
    /// Metric label value.
    pub fn as_str(&self) -> &'static str {
        match self {
            BypassReason::Deadline => "deadline",
            BypassReason::Mismatch => "mismatch",
        }
    }
}

/// Batch-compatibility key: two queued requests may share a dispatch only
/// when every component matches. `db_id` pins the batch to one database
/// handle (hence one catalog revision at dispatch time), `config_fp`
/// pins the inference configuration, and `deadline_class` keeps members
/// whose remaining budgets are within 2× of each other together, so the
/// batch-wide deadline clamp cannot starve a member that would have run
/// comfortably solo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompatKey {
    /// Target database name.
    pub db_id: String,
    /// Fingerprint of the request's effective (pre-clamp) [`Config`].
    pub config_fp: u64,
    /// `floor(log2(remaining_ms))` bucket of the remaining budget.
    pub deadline_class: u32,
}

/// The deadline class of a remaining budget: `floor(log2(remaining_ms))`,
/// with everything below 1ms collapsed into class 0. Members of one class
/// have remaining budgets within a factor of two of each other.
pub fn deadline_class(remaining: Duration) -> u32 {
    let ms = (remaining.as_millis().min(u128::from(u64::MAX)) as u64).max(1);
    ms.ilog2()
}

/// The formation-relevant view of one queued job.
#[derive(Debug, Clone)]
pub struct MemberInfo {
    /// Compatibility key.
    pub key: CompatKey,
    /// Budget remaining when the job was examined (deadline minus time
    /// already spent queued).
    pub remaining: Duration,
}

impl MemberInfo {
    /// Build from a request, the pool's base config, and the job's
    /// remaining budget. The fingerprint covers the request's own config
    /// override when present, the pool default otherwise — *before* any
    /// deadline clamp, which is the deadline class's job to capture.
    pub fn of_request(
        request: &InferenceRequest,
        base: &Config,
        remaining: Duration,
    ) -> MemberInfo {
        let effective = request.config.unwrap_or(*base);
        MemberInfo {
            key: CompatKey {
                db_id: request.db_id.clone(),
                config_fp: config_fingerprint(&effective),
                deadline_class: deadline_class(remaining),
            },
            remaining,
        }
    }
}

/// Batching knobs (mirrors `ServeConfig::{max_batch, batch_linger}`).
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Largest batch a worker may form; 1 disables batching.
    pub max_batch: usize,
    /// How long a worker holding a seed waits for compatible followers.
    pub linger: Duration,
}

impl BatchPolicy {
    /// Whether a freshly dequeued seed can afford to wait out the linger
    /// window at all. Requires at least double the linger left on the
    /// seed's budget so the wait can never be the reason it misses its
    /// deadline. False also when batching is disabled (`max_batch <= 1`).
    pub fn seed_can_linger(&self, seed: &MemberInfo) -> bool {
        self.max_batch > 1 && seed.remaining > self.linger.saturating_mul(2)
    }
}

/// Verdict of [`Formation::consider`] for one drained candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The candidate joined the batch; keep draining while room remains.
    Joined,
    /// The candidate did not fit: dispatch the batch as formed, count a
    /// bypass under the given reason, and seed the next dispatch with
    /// the candidate.
    Stop(BypassReason),
}

/// Pure formation state: the compatibility key fixed by the seed plus the
/// running member count and tightest remaining budget.
#[derive(Debug, Clone)]
pub struct Formation {
    key: CompatKey,
    len: usize,
    min_remaining: Duration,
}

impl Formation {
    /// Start a batch around its seed.
    pub fn new(seed: MemberInfo) -> Formation {
        Formation { key: seed.key, len: 1, min_remaining: seed.remaining }
    }

    /// Members so far (seed included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always at least the seed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the batch reached `max_batch`.
    pub fn is_full(&self, policy: &BatchPolicy) -> bool {
        self.len >= policy.max_batch
    }

    /// Tightest remaining budget across members — the whole batch's
    /// config is clamped to (at most) this, so no member's deadline can
    /// be exceeded by the shared dispatch.
    pub fn min_remaining(&self) -> Duration {
        self.min_remaining
    }

    /// Offer a drained candidate to the batch.
    pub fn consider(&mut self, policy: &BatchPolicy, candidate: &MemberInfo) -> Verdict {
        if self.is_full(policy) {
            return Verdict::Stop(BypassReason::Mismatch);
        }
        if candidate.key != self.key {
            return Verdict::Stop(BypassReason::Mismatch);
        }
        // A compatible candidate with almost no budget left must not be
        // held for the rest of the window: stop and dispatch it solo next.
        if candidate.remaining <= policy.linger {
            return Verdict::Stop(BypassReason::Deadline);
        }
        self.len += 1;
        self.min_remaining = self.min_remaining.min(candidate.remaining);
        Verdict::Joined
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(db: &str, fp: u64, remaining_ms: u64) -> MemberInfo {
        MemberInfo {
            key: CompatKey {
                db_id: db.to_string(),
                config_fp: fp,
                deadline_class: deadline_class(Duration::from_millis(remaining_ms)),
            },
            remaining: Duration::from_millis(remaining_ms),
        }
    }

    #[test]
    fn deadline_classes_are_power_of_two_buckets() {
        assert_eq!(deadline_class(Duration::ZERO), 0);
        assert_eq!(deadline_class(Duration::from_millis(1)), 0);
        assert_eq!(deadline_class(Duration::from_millis(2)), 1);
        assert_eq!(deadline_class(Duration::from_millis(3)), 1);
        assert_eq!(deadline_class(Duration::from_millis(1000)), 9);
        assert_eq!(deadline_class(Duration::from_millis(1023)), 9);
        assert_eq!(deadline_class(Duration::from_millis(1024)), 10);
        assert_eq!(deadline_class(Duration::from_millis(2000)), 10);
    }

    #[test]
    fn seeds_without_linger_headroom_bypass() {
        let policy = BatchPolicy { max_batch: 4, linger: Duration::from_millis(2) };
        assert!(policy.seed_can_linger(&info("db", 1, 100)));
        assert!(!policy.seed_can_linger(&info("db", 1, 4)), "2x linger is not enough");
        assert!(!policy.seed_can_linger(&info("db", 1, 0)));
        let disabled = BatchPolicy { max_batch: 1, linger: Duration::from_millis(2) };
        assert!(!disabled.seed_can_linger(&info("db", 1, 100)));
    }

    #[test]
    fn formation_rejects_mismatches_and_respects_capacity() {
        let policy = BatchPolicy { max_batch: 3, linger: Duration::from_millis(2) };
        let mut f = Formation::new(info("bank", 7, 900));
        assert_eq!(f.consider(&policy, &info("retail", 7, 900)), Verdict::Stop(BypassReason::Mismatch));
        assert_eq!(f.consider(&policy, &info("bank", 8, 900)), Verdict::Stop(BypassReason::Mismatch));
        assert_eq!(f.consider(&policy, &info("bank", 7, 90)), Verdict::Stop(BypassReason::Mismatch), "deadline class differs");
        assert_eq!(f.consider(&policy, &info("bank", 7, 800)), Verdict::Joined);
        assert_eq!(f.consider(&policy, &info("bank", 7, 700)), Verdict::Joined);
        assert!(f.is_full(&policy));
        assert_eq!(f.consider(&policy, &info("bank", 7, 600)), Verdict::Stop(BypassReason::Mismatch));
        assert_eq!(f.len(), 3);
        assert_eq!(f.min_remaining(), Duration::from_millis(700));
    }

    #[test]
    fn starved_candidates_stop_formation_with_deadline_reason() {
        let policy = BatchPolicy { max_batch: 4, linger: Duration::from_millis(50) };
        // Same class as the seed but with less than one linger left.
        let mut f = Formation::new(info("bank", 7, 100));
        let mut starving = info("bank", 7, 40);
        starving.key.deadline_class = f.key.deadline_class;
        assert_eq!(f.consider(&policy, &starving), Verdict::Stop(BypassReason::Deadline));
    }
}
