//! An inverted-index BM25 engine — the Lucene substitute behind the
//! coarse-grained value search of §6.2.

use std::collections::HashMap;

use codes_nlp::words;

/// BM25 hyper-parameters (Lucene defaults).
const K1: f64 = 1.2;
const B: f64 = 0.75;

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index of the document, in insertion order.
    pub doc: usize,
    /// BM25 relevance score.
    pub score: f64,
}

/// An inverted-index BM25 scorer over tokenized documents.
#[derive(Debug, Default)]
pub struct Bm25Index {
    /// term -> postings (doc id, term frequency)
    postings: HashMap<String, Vec<(u32, u32)>>,
    doc_lens: Vec<u32>,
    total_len: u64,
}

impl Bm25Index {
    /// An empty index.
    pub fn new() -> Bm25Index {
        Bm25Index::default()
    }

    /// Add a document; returns its id.
    pub fn add_document(&mut self, text: &str) -> usize {
        let id = self.doc_lens.len() as u32;
        let tokens = words(text);
        let mut tf: HashMap<String, u32> = HashMap::new();
        for t in &tokens {
            *tf.entry(t.clone()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            self.postings.entry(term).or_default().push((id, count));
        }
        self.doc_lens.push(tokens.len() as u32);
        self.total_len += tokens.len() as u64;
        id as usize
    }

    /// Number of indexed documents.
    pub fn len(&self) -> usize {
        self.doc_lens.len()
    }

    /// True when no documents are indexed.
    pub fn is_empty(&self) -> bool {
        self.doc_lens.is_empty()
    }

    /// BM25 search: returns up to `top_k` hits sorted by descending score.
    /// Documents sharing no term with the query are never returned.
    pub fn search(&self, query: &str, top_k: usize) -> Vec<SearchHit> {
        if self.doc_lens.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let n = self.doc_lens.len() as f64;
        let avg_len = self.total_len as f64 / n;
        let mut scores: HashMap<u32, f64> = HashMap::new();
        // Deduplicate query terms but keep multiplicity as a weight.
        let mut qtf: HashMap<String, u32> = HashMap::new();
        for t in words(query) {
            *qtf.entry(t).or_insert(0) += 1;
        }
        for (term, q_count) in qtf {
            let Some(posts) = self.postings.get(&term) else {
                continue;
            };
            let df = posts.len() as f64;
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for &(doc, tf) in posts {
                let dl = self.doc_lens[doc as usize] as f64;
                let tf = tf as f64;
                let norm = tf * (K1 + 1.0) / (tf + K1 * (1.0 - B + B * dl / avg_len));
                *scores.entry(doc).or_insert(0.0) += idf * norm * q_count as f64;
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc: doc as usize, score })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.doc.cmp(&b.doc)));
        hits.truncate(top_k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> Bm25Index {
        let mut idx = Bm25Index::new();
        for doc in [
            "Jesenik",                   // 0
            "Praha east branch",         // 1
            "Jablonec nad Nisou",        // 2
            "south Jesenik district",    // 3
            "completely unrelated text", // 4
        ] {
            idx.add_document(doc);
        }
        idx
    }

    #[test]
    fn exact_term_ranks_first() {
        let idx = index();
        let hits = idx.search("clients opened accounts in Jesenik branch", 3);
        assert!(!hits.is_empty());
        // Both Jesenik docs should appear before unrelated docs.
        let docs: Vec<usize> = hits.iter().map(|h| h.doc).collect();
        assert!(docs.contains(&0));
        assert!(docs.contains(&3));
        assert!(!docs.contains(&4));
    }

    #[test]
    fn shorter_documents_score_higher_for_same_match() {
        let idx = index();
        let hits = idx.search("Jesenik", 5);
        assert_eq!(hits[0].doc, 0, "bare 'Jesenik' should beat the longer doc");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn no_shared_terms_returns_empty() {
        let idx = index();
        assert!(idx.search("zzz qqq", 10).is_empty());
    }

    #[test]
    fn top_k_truncation() {
        let idx = index();
        let hits = idx.search("branch district east", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rare_terms_outweigh_common_terms() {
        let mut idx = Bm25Index::new();
        for _ in 0..50 {
            idx.add_document("common filler words");
        }
        idx.add_document("common rarity");
        let hits = idx.search("rarity", 3);
        assert_eq!(hits[0].doc, 50);
    }

    #[test]
    fn empty_index_is_safe() {
        let idx = Bm25Index::new();
        assert!(idx.search("anything", 5).is_empty());
        assert!(idx.is_empty());
    }
}
