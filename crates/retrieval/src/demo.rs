//! Question-pattern-aware demonstration retriever (§8.2).
//!
//! Scores a training question `d` against a test question `t` with Eq. 4:
//! `max(sentsim(t, d), sentsim(pattern(t), pattern(d)))`, where `pattern`
//! strips entities. The pattern term prevents the retriever from fixating
//! on shared entities ("singers and songs") and instead surfaces
//! structurally similar demonstrations.

use codes_nlp::{question_pattern, Embedder};

/// A retrievable demonstration: pre-embedded question and pattern.
struct DemoEntry {
    question_vec: Vec<f32>,
    pattern_vec: Vec<f32>,
}

/// Retrieval strategy, exposed so the Table 9 ablations can switch off the
/// pattern term or the retriever entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DemoStrategy {
    /// Eq. 4: max of question similarity and pattern similarity.
    #[default]
    PatternAware,
    /// Question similarity only (`-w/o pattern similarity`).
    QuestionOnly,
    /// Deterministic pseudo-random selection (`-w/o demonstration
    /// retriever`), seeded by the query text.
    Random,
}

/// Pre-indexed retriever over a pool of training questions.
pub struct DemoRetriever {
    embedder: Embedder,
    entries: Vec<DemoEntry>,
}

impl DemoRetriever {
    /// Index `questions` with the given embedder.
    pub fn new(embedder: Embedder, questions: &[String]) -> DemoRetriever {
        let entries = questions
            .iter()
            .map(|q| DemoEntry {
                question_vec: embedder.embed(q),
                pattern_vec: embedder.embed(&question_pattern(q)),
            })
            .collect();
        DemoRetriever { embedder, entries }
    }

    /// Number of indexed demonstrations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Return the indices of the top-`k` demonstrations for `question`.
    pub fn retrieve(&self, question: &str, k: usize, strategy: DemoStrategy) -> Vec<usize> {
        if self.entries.is_empty() || k == 0 {
            return Vec::new();
        }
        match strategy {
            DemoStrategy::Random => {
                // Deterministic but question-dependent: hash-stride walk.
                let n = self.entries.len();
                let seed = question.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
                let mut out = Vec::with_capacity(k.min(n));
                let stride = (seed as usize % n.max(1)).max(1) | 1;
                let mut pos = seed as usize % n;
                let mut seen = std::collections::HashSet::new();
                while out.len() < k.min(n) {
                    if seen.insert(pos) {
                        out.push(pos);
                    }
                    pos = (pos + stride) % n;
                    if seen.len() >= n {
                        break;
                    }
                }
                out
            }
            DemoStrategy::QuestionOnly | DemoStrategy::PatternAware => {
                let qv = self.embedder.embed(question);
                let pv = self.embedder.embed(&question_pattern(question));
                let mut scored: Vec<(usize, f32)> = self
                    .entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| {
                        let qsim = codes_nlp::cosine(&qv, &e.question_vec);
                        let score = match strategy {
                            DemoStrategy::QuestionOnly => qsim,
                            _ => qsim.max(codes_nlp::cosine(&pv, &e.pattern_vec)),
                        };
                        (i, score)
                    })
                    .collect();
                // total_cmp: cosine over degenerate embeddings can yield
                // NaN, which must order deterministically, not panic.
                scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                scored.truncate(k);
                scored.into_iter().map(|(i, _)| i).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codes_nlp::EmbedderBuilder;

    fn pool() -> Vec<String> {
        vec![
            "Show the names of singers born in 1948 or 1949".to_string(), // 0
            "Show the names of members from either 'United States' or 'Canada'".to_string(), // 1
            "Which artist sang the most songs?".to_string(),              // 2
            "What is the total capacity of all stadiums?".to_string(),    // 3
            "List every concert held in 2014".to_string(),                // 4
        ]
    }

    fn retriever() -> DemoRetriever {
        let questions = pool();
        let mut b = EmbedderBuilder::new();
        for q in &questions {
            b.observe(q);
        }
        DemoRetriever::new(b.build(512), &questions)
    }

    #[test]
    fn pattern_similarity_rescues_structural_matches() {
        let r = retriever();
        // The paper's example: an "X or Y" disjunction question should rank
        // the structurally identical members-question (demo 1) higher once
        // pattern similarity participates in the max of Eq. 4.
        let q = "Find the singers born in 1975 or 1976";
        let with_pattern = r.retrieve(q, 5, DemoStrategy::PatternAware);
        let without = r.retrieve(q, 5, DemoStrategy::QuestionOnly);
        let rank = |order: &[usize], target: usize| order.iter().position(|&i| i == target).unwrap();
        assert!(
            rank(&with_pattern, 1) <= rank(&without, 1),
            "pattern-aware {with_pattern:?} should not rank demo 1 below question-only {without:?}"
        );
        // The near-duplicate question (demo 0) stays on top either way.
        assert_eq!(with_pattern[0], 0);
    }

    #[test]
    fn question_only_prefers_entity_overlap() {
        let r = retriever();
        let q = "Which singer sang the most songs in stadium concerts?";
        let top = r.retrieve(q, 1, DemoStrategy::QuestionOnly);
        assert_eq!(top, vec![2]);
    }

    #[test]
    fn random_strategy_is_deterministic_per_question() {
        let r = retriever();
        let a = r.retrieve("some question", 3, DemoStrategy::Random);
        let b = r.retrieve("some question", 3, DemoStrategy::Random);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        let c = r.retrieve("another question", 3, DemoStrategy::Random);
        // Usually different (not guaranteed, but for these strings it is).
        assert_ne!(a, c);
    }

    #[test]
    fn k_larger_than_pool_returns_all() {
        let r = retriever();
        assert_eq!(r.retrieve("capacity", 99, DemoStrategy::PatternAware).len(), 5);
        assert_eq!(r.retrieve("capacity", 99, DemoStrategy::Random).len(), 5);
    }

    #[test]
    fn empty_pool_is_safe() {
        let r = DemoRetriever::new(codes_nlp::Embedder::untrained(64), &[]);
        assert!(r.retrieve("q", 3, DemoStrategy::PatternAware).is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn results_are_unique_indices() {
        let r = retriever();
        for strat in [DemoStrategy::PatternAware, DemoStrategy::QuestionOnly, DemoStrategy::Random] {
            let got = r.retrieve("total stadium capacity", 5, strat);
            let set: std::collections::HashSet<_> = got.iter().collect();
            assert_eq!(set.len(), got.len(), "{strat:?} returned duplicates: {got:?}");
        }
    }
}
