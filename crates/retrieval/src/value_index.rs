//! The coarse-to-fine value retriever of §6.2.
//!
//! Coarse stage: a BM25 index over every distinct text value in the
//! database pulls a few hundred candidates for a question. Fine stage: the
//! longest-common-substring matching degree re-ranks those candidates, and
//! the best matches per column are serialized into the database prompt as
//! `table.column = 'value'` hints.

use std::sync::{Arc, OnceLock};

use codes_cache::{CacheConfig, ShardedCache};
use codes_nlp::match_degree;
use sqlengine::Database;

use crate::bm25::Bm25Index;

/// A question-matched database value.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueMatch {
    /// Table holding the value.
    pub table: String,
    /// Column holding the value.
    pub column: String,
    /// The stored value text.
    pub value: String,
    /// LCS matching degree in [0, 1].
    pub degree: f64,
}

impl ValueMatch {
    /// Prompt rendering: `table.column = 'value'`.
    pub fn render(&self) -> String {
        format!("{}.{} = '{}'", self.table, self.column, self.value.replace('\'', "''"))
    }
}

/// Pre-built index over all distinct text values of one database.
pub struct ValueIndex {
    index: Bm25Index,
    entries: Vec<(String, String, String)>, // (table, column, value)
    built_revision: u64,
}

impl ValueIndex {
    /// Index every distinct text value of `db`.
    pub fn build(db: &Database) -> ValueIndex {
        let mut index = Bm25Index::new();
        let entries = db.text_values();
        for (_, _, value) in &entries {
            index.add_document(value);
        }
        ValueIndex { index, entries, built_revision: db.revision() }
    }

    /// The catalog revision this index was built from. An index is current
    /// for `db` iff `built_revision == db.revision()`; any mismatch means
    /// the database mutated since the build and the index must be rebuilt.
    pub fn built_revision(&self) -> u64 {
        self.built_revision
    }

    /// Number of indexed values.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the database had no text values.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Coarse-to-fine retrieval: BM25 narrows the candidate set to
    /// `coarse_k` values, LCS re-ranks them, and the best `fine_k` distinct
    /// (table, column) matches with degree >= `min_degree` are returned.
    pub fn retrieve(&self, question: &str, coarse_k: usize, fine_k: usize, min_degree: f64) -> Vec<ValueMatch> {
        let hits = self.index.search(question, coarse_k);
        let mut matches: Vec<ValueMatch> = hits
            .into_iter()
            .map(|h| {
                let (table, column, value) = &self.entries[h.doc];
                ValueMatch {
                    table: table.clone(),
                    column: column.clone(),
                    value: value.clone(),
                    degree: match_degree(question, value),
                }
            })
            .filter(|m| m.degree >= min_degree)
            .collect();
        rank_and_dedupe(&mut matches);
        matches.truncate(fine_k);
        matches
    }

    /// Reference implementation without the coarse filter: LCS over every
    /// value. Same output contract as [`ValueIndex::retrieve`]; used by the
    /// §6.2 speedup benchmark and the correctness tests.
    pub fn retrieve_exhaustive(&self, question: &str, fine_k: usize, min_degree: f64) -> Vec<ValueMatch> {
        let mut matches: Vec<ValueMatch> = self
            .entries
            .iter()
            .map(|(table, column, value)| ValueMatch {
                table: table.clone(),
                column: column.clone(),
                value: value.clone(),
                degree: match_degree(question, value),
            })
            .filter(|m| m.degree >= min_degree)
            .collect();
        rank_and_dedupe(&mut matches);
        matches.truncate(fine_k);
        matches
    }
}

/// Process-wide BM25 index cache, keyed by catalog revision. Revisions are
/// globally unique per mutation-state (see [`Database::revision`]), so two
/// callers asking for the same unchanged database share one build — and a
/// mutated database misses and rebuilds, because mutation stamped it with a
/// token nothing has indexed yet.
fn index_cache() -> &'static ShardedCache<u64, Arc<ValueIndex>> {
    static CACHE: OnceLock<ShardedCache<u64, Arc<ValueIndex>>> = OnceLock::new();
    CACHE.get_or_init(|| {
        ShardedCache::with_metrics(
            CacheConfig { capacity: 128, shards: 4, ttl: None },
            &codes_obs::global(),
            "bm25_index",
        )
    })
}

/// Build — or reuse — the value index for `db`. Concurrent callers asking
/// for the same revision are single-flighted onto one build; repeat calls
/// for an unchanged database return the existing `Arc` without touching the
/// row store.
pub fn shared_value_index(db: &Database) -> Arc<ValueIndex> {
    index_cache().get_or_compute(db.revision(), || Arc::new(ValueIndex::build(db)))
}

/// Sort by degree descending (ties: longer value first — more specific),
/// keeping only the best match per (table, column).
fn rank_and_dedupe(matches: &mut Vec<ValueMatch>) {
    matches.sort_by(|a, b| {
        b.degree
            .total_cmp(&a.degree)
            .then(b.value.len().cmp(&a.value.len()))
            .then(a.table.cmp(&b.table))
            .then(a.column.cmp(&b.column))
            .then(a.value.cmp(&b.value))
    });
    let mut seen = std::collections::HashSet::new();
    matches.retain(|m| seen.insert((m.table.clone(), m.column.clone())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::database_from_script;

    fn bank_db() -> Database {
        database_from_script(
            "bank",
            r#"
            CREATE TABLE district (
                district_id INTEGER PRIMARY KEY,
                a2 TEXT COMMENT 'district name',
                a3 TEXT COMMENT 'region'
            );
            CREATE TABLE client (
                client_id INTEGER PRIMARY KEY,
                gender TEXT,
                district_id INTEGER REFERENCES district(district_id)
            );
            INSERT INTO district VALUES
                (1, 'Jesenik', 'north Moravia'),
                (2, 'Praha', 'Prague'),
                (3, 'Jablonec nad Nisou', 'north Bohemia'),
                (4, 'Pisek', 'south Bohemia');
            INSERT INTO client VALUES (1, 'F', 1), (2, 'M', 1), (3, 'F', 2);
            "#,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_retrieves_jesenik() {
        let db = bank_db();
        let idx = ValueIndex::build(&db);
        let matches = idx.retrieve(
            "How many clients opened their accounts in Jesenik branch were women?",
            100,
            5,
            0.5,
        );
        assert!(!matches.is_empty());
        assert_eq!(matches[0].value, "Jesenik");
        assert_eq!(matches[0].table, "district");
        assert_eq!(matches[0].column, "a2");
        assert!((matches[0].degree - 1.0).abs() < 1e-12);
        assert_eq!(matches[0].render(), "district.a2 = 'Jesenik'");
    }

    #[test]
    fn coarse_to_fine_matches_exhaustive_on_hits() {
        let db = bank_db();
        let idx = ValueIndex::build(&db);
        let q = "accounts in Jesenik branch";
        let fast = idx.retrieve(q, 100, 3, 0.5);
        let slow = idx.retrieve_exhaustive(q, 3, 0.5);
        assert_eq!(fast, slow);
    }

    #[test]
    fn min_degree_filters_weak_matches() {
        let db = bank_db();
        let idx = ValueIndex::build(&db);
        let matches = idx.retrieve("north side", 100, 10, 0.99);
        assert!(matches.iter().all(|m| m.degree >= 0.99));
    }

    #[test]
    fn one_match_per_column() {
        let db = bank_db();
        let idx = ValueIndex::build(&db);
        // Both 'north Moravia' and 'north Bohemia' are in a3; only the best
        // should survive.
        let matches = idx.retrieve("north Moravia", 100, 10, 0.3);
        let a3: Vec<_> = matches.iter().filter(|m| m.column == "a3").collect();
        assert_eq!(a3.len(), 1);
        assert_eq!(a3[0].value, "north Moravia");
    }

    #[test]
    fn numeric_columns_not_indexed() {
        let db = bank_db();
        let idx = ValueIndex::build(&db);
        // district_id values are integers; only text values are indexed:
        // 4 a2 + 4 a3 + 2 gender (F/M distinct)
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn shared_index_reuses_until_the_database_mutates() {
        let mut db = bank_db();
        let first = shared_value_index(&db);
        let again = shared_value_index(&db);
        assert!(Arc::ptr_eq(&first, &again), "unchanged database shares one build");
        assert_eq!(first.built_revision(), db.revision());

        // Any catalog mutation stamps a fresh revision; the next request
        // rebuilds rather than serving the stale index.
        db.table_mut("client")
            .unwrap()
            .insert(vec![4.into(), "F".into(), 3.into()])
            .unwrap();
        let rebuilt = shared_value_index(&db);
        assert!(!Arc::ptr_eq(&first, &rebuilt));
        assert_eq!(rebuilt.built_revision(), db.revision());
    }

    #[test]
    fn render_escapes_quotes() {
        let m = ValueMatch {
            table: "t".into(),
            column: "c".into(),
            value: "O'Brien".into(),
            degree: 1.0,
        };
        assert_eq!(m.render(), "t.c = 'O''Brien'");
    }
}
