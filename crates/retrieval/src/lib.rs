#![warn(missing_docs)]
// Non-test code must surface failures as values, not unwrap panics — the
// retrieval substrates sit on serving and evaluation hot paths (same policy
// as sqlengine's exec/engine modules).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # codes-retrieval
//!
//! Retrieval substrates for the CodeS reproduction:
//!
//! * [`bm25`] — a from-scratch inverted-index BM25 engine (the Lucene
//!   substitute of §6.2);
//! * [`value_index`] — the coarse-to-fine (BM25 → LCS) database value
//!   retriever that feeds `table.column = 'value'` hints into prompts;
//! * [`demo`] — the question-pattern-aware demonstration retriever used by
//!   few-shot in-context learning (§8.2, Eq. 4).

pub mod bm25;
pub mod demo;
pub mod value_index;

pub use bm25::{Bm25Index, SearchHit};
pub use demo::{DemoRetriever, DemoStrategy};
pub use value_index::{shared_value_index, ValueIndex, ValueMatch};
