//! Property tests for histogram correctness: exact count/sum bookkeeping
//! for arbitrary sample sets, quantile estimates pinned inside the
//! containing bucket, and lossless concurrent recording.

use proptest::prelude::*;
use std::sync::Arc;

use codes_obs::{Histogram, BUCKET_BOUNDS_NS};

/// The bucket index `record_ns` files a sample under (reference model).
fn expected_bucket(ns: u64) -> usize {
    BUCKET_BOUNDS_NS.iter().position(|&bound| ns <= bound).unwrap_or(BUCKET_BOUNDS_NS.len())
}

/// `(lower, upper]` bounds of the bucket containing the rank-`r` sample
/// of `sorted`, with the overflow bucket capped by the observed maximum.
fn containing_bucket_bounds(sorted: &[u64], rank: usize) -> (f64, f64) {
    let sample = sorted[rank - 1];
    let idx = expected_bucket(sample);
    let lower = if idx == 0 { 0 } else { BUCKET_BOUNDS_NS[idx - 1] };
    let upper = if idx < BUCKET_BOUNDS_NS.len() {
        BUCKET_BOUNDS_NS[idx]
    } else {
        (*sorted.last().expect("non-empty")).max(lower + 1)
    };
    (lower as f64, upper as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn count_and_sum_are_exact(samples in prop::collection::vec(0u64..200_000_000_000, 1..200)) {
        let h = Histogram::default();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum_ns, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.min_ns, *samples.iter().min().expect("non-empty"));
        prop_assert_eq!(snap.max_ns, *samples.iter().max().expect("non-empty"));
        // Every sample is filed under exactly one bucket.
        prop_assert_eq!(snap.counts.iter().sum::<u64>(), samples.len() as u64);
        for &ns in &samples {
            prop_assert!(snap.counts[expected_bucket(ns)] > 0);
        }
    }

    #[test]
    fn quantile_estimates_stay_inside_containing_bucket(
        samples in prop::collection::vec(0u64..200_000_000_000, 1..200)
    ) {
        let h = Histogram::default();
        for &ns in &samples {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for q in [0.50, 0.95, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let (lower, upper) = containing_bucket_bounds(&sorted, rank);
            let est = snap.quantile_ns(q).expect("non-empty histogram");
            prop_assert!(
                est > lower && est <= upper,
                "q={} est={} not in ({}, {}] (rank {} of {:?})",
                q, est, lower, upper, rank, sorted
            );
        }
    }
}

#[test]
fn concurrent_recording_from_8_threads_loses_no_samples() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::default());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread samples across many buckets, deterministic per thread.
                    h.record_ns((t * PER_THREAD + i) * 37_003 % 150_000_000_000);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("recorder thread never panics");
    }
    let snap = h.snapshot();
    let expected_sum: u64 =
        (0..THREADS * PER_THREAD).map(|i| i * 37_003 % 150_000_000_000).sum();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.sum_ns, expected_sum);
    assert_eq!(snap.counts.iter().sum::<u64>(), THREADS * PER_THREAD);
}
