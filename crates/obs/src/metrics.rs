//! Counters, gauges, fixed-bucket histograms, and the [`Registry`] that
//! owns them (plus the Prometheus text encoder).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::trace::TraceRing;

/// Histogram bucket upper bounds in nanoseconds: a {1, 2, 5} ladder per
/// decade from 1 µs to 100 s. Values above the last bound fall into an
/// implicit overflow bucket whose effective upper bound is the observed
/// maximum.
pub const BUCKET_BOUNDS_NS: [u64; 25] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    200_000_000,
    500_000_000,
    1_000_000_000,
    2_000_000_000,
    5_000_000_000,
    10_000_000_000,
    20_000_000_000,
    50_000_000_000,
    100_000_000_000,
];

/// Monotonic counter. Increment-only; wrap-around is not a concern at
/// `u64` scale.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn inc_by(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (may go up and down).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (use a negative `n` to subtract).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket latency histogram over nanosecond samples.
///
/// Recording is lock-free: one `fetch_add` on the containing bucket plus
/// count/sum, and `fetch_min`/`fetch_max` for the extremes — concurrent
/// recorders never lose samples. `count` and `sum` are exact; quantiles
/// are estimated from the bucket layout (see
/// [`HistogramSnapshot::quantile_ns`]).
#[derive(Debug)]
pub struct Histogram {
    // One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..=BUCKET_BOUNDS_NS.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record a raw nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS.partition_point(|&bound| bound < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a duration.
    pub fn record(&self, d: Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Record a duration expressed in seconds (negative values clamp to 0).
    pub fn record_seconds(&self, secs: f64) {
        self.record_ns((secs.max(0.0) * 1e9) as u64);
    }

    /// Point-in-time copy of all bucket state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state, with quantile estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; the final slot is the overflow bucket.
    pub counts: Vec<u64>,
    /// Exact number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest sample (0 when empty).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 < q <= 1.0`) in nanoseconds, or
    /// `None` when no samples have been recorded.
    ///
    /// Walks buckets to the one containing the rank `ceil(q * count)`
    /// sample, then interpolates linearly inside it. The estimate is
    /// guaranteed to lie within the containing bucket's `(lower, upper]`
    /// bounds; for the overflow bucket the upper bound is the observed
    /// maximum.
    pub fn quantile_ns(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lower = if i == 0 { 0 } else { BUCKET_BOUNDS_NS[i - 1] };
                let upper = if i < BUCKET_BOUNDS_NS.len() {
                    BUCKET_BOUNDS_NS[i]
                } else {
                    // Overflow bucket: the observed max bounds it.
                    self.max_ns.max(lower + 1)
                };
                let frac = (rank - seen) as f64 / n as f64;
                return Some(lower as f64 + (upper - lower) as f64 * frac);
            }
            seen += n;
        }
        // count > 0 guarantees the walk finds a bucket; keep a total
        // fallback rather than panicking inside instrumentation.
        Some(self.max_ns as f64)
    }

    /// Estimate the `q`-quantile in seconds.
    pub fn quantile_seconds(&self, q: f64) -> Option<f64> {
        self.quantile_ns(q).map(|ns| ns / 1e9)
    }

    /// Mean sample in seconds (`None` when empty).
    pub fn mean_seconds(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum_ns as f64 / self.count as f64 / 1e9)
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    fn render_labels(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Owns every metric and the span trace ring. Cheap to share via `Arc`;
/// registration takes a write lock once per distinct (name, labels) pair,
/// after which callers hold `Arc`s to the hot atomics directly.
#[derive(Debug)]
pub struct Registry {
    counters: RwLock<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<MetricKey, Arc<Histogram>>>,
    pub(crate) ring: TraceRing,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Fresh, empty registry (tests; production uses [`crate::global`]).
    pub fn new() -> Registry {
        Registry {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            ring: TraceRing::new(),
        }
    }

    /// Get-or-create the counter for `(name, labels)`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        if let Some(c) = self.counters.read().get(&key) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(key).or_default())
    }

    /// Get-or-create the gauge for `(name, labels)`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        if let Some(g) = self.gauges.read().get(&key) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(key).or_default())
    }

    /// Get-or-create the histogram for `(name, labels)`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        if let Some(h) = self.histograms.read().get(&key) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(key).or_default())
    }

    /// Render every metric in Prometheus text exposition format.
    ///
    /// Histograms record nanoseconds internally but are exported in
    /// seconds (bucket `le` bounds included), matching the `_seconds`
    /// suffix convention.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = String::new();

        for (key, counter) in self.counters.read().iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} counter\n", key.name));
                last_name.clone_from(&key.name);
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.render_labels(), counter.get()));
        }
        last_name.clear();
        for (key, gauge) in self.gauges.read().iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} gauge\n", key.name));
                last_name.clone_from(&key.name);
            }
            out.push_str(&format!("{}{} {}\n", key.name, key.render_labels(), gauge.get()));
        }
        last_name.clear();
        for (key, hist) in self.histograms.read().iter() {
            if key.name != last_name {
                out.push_str(&format!("# TYPE {} histogram\n", key.name));
                last_name.clone_from(&key.name);
            }
            let snap = hist.snapshot();
            let mut cumulative = 0u64;
            for (i, &bucket_count) in snap.counts.iter().enumerate() {
                cumulative += bucket_count;
                let le = if i < BUCKET_BOUNDS_NS.len() {
                    format!("{}", BUCKET_BOUNDS_NS[i] as f64 / 1e9)
                } else {
                    "+Inf".to_string()
                };
                let mut labels = key.labels.clone();
                labels.push(("le".to_string(), le));
                let rendered = MetricKey { name: String::new(), labels }.render_labels();
                out.push_str(&format!("{}_bucket{} {}\n", key.name, rendered, cumulative));
            }
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                key.render_labels(),
                snap.sum_ns as f64 / 1e9
            ));
            out.push_str(&format!("{}_count{} {}\n", key.name, key.render_labels(), snap.count));
        }
        out
    }

    /// `(labels, value)` for every counter sharing `name` (label order as
    /// registered). Lets callers fold a labeled counter family into a
    /// snapshot without knowing the label values up front.
    pub fn counters_by_name(&self, name: &str) -> Vec<(Vec<(String, String)>, u64)> {
        self.counters
            .read()
            .iter()
            .filter(|(key, _)| key.name == name)
            .map(|(key, counter)| (key.labels.clone(), counter.get()))
            .collect()
    }

    /// Snapshots of every histogram sharing `name`, keyed by the value of
    /// `label` (e.g. all `codes_stage_duration_seconds` broken out by
    /// `stage`). Missing label values key under `""`.
    pub fn histograms_by_label(&self, name: &str, label: &str) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .read()
            .iter()
            .filter(|(key, _)| key.name == name)
            .map(|(key, hist)| {
                let value = key
                    .labels
                    .iter()
                    .find(|(k, _)| k == label)
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                (value, hist.snapshot())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("codes_test_total", &[("kind", "a")]);
        c.inc();
        c.inc_by(4);
        assert_eq!(c.get(), 5);
        // Same key returns the same underlying counter.
        assert_eq!(reg.counter("codes_test_total", &[("kind", "a")]).get(), 5);
        // Different labels are a different series.
        assert_eq!(reg.counter("codes_test_total", &[("kind", "b")]).get(), 0);

        let g = reg.gauge("codes_test_level", &[]);
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_exact_count_sum_and_extremes() {
        let h = Histogram::default();
        for ns in [500, 1_000, 1_500, 3_000_000, 250_000_000_000] {
            h.record_ns(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum_ns, 500 + 1_000 + 1_500 + 3_000_000 + 250_000_000_000);
        assert_eq!(snap.min_ns, 500);
        assert_eq!(snap.max_ns, 250_000_000_000);
        // 500 and 1000 both land in the first bucket (bound inclusive).
        assert_eq!(snap.counts[0], 2);
        // 250s exceeds every bound: overflow bucket.
        assert_eq!(snap.counts[BUCKET_BOUNDS_NS.len()], 1);
    }

    #[test]
    fn quantiles_fall_inside_containing_bucket() {
        let h = Histogram::default();
        // 90 fast samples (~10µs bucket), 10 slow (~1s bucket).
        for _ in 0..90 {
            h.record_ns(9_000);
        }
        for _ in 0..10 {
            h.record_ns(900_000_000);
        }
        let snap = h.snapshot();
        let p50 = snap.quantile_ns(0.50).expect("non-empty");
        let p95 = snap.quantile_ns(0.95).expect("non-empty");
        assert!(p50 > 5_000.0 && p50 <= 10_000.0, "p50 = {p50}");
        assert!(p95 > 500_000_000.0 && p95 <= 1_000_000_000.0, "p95 = {p95}");
        assert_eq!(snap.quantile_ns(0.5).is_some(), true);
        assert!(Histogram::default().snapshot().quantile_ns(0.5).is_none());
    }

    #[test]
    fn overflow_quantile_bounded_by_observed_max() {
        let h = Histogram::default();
        h.record_ns(150_000_000_000);
        h.record_ns(400_000_000_000);
        let snap = h.snapshot();
        let p99 = snap.quantile_ns(0.99).expect("non-empty");
        assert!(p99 > 100_000_000_000.0 && p99 <= 400_000_000_000.0, "p99 = {p99}");
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("codes_requests_total", &[("outcome", "ok")]).inc_by(3);
        reg.gauge("codes_in_flight", &[]).set(2);
        reg.histogram("codes_latency_seconds", &[("stage", "generation")])
            .record(Duration::from_millis(3));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE codes_requests_total counter"), "{text}");
        assert!(text.contains("codes_requests_total{outcome=\"ok\"} 3"), "{text}");
        assert!(text.contains("# TYPE codes_in_flight gauge"), "{text}");
        assert!(text.contains("codes_in_flight 2"), "{text}");
        assert!(text.contains("# TYPE codes_latency_seconds histogram"), "{text}");
        assert!(
            text.contains("codes_latency_seconds_bucket{stage=\"generation\",le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(text.contains("codes_latency_seconds_count{stage=\"generation\"} 1"), "{text}");
        // 3ms lands at the 5ms bound.
        assert!(
            text.contains("codes_latency_seconds_bucket{stage=\"generation\",le=\"0.005\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = Registry::new();
        reg.counter("codes_weird_total", &[("db", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("codes_weird_total{db=\"a\\\"b\\\\c\"} 1"), "{text}");
    }
}
