//! Canonical names for the six Algorithm-1 pipeline stages and the
//! [`StageTimings`] record that carries one wall-clock figure per stage
//! through inference results, serve replies, and eval journals.

use serde::{Json, Serialize};

/// Schema filter: rank and prune tables/columns for the question (§5.1).
pub const STAGE_SCHEMA_FILTER: &str = "schema_filter";
/// Value retrieval: match question spans against database cell values.
pub const STAGE_VALUE_RETRIEVAL: &str = "value_retrieval";
/// Metadata collection: column types, comments, representative values.
pub const STAGE_METADATA: &str = "metadata";
/// Prompt build: assemble the Figure-4 prompt text within budget.
pub const STAGE_PROMPT_BUILD: &str = "prompt_build";
/// Generation: beam (or degraded greedy) SQL decoding.
pub const STAGE_GENERATION: &str = "generation";
/// Execution-guided selection: run beam candidates, keep the first that
/// executes (§6).
pub const STAGE_EXECUTION_SELECTION: &str = "execution_selection";

/// The six stages of Algorithm 1, in pipeline order.
pub const PIPELINE_STAGES: [&str; 6] = [
    STAGE_SCHEMA_FILTER,
    STAGE_VALUE_RETRIEVAL,
    STAGE_METADATA,
    STAGE_PROMPT_BUILD,
    STAGE_GENERATION,
    STAGE_EXECUTION_SELECTION,
];

/// Wall-clock seconds spent in each pipeline stage for one inference
/// (or, averaged, for a whole evaluation run).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Seconds in [`STAGE_SCHEMA_FILTER`].
    pub schema_filter: f64,
    /// Seconds in [`STAGE_VALUE_RETRIEVAL`].
    pub value_retrieval: f64,
    /// Seconds in [`STAGE_METADATA`].
    pub metadata: f64,
    /// Seconds in [`STAGE_PROMPT_BUILD`].
    pub prompt_build: f64,
    /// Seconds in [`STAGE_GENERATION`].
    pub generation: f64,
    /// Seconds in [`STAGE_EXECUTION_SELECTION`].
    pub execution_selection: f64,
}

impl StageTimings {
    /// All-zero timings.
    pub fn zero() -> StageTimings {
        StageTimings::default()
    }

    /// Seconds for `stage` (0.0 for unknown names).
    pub fn get(&self, stage: &str) -> f64 {
        match stage {
            STAGE_SCHEMA_FILTER => self.schema_filter,
            STAGE_VALUE_RETRIEVAL => self.value_retrieval,
            STAGE_METADATA => self.metadata,
            STAGE_PROMPT_BUILD => self.prompt_build,
            STAGE_GENERATION => self.generation,
            STAGE_EXECUTION_SELECTION => self.execution_selection,
            _ => 0.0,
        }
    }

    /// Set the seconds for `stage` (no-op for unknown names).
    pub fn set(&mut self, stage: &str, seconds: f64) {
        match stage {
            STAGE_SCHEMA_FILTER => self.schema_filter = seconds,
            STAGE_VALUE_RETRIEVAL => self.value_retrieval = seconds,
            STAGE_METADATA => self.metadata = seconds,
            STAGE_PROMPT_BUILD => self.prompt_build = seconds,
            STAGE_GENERATION => self.generation = seconds,
            STAGE_EXECUTION_SELECTION => self.execution_selection = seconds,
            _ => {}
        }
    }

    /// `(stage name, seconds)` pairs in pipeline order.
    pub fn entries(&self) -> [(&'static str, f64); 6] {
        [
            (STAGE_SCHEMA_FILTER, self.schema_filter),
            (STAGE_VALUE_RETRIEVAL, self.value_retrieval),
            (STAGE_METADATA, self.metadata),
            (STAGE_PROMPT_BUILD, self.prompt_build),
            (STAGE_GENERATION, self.generation),
            (STAGE_EXECUTION_SELECTION, self.execution_selection),
        ]
    }

    /// Sum across all stages.
    pub fn total(&self) -> f64 {
        self.entries().iter().map(|(_, s)| s).sum()
    }

    /// Element-wise accumulation (building run averages).
    pub fn accumulate(&mut self, other: &StageTimings) {
        for (stage, seconds) in other.entries() {
            self.set(stage, self.get(stage) + seconds);
        }
    }

    /// Element-wise scaling (divide an accumulated total by `n`).
    pub fn scaled(&self, factor: f64) -> StageTimings {
        let mut out = StageTimings::zero();
        for (stage, seconds) in self.entries() {
            out.set(stage, seconds * factor);
        }
        out
    }

    /// Parse from a JSON object of `stage name -> seconds`. Missing or
    /// malformed fields read as 0.0, so journals written before stage
    /// timings existed still load.
    pub fn from_json(value: &Json) -> StageTimings {
        let mut out = StageTimings::zero();
        for stage in PIPELINE_STAGES {
            if let Some(seconds) = value.get(stage).and_then(|v| v.as_f64()) {
                out.set(stage, seconds);
            }
        }
        out
    }
}

impl Serialize for StageTimings {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.entries()
                .iter()
                .map(|(stage, seconds)| (stage.to_string(), Json::Num(*seconds)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_entries_roundtrip() {
        let mut t = StageTimings::zero();
        for (i, stage) in PIPELINE_STAGES.iter().enumerate() {
            t.set(stage, (i + 1) as f64);
        }
        for (i, stage) in PIPELINE_STAGES.iter().enumerate() {
            assert_eq!(t.get(stage), (i + 1) as f64);
        }
        assert_eq!(t.total(), 21.0);
        t.set("not_a_stage", 99.0);
        assert_eq!(t.total(), 21.0);
        assert_eq!(t.get("not_a_stage"), 0.0);
    }

    #[test]
    fn accumulate_and_scale() {
        let mut sum = StageTimings::zero();
        let mut one = StageTimings::zero();
        one.generation = 2.0;
        one.schema_filter = 1.0;
        sum.accumulate(&one);
        sum.accumulate(&one);
        let avg = sum.scaled(0.5);
        assert_eq!(avg.generation, 2.0);
        assert_eq!(avg.schema_filter, 1.0);
        assert_eq!(avg.metadata, 0.0);
    }

    #[test]
    fn json_roundtrip_and_tolerant_parse() {
        let mut t = StageTimings::zero();
        t.prompt_build = 0.25;
        t.execution_selection = 1.5;
        let text = serde_json::to_string(&t).expect("render");
        let back = StageTimings::from_json(&serde_json::from_str(&text).expect("parse"));
        assert_eq!(back, t);
        // Old journals have no stage object at all: everything reads 0.
        let empty = StageTimings::from_json(&Json::Obj(vec![]));
        assert_eq!(empty, StageTimings::zero());
        assert_eq!(StageTimings::from_json(&Json::Null), StageTimings::zero());
    }
}
