//! Lightweight span tracing: RAII wall-clock guards per pipeline stage,
//! parent/child nesting via a thread-local span stack, and a bounded
//! in-memory ring of finished spans exportable as JSON.

use serde::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metrics::Registry;
use parking_lot::Mutex;

/// Histogram every finished span feeds, labeled by stage.
pub const STAGE_HISTOGRAM: &str = "codes_stage_duration_seconds";

/// Finished spans kept in memory before the oldest are evicted.
pub const TRACE_RING_CAPACITY: usize = 4096;

/// One finished span: which stage ran, when (relative to the registry's
/// creation), for how long, and under which parent span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id within the owning registry (1-based, allocation order).
    pub id: u64,
    /// Enclosing span's id, if this span was entered inside another.
    pub parent: Option<u64>,
    /// Stage name (one of [`crate::PIPELINE_STAGES`] for pipeline spans).
    pub stage: &'static str,
    /// Start offset from registry creation, nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, nanoseconds.
    pub duration_ns: u64,
}

/// Bounded ring of finished spans plus the id allocator and time origin.
#[derive(Debug)]
pub struct TraceRing {
    epoch: Instant,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<SpanRecord>>,
}

impl TraceRing {
    pub(crate) fn new() -> TraceRing {
        TraceRing {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.ring.lock();
        if ring.len() == TRACE_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

thread_local! {
    // Ids of the spans currently open on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII wall-clock guard for one pipeline stage.
///
/// [`Span::enter`] starts the clock; dropping the guard (or calling
/// [`Span::finish`] to also read the duration) stops it, records the
/// duration into the registry's per-stage histogram, and appends a
/// [`SpanRecord`] to the trace ring. Spans entered while another span is
/// open on the same thread record it as their parent.
#[derive(Debug)]
pub struct Span {
    registry: Arc<Registry>,
    stage: &'static str,
    start: Instant,
    id: u64,
    parent: Option<u64>,
    finished: bool,
}

impl Span {
    /// Enter a span on the global registry.
    pub fn enter(stage: &'static str) -> Span {
        Span::enter_in(&crate::global(), stage)
    }

    /// Enter a span on a specific registry (tests use private registries).
    pub fn enter_in(registry: &Arc<Registry>, stage: &'static str) -> Span {
        let id = registry.ring.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        Span {
            registry: Arc::clone(registry),
            stage,
            start: Instant::now(),
            id,
            parent,
            finished: false,
        }
    }

    /// Stop the clock now and return the measured duration.
    pub fn finish(mut self) -> Duration {
        self.complete()
    }

    fn complete(&mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if self.finished {
            return elapsed;
        }
        self.finished = true;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Spans are RAII guards, so the innermost entry is ours; be
            // tolerant of out-of-order drops rather than panicking.
            if stack.last() == Some(&self.id) {
                stack.pop();
            } else if let Some(pos) = stack.iter().position(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let duration_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let start_ns = u64::try_from(
            self.start.saturating_duration_since(self.registry.ring.epoch).as_nanos(),
        )
        .unwrap_or(u64::MAX);
        self.registry
            .histogram(STAGE_HISTOGRAM, &[("stage", self.stage)])
            .record_ns(duration_ns);
        self.registry.ring.push(SpanRecord {
            id: self.id,
            parent: self.parent,
            stage: self.stage,
            start_ns,
            duration_ns,
        });
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.complete();
    }
}

impl Registry {
    /// Copy of the trace ring, oldest span first.
    pub fn trace_records(&self) -> Vec<SpanRecord> {
        self.ring.ring.lock().iter().cloned().collect()
    }

    /// Export the trace ring as a JSON array (oldest first).
    pub fn trace_dump(&self) -> String {
        let spans: Vec<Json> = self
            .trace_records()
            .into_iter()
            .map(|r| {
                Json::Obj(vec![
                    ("id".to_string(), Json::Int(r.id as i64)),
                    (
                        "parent".to_string(),
                        r.parent.map_or(Json::Null, |p| Json::Int(p as i64)),
                    ),
                    ("stage".to_string(), Json::Str(r.stage.to_string())),
                    ("start_ns".to_string(), Json::Int(r.start_ns.min(i64::MAX as u64) as i64)),
                    (
                        "duration_ns".to_string(),
                        Json::Int(r.duration_ns.min(i64::MAX as u64) as i64),
                    ),
                ])
            })
            .collect();
        serde_json::to_string(&Json::Arr(spans)).unwrap_or_else(|_| "[]".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_duration_and_histogram() {
        let reg = Arc::new(Registry::new());
        let span = Span::enter_in(&reg, "generation");
        std::thread::sleep(Duration::from_millis(2));
        let took = span.finish();
        assert!(took >= Duration::from_millis(2));

        let records = reg.trace_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].stage, "generation");
        assert!(records[0].duration_ns >= 2_000_000);
        assert_eq!(records[0].parent, None);

        let snaps = reg.histograms_by_label(STAGE_HISTOGRAM, "stage");
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, "generation");
        assert_eq!(snaps[0].1.count, 1);
    }

    #[test]
    fn nested_spans_record_parent_child_edges() {
        let reg = Arc::new(Registry::new());
        {
            let _outer = Span::enter_in(&reg, "pipeline");
            {
                let _inner = Span::enter_in(&reg, "schema_filter");
            }
            {
                let _inner = Span::enter_in(&reg, "generation");
            }
        }
        let records = reg.trace_records();
        // Children finish (and land in the ring) before the parent.
        assert_eq!(records.len(), 3);
        let outer = records.iter().find(|r| r.stage == "pipeline").expect("outer span");
        for child in ["schema_filter", "generation"] {
            let r = records.iter().find(|r| r.stage == child).expect("child span");
            assert_eq!(r.parent, Some(outer.id), "{child} should nest under pipeline");
        }
        assert_eq!(outer.parent, None);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let reg = Arc::new(Registry::new());
        for _ in 0..(TRACE_RING_CAPACITY + 10) {
            let _span = Span::enter_in(&reg, "tick");
        }
        let records = reg.trace_records();
        assert_eq!(records.len(), TRACE_RING_CAPACITY);
        // Oldest evicted: the first surviving id is 11.
        assert_eq!(records[0].id, 11);
    }

    #[test]
    fn trace_dump_is_valid_json() {
        let reg = Arc::new(Registry::new());
        {
            let _outer = Span::enter_in(&reg, "pipeline");
            let _inner = Span::enter_in(&reg, "metadata");
        }
        let dump = reg.trace_dump();
        let parsed = serde_json::from_str(&dump).expect("trace dump parses");
        match parsed {
            Json::Arr(items) => {
                assert_eq!(items.len(), 2);
                let stages: Vec<&str> =
                    items.iter().filter_map(|i| i.get("stage").and_then(|s| s.as_str())).collect();
                assert!(stages.contains(&"pipeline") && stages.contains(&"metadata"), "{dump}");
            }
            other => panic!("expected array, got {other:?}"),
        }
    }
}
