#![warn(missing_docs)]
// Observability is infrastructure that every fault boundary leans on; it
// must never itself panic. Same policy as sqlengine/eval/serve.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # codes-obs
//!
//! Thread-safe observability core for the CodeS reproduction, built only
//! on `std` plus the workspace's vendored stand-ins:
//!
//! * **Counters** ([`Counter`]) — monotonic `u64` totals (requests served,
//!   sheds, breaker transitions, budget denials).
//! * **Gauges** ([`Gauge`]) — instantaneous `i64` levels (in-flight
//!   requests, queue depth).
//! * **Histograms** ([`Histogram`]) — fixed {1,2,5}-decade latency buckets
//!   over nanoseconds with lock-free concurrent recording; exact
//!   count/sum/min/max, and p50/p95/p99 estimated by rank-walk with linear
//!   interpolation inside the containing bucket (the estimate always falls
//!   within that bucket's bounds).
//! * **Spans** ([`Span`]) — RAII wall-clock guards, one per pipeline
//!   stage. Entering a span while another is open on the same thread
//!   records a parent/child edge; finished spans land in a bounded
//!   in-memory trace ring and feed a per-stage duration histogram.
//! * **Export** — [`Registry::render_prometheus`] (text exposition
//!   format) and [`Registry::trace_dump`] (JSON array of span records).
//!
//! Metrics live in a [`Registry`]. Production code uses the process-wide
//! [`global()`] registry; tests construct private registries
//! ([`Registry::new`]) so parallel test threads cannot observe each
//! other's metrics.
//!
//! ## Metric naming convention
//!
//! `codes_<area>_<what>_<unit>`: e.g. `codes_stage_duration_seconds`,
//! `codes_serve_queue_wait_seconds`, `codes_serve_shed_total`,
//! `codes_governor_budget_denied_total`. Counters end in `_total`,
//! histograms in a unit (`_seconds`), gauges in a bare noun. Label keys
//! are static (`stage`, `resource`, `from`, `to`); label values are the
//! only dynamic part.

pub mod metrics;
pub mod stages;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, BUCKET_BOUNDS_NS,
};
pub use stages::{
    StageTimings, PIPELINE_STAGES, STAGE_EXECUTION_SELECTION, STAGE_GENERATION, STAGE_METADATA,
    STAGE_PROMPT_BUILD, STAGE_SCHEMA_FILTER, STAGE_VALUE_RETRIEVAL,
};
pub use trace::{Span, SpanRecord, STAGE_HISTOGRAM};

use std::sync::{Arc, OnceLock};

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide registry. Created on first use; never reset.
pub fn global() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| Arc::new(Registry::new())))
}

/// Render the global registry in Prometheus text exposition format.
pub fn render_prometheus() -> String {
    global().render_prometheus()
}

/// Dump the global registry's trace ring as a JSON array.
pub fn trace_dump() -> String {
    global().trace_dump()
}
