//! Deeper semantic tests: subquery memoization, join evaluation through
//! the pair context, NULL ordering, and cost-model behaviour.

use sqlengine::{
    database_from_script, execute_query, execute_query_with_stats, Database, Value,
};

fn db() -> Database {
    database_from_script(
        "sem",
        "CREATE TABLE a (id INTEGER PRIMARY KEY, x INTEGER, label TEXT);
         CREATE TABLE b (id INTEGER PRIMARY KEY, a_id INTEGER REFERENCES a(id), y INTEGER);
         INSERT INTO a VALUES (1, 10, 'p'), (2, 20, 'q'), (3, 30, NULL), (4, NULL, 'r');
         INSERT INTO b VALUES (1, 1, 5), (2, 1, 15), (3, 2, 25), (4, 9, 1);",
    )
    .unwrap()
}

#[test]
fn scalar_subquery_executes_once_per_statement() {
    let db = db();
    let (result, stats) =
        execute_query_with_stats(&db, "SELECT id FROM a WHERE x > (SELECT AVG(x) FROM a)").unwrap();
    assert_eq!(result.rows.len(), 1); // avg of 10,20,30 = 20; only x=30
    // Memoized: one subquery execution despite 4 candidate rows.
    assert_eq!(stats.subqueries, 1, "scalar subquery must be memoized");
}

#[test]
fn in_subquery_memoized_with_null_semantics() {
    let db = db();
    let (result, stats) =
        execute_query_with_stats(&db, "SELECT id FROM a WHERE id IN (SELECT a_id FROM b)").unwrap();
    assert_eq!(result.rows.len(), 2); // a_id in {1, 2, 9}; ids 1 and 2
    assert_eq!(stats.subqueries, 1);

    // NOT IN with no NULLs in the subquery result: complement works.
    let r = execute_query(&db, "SELECT id FROM a WHERE id NOT IN (SELECT a_id FROM b)").unwrap();
    assert_eq!(r.rows.len(), 2); // ids 3 and 4
    // NOT IN against a set containing NULL yields no rows (3VL).
    let r = execute_query(&db, "SELECT id FROM a WHERE id NOT IN (SELECT x FROM a)").unwrap();
    assert_eq!(r.rows.len(), 0, "NULL in NOT IN set must suppress all rows");
}

#[test]
fn exists_memoized() {
    let db = db();
    let (r, stats) =
        execute_query_with_stats(&db, "SELECT id FROM a WHERE EXISTS (SELECT 1 FROM b WHERE y > 20)").unwrap();
    assert_eq!(r.rows.len(), 4);
    assert_eq!(stats.subqueries, 1);
}

#[test]
fn non_equi_join_through_pair_context() {
    // ON clauses beyond simple equality exercise the un-materialized pair
    // evaluation path.
    let db = db();
    let r = execute_query(
        &db,
        "SELECT T1.id, T2.id FROM a AS T1 JOIN b AS T2 ON T1.x < T2.y ORDER BY T1.id, T2.id",
    )
    .unwrap();
    // x=10: y in {15,25}; x=20: y=25; x=30: none; x=NULL: none.
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0], vec![Value::Integer(1), Value::Integer(2)]);
}

#[test]
fn compound_on_condition() {
    let db = db();
    let r = execute_query(
        &db,
        "SELECT COUNT(*) FROM a AS T1 JOIN b AS T2 ON T1.id = T2.a_id AND T2.y > 10",
    )
    .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(2)); // (1,15) and (2,25)
}

#[test]
fn left_join_with_filtering_on_clause() {
    let db = db();
    let r = execute_query(
        &db,
        "SELECT T1.id, T2.y FROM a AS T1 LEFT JOIN b AS T2 ON T1.id = T2.a_id AND T2.y > 10 ORDER BY T1.id",
    )
    .unwrap();
    // id=1 matches y=15; id=2 matches y=25; ids 3,4 padded with NULL.
    assert_eq!(r.rows.len(), 4);
    assert!(r.rows[2][1].is_null());
    assert!(r.rows[3][1].is_null());
}

#[test]
fn nulls_sort_first_ascending() {
    let db = db();
    let r = execute_query(&db, "SELECT x FROM a ORDER BY x ASC").unwrap();
    assert!(r.rows[0][0].is_null(), "NULL sorts below all numbers");
    assert_eq!(r.rows[3][0], Value::Integer(30));
    let r = execute_query(&db, "SELECT x FROM a ORDER BY x DESC").unwrap();
    assert!(r.rows[3][0].is_null());
}

#[test]
fn group_by_treats_null_as_its_own_group() {
    let db = db();
    let r = execute_query(&db, "SELECT label, COUNT(*) FROM a GROUP BY label").unwrap();
    assert_eq!(r.rows.len(), 4); // p, q, NULL, r
}

#[test]
fn cost_model_charges_more_for_bigger_work() {
    let db = db();
    let (_, scan) = execute_query_with_stats(&db, "SELECT x FROM a").unwrap();
    let (_, join) = execute_query_with_stats(
        &db,
        "SELECT T1.x FROM a AS T1 JOIN b AS T2 ON T1.id = T2.a_id",
    )
    .unwrap();
    let (_, sorted) =
        execute_query_with_stats(&db, "SELECT x FROM a ORDER BY x DESC").unwrap();
    assert!(join.cost() > scan.cost());
    assert!(sorted.cost() > scan.cost());
    assert!(join.join_pairs > 0);
    assert!(sorted.sort_steps > 0);
}

#[test]
fn aggregate_in_row_context_is_a_bind_error() {
    let db = db();
    let err = execute_query(&db, "SELECT x FROM a WHERE COUNT(*) > 1").unwrap_err();
    assert_eq!(err.kind(), "bind");
}

#[test]
fn division_by_zero_column_yields_null_not_error() {
    let db = db();
    let r = execute_query(&db, "SELECT x / (x - x) FROM a WHERE id = 1").unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn derived_table_with_aggregate_and_outer_filter() {
    let db = db();
    let r = execute_query(
        &db,
        "SELECT s.a_id FROM (SELECT a_id, SUM(y) AS total FROM b GROUP BY a_id) AS s WHERE s.total > 10",
    )
    .unwrap();
    assert_eq!(r.rows.len(), 2); // a_id=1 total 20; a_id=2 total 25
}

#[test]
fn case_sensitivity_of_text_equality_vs_like() {
    let mut db = db();
    db.table_mut("a").unwrap().rows[0][2] = Value::Text("Praha".into());
    // '=' is case-sensitive, LIKE is not.
    let eq = execute_query(&db, "SELECT id FROM a WHERE label = 'praha'").unwrap();
    assert_eq!(eq.rows.len(), 0);
    let like = execute_query(&db, "SELECT id FROM a WHERE label LIKE 'praha'").unwrap();
    assert_eq!(like.rows.len(), 1);
}

#[test]
fn limit_zero_and_offset_beyond_end() {
    let db = db();
    assert_eq!(execute_query(&db, "SELECT id FROM a LIMIT 0").unwrap().rows.len(), 0);
    assert_eq!(
        execute_query(&db, "SELECT id FROM a ORDER BY id LIMIT 10 OFFSET 99").unwrap().rows.len(),
        0
    );
}

#[test]
fn set_op_column_count_mismatch_is_an_error() {
    let db = db();
    let err = execute_query(&db, "SELECT id, x FROM a UNION SELECT id FROM b");
    assert!(err.is_err());
}
