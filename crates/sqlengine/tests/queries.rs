//! End-to-end query tests against a small "concert" database shaped like a
//! Spider schema.

use sqlengine::{database_from_script, execute_query, execute_query_with_stats, Database, Value};

fn concert_db() -> Database {
    database_from_script(
        "concert_singer",
        r#"
        CREATE TABLE stadium (
            stadium_id INTEGER PRIMARY KEY,
            location TEXT,
            name TEXT,
            capacity INTEGER,
            average INTEGER
        );
        CREATE TABLE singer (
            singer_id INTEGER PRIMARY KEY,
            name TEXT,
            country TEXT,
            age INTEGER,
            is_male TEXT
        );
        CREATE TABLE concert (
            concert_id INTEGER PRIMARY KEY,
            concert_name TEXT,
            theme TEXT,
            stadium_id INTEGER REFERENCES stadium(stadium_id),
            year INTEGER
        );
        CREATE TABLE singer_in_concert (
            concert_id INTEGER REFERENCES concert(concert_id),
            singer_id INTEGER REFERENCES singer(singer_id)
        );
        INSERT INTO stadium VALUES
            (1, 'East', 'Stark Arena', 52500, 1200),
            (2, 'West', 'Balmoor', 10104, 900),
            (3, 'North', 'Hive Stadium', 4000, 700),
            (4, 'South', 'Recreation Park', 2000, NULL);
        INSERT INTO singer VALUES
            (1, 'Joe Sharp', 'Netherlands', 52, 'F'),
            (2, 'Timbaland', 'United States', 32, 'T'),
            (3, 'Justin Brown', 'France', 29, 'T'),
            (4, 'Rose White', 'France', 41, 'F'),
            (5, 'John Nizinik', 'France', 43, 'T');
        INSERT INTO concert VALUES
            (1, 'Auditions', 'Free choice', 1, 2014),
            (2, 'Super bootcamp', 'Free choice 2', 2, 2014),
            (3, 'Home Visits', 'Bleeding Love', 2, 2015),
            (4, 'Week 1', 'Wide Awake', 3, 2014),
            (5, 'Week 2', 'Party All Night', 1, 2015);
        INSERT INTO singer_in_concert VALUES
            (1, 2), (1, 3), (2, 3), (2, 4), (3, 5), (4, 1), (5, 1), (5, 2);
        "#,
    )
    .unwrap()
}

fn rows(db: &Database, sql: &str) -> Vec<Vec<Value>> {
    execute_query(db, sql)
        .unwrap_or_else(|e| panic!("query `{sql}` failed: {e}"))
        .rows
}

fn scalar(db: &Database, sql: &str) -> Value {
    let r = rows(db, sql);
    assert_eq!(r.len(), 1, "expected one row from {sql}");
    assert_eq!(r[0].len(), 1, "expected one column from {sql}");
    r[0][0].clone()
}

#[test]
fn count_star() {
    let db = concert_db();
    assert_eq!(scalar(&db, "SELECT COUNT(*) FROM singer"), Value::Integer(5));
}

#[test]
fn where_filtering_with_and_or() {
    let db = concert_db();
    let r = rows(&db, "SELECT name FROM singer WHERE country = 'France' AND age > 30");
    assert_eq!(r.len(), 2);
    let r = rows(&db, "SELECT name FROM singer WHERE age < 30 OR age > 50");
    assert_eq!(r.len(), 2);
}

#[test]
fn aggregates_over_groups() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT country, COUNT(*), AVG(age) FROM singer GROUP BY country ORDER BY COUNT(*) DESC",
    );
    assert_eq!(r[0][0], Value::Text("France".into()));
    assert_eq!(r[0][1], Value::Integer(3));
    let avg = r[0][2].as_f64().unwrap();
    assert!((avg - (29.0 + 41.0 + 43.0) / 3.0).abs() < 1e-9);
}

#[test]
fn group_by_having() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT country FROM singer GROUP BY country HAVING COUNT(*) >= 2",
    );
    assert_eq!(r, vec![vec![Value::Text("France".into())]]);
}

#[test]
fn order_by_agg_with_limit_pattern() {
    // The classic Spider template: argmax via ORDER BY COUNT(*) DESC LIMIT 1
    let db = concert_db();
    let v = scalar(
        &db,
        "SELECT country FROM singer GROUP BY country ORDER BY COUNT(*) DESC LIMIT 1",
    );
    assert_eq!(v, Value::Text("France".into()));
}

#[test]
fn join_two_tables() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT T2.name FROM concert AS T1 JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id WHERE T1.year = 2014",
    );
    assert_eq!(r.len(), 3);
}

#[test]
fn three_way_join() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT DISTINCT T3.name FROM singer_in_concert AS T1 \
         JOIN concert AS T2 ON T1.concert_id = T2.concert_id \
         JOIN singer AS T3 ON T1.singer_id = T3.singer_id \
         WHERE T2.year = 2014",
    );
    // concerts 1,2,4 in 2014 -> singers 2,3,4,1
    assert_eq!(r.len(), 4);
}

#[test]
fn left_join_pads_nulls() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT T1.name, T2.concert_id FROM stadium AS T1 LEFT JOIN concert AS T2 ON T1.stadium_id = T2.stadium_id \
         WHERE T2.concert_id IS NULL",
    );
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Text("Recreation Park".into()));
}

#[test]
fn distinct_projection() {
    let db = concert_db();
    let r = rows(&db, "SELECT DISTINCT country FROM singer");
    assert_eq!(r.len(), 3);
}

#[test]
fn in_subquery() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT name FROM stadium WHERE stadium_id IN (SELECT stadium_id FROM concert WHERE year = 2015)",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn not_in_subquery() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT name FROM stadium WHERE stadium_id NOT IN (SELECT stadium_id FROM concert)",
    );
    assert_eq!(r, vec![vec![Value::Text("Recreation Park".into())]]);
}

#[test]
fn scalar_subquery_comparison() {
    let db = concert_db();
    let r = rows(&db, "SELECT name FROM singer WHERE age > (SELECT AVG(age) FROM singer)");
    assert_eq!(r.len(), 3); // 52, 41, 43 vs avg 39.4
}

#[test]
fn exists_subquery() {
    let db = concert_db();
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM stadium WHERE EXISTS (SELECT 1 FROM concert)"),
        Value::Integer(4)
    );
    assert_eq!(
        scalar(
            &db,
            "SELECT COUNT(*) FROM stadium WHERE NOT EXISTS (SELECT 1 FROM concert WHERE year = 1999)"
        ),
        Value::Integer(4)
    );
}

#[test]
fn union_intersect_except() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT stadium_id FROM concert WHERE year = 2014 UNION SELECT stadium_id FROM concert WHERE year = 2015",
    );
    assert_eq!(r.len(), 3); // dedup across {1,2,3} ∪ {2,1}
    let r = rows(
        &db,
        "SELECT stadium_id FROM concert WHERE year = 2014 INTERSECT SELECT stadium_id FROM concert WHERE year = 2015",
    );
    assert_eq!(r.len(), 2);
    let r = rows(
        &db,
        "SELECT stadium_id FROM concert WHERE year = 2014 EXCEPT SELECT stadium_id FROM concert WHERE year = 2015",
    );
    assert_eq!(r, vec![vec![Value::Integer(3)]]);
}

#[test]
fn union_all_keeps_duplicates() {
    let db = concert_db();
    let r = rows(&db, "SELECT country FROM singer UNION ALL SELECT country FROM singer");
    assert_eq!(r.len(), 10);
}

#[test]
fn set_op_with_order_and_limit() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT name FROM singer WHERE age > 40 UNION SELECT name FROM singer WHERE country = 'France' \
         ORDER BY name LIMIT 2",
    );
    assert_eq!(r.len(), 2);
    assert!(r[0][0] <= r[1][0]);
}

#[test]
fn between_and_like() {
    let db = concert_db();
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM singer WHERE age BETWEEN 29 AND 41"),
        Value::Integer(3)
    );
    let r = rows(&db, "SELECT name FROM singer WHERE name LIKE '%John%'");
    assert_eq!(r.len(), 1);
    let r = rows(&db, "SELECT name FROM singer WHERE name NOT LIKE 'J%'");
    assert_eq!(r.len(), 2);
}

#[test]
fn null_semantics_in_filters() {
    let db = concert_db();
    // average is NULL for one stadium: neither > nor <= matches it.
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM stadium WHERE average > 0"),
        Value::Integer(3)
    );
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM stadium WHERE average IS NULL"),
        Value::Integer(1)
    );
    // COUNT(col) skips NULLs; COUNT(*) does not.
    assert_eq!(scalar(&db, "SELECT COUNT(average) FROM stadium"), Value::Integer(3));
    assert_eq!(scalar(&db, "SELECT COUNT(*) FROM stadium"), Value::Integer(4));
}

#[test]
fn arithmetic_and_aliases() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT name, capacity - average AS spare FROM stadium WHERE average IS NOT NULL ORDER BY spare DESC LIMIT 1",
    );
    assert_eq!(r[0][0], Value::Text("Stark Arena".into()));
    assert_eq!(r[0][1], Value::Integer(51300));
}

#[test]
fn min_max_sum() {
    let db = concert_db();
    let r = rows(&db, "SELECT MIN(age), MAX(age), SUM(age) FROM singer");
    assert_eq!(r[0], vec![Value::Integer(29), Value::Integer(52), Value::Integer(197)]);
}

#[test]
fn count_distinct() {
    let db = concert_db();
    assert_eq!(
        scalar(&db, "SELECT COUNT(DISTINCT country) FROM singer"),
        Value::Integer(3)
    );
}

#[test]
fn aggregates_on_empty_input() {
    let db = concert_db();
    let r = rows(&db, "SELECT COUNT(*), SUM(age), AVG(age), MAX(age) FROM singer WHERE age > 99");
    assert_eq!(r.len(), 1);
    assert_eq!(r[0][0], Value::Integer(0));
    assert!(r[0][1].is_null());
    assert!(r[0][2].is_null());
    assert!(r[0][3].is_null());
}

#[test]
fn derived_table_in_from() {
    let db = concert_db();
    let v = scalar(
        &db,
        "SELECT MAX(n) FROM (SELECT stadium_id, COUNT(*) AS n FROM concert GROUP BY stadium_id) AS t",
    );
    assert_eq!(v, Value::Integer(2));
}

#[test]
fn case_expression() {
    let db = concert_db();
    let r = rows(
        &db,
        "SELECT name, CASE WHEN age >= 40 THEN 'senior' ELSE 'junior' END FROM singer ORDER BY singer_id",
    );
    assert_eq!(r[0][1], Value::Text("senior".into()));
    assert_eq!(r[1][1], Value::Text("junior".into()));
}

#[test]
fn cast_and_substr() {
    let db = concert_db();
    let v = scalar(&db, "SELECT CAST(SUBSTR('2009-03-04', 1, 4) AS INTEGER)");
    assert_eq!(v, Value::Integer(2009));
}

#[test]
fn order_by_multiple_keys() {
    let db = concert_db();
    let r = rows(&db, "SELECT country, name FROM singer ORDER BY country ASC, age DESC");
    assert_eq!(r[0][0], Value::Text("France".into()));
    assert_eq!(r[0][1], Value::Text("John Nizinik".into())); // oldest French singer first
}

#[test]
fn limit_and_offset() {
    let db = concert_db();
    let r = rows(&db, "SELECT singer_id FROM singer ORDER BY singer_id LIMIT 2 OFFSET 1");
    assert_eq!(r, vec![vec![Value::Integer(2)], vec![Value::Integer(3)]]);
    let r = rows(&db, "SELECT singer_id FROM singer ORDER BY singer_id LIMIT 1, 2");
    assert_eq!(r, vec![vec![Value::Integer(2)], vec![Value::Integer(3)]]);
}

#[test]
fn wildcard_projection() {
    let db = concert_db();
    let result = execute_query(&db, "SELECT * FROM stadium WHERE stadium_id = 1").unwrap();
    assert_eq!(result.columns, vec!["stadium_id", "location", "name", "capacity", "average"]);
    assert_eq!(result.rows.len(), 1);
    let result = execute_query(
        &db,
        "SELECT T1.* FROM concert AS T1 JOIN stadium AS T2 ON T1.stadium_id = T2.stadium_id WHERE T2.name = 'Balmoor'",
    )
    .unwrap();
    assert_eq!(result.columns.len(), 5);
    assert_eq!(result.rows.len(), 2);
}

#[test]
fn ambiguous_column_is_an_error() {
    let db = concert_db();
    let err = execute_query(&db, "SELECT name FROM singer JOIN stadium ON singer_id = stadium_id");
    assert!(err.is_err());
}

#[test]
fn unknown_identifiers_error() {
    let db = concert_db();
    assert!(execute_query(&db, "SELECT nope FROM singer").is_err());
    assert!(execute_query(&db, "SELECT 1 FROM ghost_table").is_err());
    assert!(execute_query(&db, "SELECT singer.ghost FROM singer").is_err());
}

#[test]
fn group_by_alias_and_position() {
    let db = concert_db();
    let r = rows(&db, "SELECT country AS c, COUNT(*) FROM singer GROUP BY c ORDER BY c");
    assert_eq!(r.len(), 3);
    let r2 = rows(&db, "SELECT country, COUNT(*) FROM singer GROUP BY 1 ORDER BY 1");
    assert_eq!(r, r2);
}

#[test]
fn stats_track_execution_effort() {
    let db = concert_db();
    let (_, cheap) = execute_query_with_stats(&db, "SELECT name FROM singer").unwrap();
    let (_, pricey) = execute_query_with_stats(
        &db,
        "SELECT T3.name FROM singer_in_concert AS T1 \
         JOIN concert AS T2 ON T1.concert_id = T2.concert_id \
         JOIN singer AS T3 ON T1.singer_id = T3.singer_id ORDER BY T3.name",
    )
    .unwrap();
    assert!(pricey.cost() > cheap.cost());
    assert!(pricey.join_pairs > 0);
    assert!(pricey.sort_steps > 0);
}

#[test]
fn select_without_from() {
    let db = concert_db();
    assert_eq!(scalar(&db, "SELECT 1 + 2 * 3"), Value::Integer(7));
    assert_eq!(scalar(&db, "SELECT UPPER('abc')"), Value::Text("ABC".into()));
}

#[test]
fn nested_ordered_set_term() {
    let db = concert_db();
    let r = rows(
        &db,
        "(SELECT name FROM singer ORDER BY age DESC LIMIT 1) UNION SELECT name FROM singer WHERE age < 30",
    );
    assert_eq!(r.len(), 2);
}

#[test]
fn in_list_predicate() {
    let db = concert_db();
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM singer WHERE country IN ('France', 'Netherlands')"),
        Value::Integer(4)
    );
    assert_eq!(
        scalar(&db, "SELECT COUNT(*) FROM singer WHERE country NOT IN ('France')"),
        Value::Integer(2)
    );
}

#[test]
fn group_concat() {
    let db = concert_db();
    let v = scalar(&db, "SELECT GROUP_CONCAT(name) FROM singer WHERE country = 'Netherlands'");
    assert_eq!(v, Value::Text("Joe Sharp".into()));
}

#[test]
fn string_concat_operator() {
    let db = concert_db();
    let v = scalar(&db, "SELECT 'a' || 'b' || 'c'");
    assert_eq!(v, Value::Text("abc".into()));
}

#[test]
fn ordered_results_flag() {
    let db = concert_db();
    assert!(execute_query(&db, "SELECT name FROM singer ORDER BY name").unwrap().ordered);
    assert!(!execute_query(&db, "SELECT name FROM singer").unwrap().ordered);
}

#[test]
fn hash_join_matches_nested_loop_semantics() {
    // Build a database big enough to cross the hash-join threshold and
    // verify against the aggregate computed directly.
    let mut script = String::from(
        "CREATE TABLE a (id INTEGER PRIMARY KEY, k INTEGER); CREATE TABLE b (id INTEGER PRIMARY KEY, k INTEGER);",
    );
    for i in 0..120 {
        script.push_str(&format!("INSERT INTO a VALUES ({i}, {});", i % 10));
        script.push_str(&format!("INSERT INTO b VALUES ({i}, {});", i % 10));
    }
    let db = database_from_script("big", &script).unwrap();
    let v = execute_query(&db, "SELECT COUNT(*) FROM a JOIN b ON a.k = b.k").unwrap();
    // each of 10 buckets has 12x12 matches
    assert_eq!(v.rows[0][0], Value::Integer(10 * 12 * 12));
}
