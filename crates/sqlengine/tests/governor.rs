//! Integration tests for the execution governor: budget kills through the
//! public API, the typed failure taxonomy, fault isolation and retry
//! semantics (DESIGN.md "Execution limits & failure semantics").

use std::time::{Duration, Instant};

use sqlengine::{
    apply_statement, catch_panics, database_from_script, execute_query, execute_query_governed,
    parse_statement, with_retry, Database, Error, ExecLimits, FailureClass, Resource, Value,
};

/// Two modest tables whose cross product is large enough to trip tightened
/// budgets but small enough to execute instantly when allowed.
fn blowup_db() -> Database {
    let mut script = String::from(
        "CREATE TABLE a (id INTEGER PRIMARY KEY, name TEXT);
         CREATE TABLE b (id INTEGER PRIMARY KEY, label TEXT);",
    );
    for i in 0..100 {
        script.push_str(&format!("INSERT INTO a VALUES ({i}, 'a{i}');"));
        script.push_str(&format!("INSERT INTO b VALUES ({i}, 'b{i}');"));
    }
    database_from_script("blowup", &script).unwrap()
}

#[test]
fn cross_join_blowup_is_killed_within_deadline() {
    let db = blowup_db();
    // 100^3 = 1M cross-join rows against a 100k intermediate-row budget;
    // the generous wall-clock deadline is a backstop, the deterministic
    // row budget is what kills the statement.
    let limits = ExecLimits {
        deadline: Some(Duration::from_secs(10)),
        max_intermediate_rows: Some(100_000),
        ..ExecLimits::unlimited()
    };
    let started = Instant::now();
    let err = execute_query_governed(&db, "SELECT * FROM a, b, a AS a2", &limits).unwrap_err();
    assert!(started.elapsed() < Duration::from_secs(10), "kill must beat the deadline");
    match err {
        Error::BudgetExceeded { resource, spent, limit } => {
            assert_eq!(resource, Resource::IntermediateRows);
            assert_eq!(limit, 100_000);
            assert!(spent > limit, "spent {spent} should exceed limit {limit}");
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn budget_kills_are_deterministic() {
    let db = blowup_db();
    let limits = ExecLimits { max_intermediate_rows: Some(5_000), ..ExecLimits::unlimited() };
    let a = execute_query_governed(&db, "SELECT * FROM a, b", &limits).unwrap_err();
    let b = execute_query_governed(&db, "SELECT * FROM a, b", &limits).unwrap_err();
    match (a, b) {
        (
            Error::BudgetExceeded { resource: ra, spent: sa, limit: la },
            Error::BudgetExceeded { resource: rb, spent: sb, limit: lb },
        ) => {
            assert_eq!((ra, sa, la), (rb, sb, lb), "same statement must trip identically");
        }
        other => panic!("expected two budget kills, got {other:?}"),
    }
}

#[test]
fn output_row_limit_applies_after_limit_clause() {
    let db = blowup_db();
    let limits = ExecLimits { max_rows: Some(10), ..ExecLimits::unlimited() };
    // 100 source rows, but LIMIT 5 keeps the output inside the budget.
    let ok = execute_query_governed(&db, "SELECT id FROM a LIMIT 5", &limits);
    assert_eq!(ok.unwrap().0.rows.len(), 5);
    let err = execute_query_governed(&db, "SELECT id FROM a", &limits).unwrap_err();
    assert!(
        matches!(err, Error::BudgetExceeded { resource: Resource::Rows, .. }),
        "expected output-row kill, got {err:?}"
    );
}

#[test]
fn memory_budget_trips_on_wide_join() {
    let db = blowup_db();
    let limits = ExecLimits { max_memory_bytes: Some(8 << 10), ..ExecLimits::unlimited() };
    let err = execute_query_governed(&db, "SELECT * FROM a, b", &limits).unwrap_err();
    assert!(
        matches!(err, Error::BudgetExceeded { resource: Resource::Memory, .. }),
        "expected memory kill, got {err:?}"
    );
}

#[test]
fn recursion_depth_budget_trips_on_nesting() {
    let db = blowup_db();
    let limits = ExecLimits { max_recursion_depth: Some(4), ..ExecLimits::unlimited() };
    let mut q = String::from("SELECT * FROM a");
    for i in 0..8 {
        q = format!("SELECT * FROM ({q}) AS d{i}");
    }
    let err = execute_query_governed(&db, &q, &limits).unwrap_err();
    assert!(
        matches!(err, Error::BudgetExceeded { resource: Resource::Depth, .. }),
        "expected depth kill, got {err:?}"
    );
    // Within budget, the same shape executes.
    let shallow = "SELECT * FROM (SELECT * FROM a) AS d0";
    assert!(execute_query_governed(&db, shallow, &limits).is_ok());
}

#[test]
fn realistic_queries_pass_evaluation_budgets() {
    let db = blowup_db();
    let limits = ExecLimits::evaluation();
    for sql in [
        "SELECT COUNT(*) FROM a",
        "SELECT a.name, b.label FROM a JOIN b ON a.id = b.id WHERE a.id < 10 ORDER BY a.id",
        "SELECT name FROM a WHERE id IN (SELECT id FROM b WHERE id < 5)",
    ] {
        let ungoverned = execute_query(&db, sql).unwrap();
        let governed = execute_query_governed(&db, sql, &limits).unwrap().0;
        assert!(governed.same_result(&ungoverned), "governed result differs for {sql}");
    }
}

#[test]
fn insert_into_unknown_table_is_a_typed_error() {
    let mut db = blowup_db();
    let stmt = parse_statement("INSERT INTO no_such_table VALUES (1, 'x')").unwrap();
    let err = apply_statement(&mut db, &stmt).unwrap_err();
    match &err {
        Error::UnknownTable(name) => assert_eq!(name, "no_such_table"),
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    // The failure is permanent: retrying cannot help.
    assert_eq!(err.class(), FailureClass::Permanent);
}

#[test]
fn injected_panic_is_contained_by_catch_panics() {
    let db = blowup_db();
    let err = catch_panics(|| {
        execute_query_governed(&db, "SELECT __FAULT_PANIC()", &ExecLimits::unlimited())
    })
    .unwrap_err();
    match &err {
        Error::Internal(msg) => assert!(msg.contains("__FAULT_PANIC"), "{msg}"),
        other => panic!("expected Internal, got {other:?}"),
    }
    // Caught panics are permanent — retrying an engine bug cannot help.
    assert_eq!(err.class(), FailureClass::Permanent);
}

#[test]
fn retry_with_halved_budgets_recovers_cheap_statements() {
    let db = blowup_db();
    let limits = ExecLimits { max_intermediate_rows: Some(400), ..ExecLimits::unlimited() };
    // First attempt: a blowup trips the budget (transient). The retry runs
    // a statement that fits even the halved budget.
    let mut attempt = 0;
    let outcome = with_retry(&limits, 1, |attempt_limits| {
        attempt += 1;
        let sql = if attempt == 1 { "SELECT * FROM a, b" } else { "SELECT id FROM a LIMIT 3" };
        execute_query_governed(&db, sql, attempt_limits).map(|(r, _)| r.rows.len())
    });
    assert_eq!(attempt, 2);
    assert_eq!(outcome.unwrap(), 3);
}

#[test]
fn governed_execution_matches_ungoverned_values() {
    let db = blowup_db();
    let (result, _) = execute_query_governed(
        &db,
        "SELECT MAX(id) FROM a",
        &ExecLimits::evaluation(),
    )
    .unwrap();
    assert_eq!(result.rows[0][0], Value::Integer(99));
}
