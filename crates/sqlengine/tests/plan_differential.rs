//! Differential query-testing harness: the optimizer is proven correct by
//! running thousands of generated queries under both [`PlanMode::Naive`]
//! (the syntactic reference plan) and [`PlanMode::Optimized`] and requiring
//! observational equivalence.
//!
//! Per seeded run the harness generates random catalogs (1–5 tables with
//! PK/FK edges, skewed row counts, NULLs) and ≥1000 random queries over
//! them (joins of every kind, safe and unsafe predicates, aggregates,
//! `ORDER BY`, `LIMIT`/`OFFSET`). Divergence rules:
//!
//! * `Ok` vs `Ok`: column names, ordered flags and result rows must match —
//!   as multisets, or exactly when both are ordered. A `LIMIT` without
//!   `ORDER BY` is nondeterministic by SQL semantics, so there the harness
//!   checks cardinality plus sub-multiset containment in the un-limited
//!   reference result.
//! * `Ok` vs permanent error (either direction) is a divergence: rewrites
//!   must never invent or swallow statement errors.
//! * Permanent vs permanent: the error kinds must agree.
//! * A transient (budget/shed) failure on either side is allowed: plans
//!   spend resources differently by design.
//!
//! On divergence a greedy minimizer shrinks the failing query (dropping
//! predicates, `LIMIT`, `ORDER BY`, trailing join factors) while the
//! divergence persists, then the test fails printing the seed, the catalog
//! script, the minimal SQL and the engine's `EXPLAIN` of it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sqlengine::{
    database_from_script, execute_query_naive, execute_query_plan, Database, ExecLimits, PlanMode,
    QueryResult,
};

/// Deterministic budgets: no deadline (wall-clock kills would make runs
/// machine-dependent), deterministic row/memory/depth limits tight enough
/// that generated cross joins can trip them.
fn limits() -> ExecLimits {
    ExecLimits {
        deadline: None,
        max_rows: Some(5_000),
        max_intermediate_rows: Some(20_000),
        max_memory_bytes: Some(1 << 20),
        max_recursion_depth: Some(8),
    }
}

// ---------------------------------------------------------------------------
// Catalog generation
// ---------------------------------------------------------------------------

const WORDS: &[&str] = &["ash", "birch", "cedar", "dawn", "elm", "fern", "gale", "holly"];

/// One generated catalog: the DDL/INSERT script plus the shape facts the
/// query generator needs.
struct Catalog {
    script: String,
    tables: Vec<GenTable>,
}

struct GenTable {
    name: String,
    rows: usize,
    /// `(column, referenced table index)` foreign keys.
    fks: Vec<(String, usize)>,
}

fn gen_catalog(rng: &mut StdRng) -> Catalog {
    let ntables = rng.random_range(1..=5usize);
    let mut script = String::new();
    let mut tables: Vec<GenTable> = Vec::new();
    for i in 0..ntables {
        let name = format!("t{i}");
        // Skewed row counts: empty and tiny tables are common, a few are
        // big enough to make join order matter.
        let rows = match rng.random_range(0..10u32) {
            0 => 0,
            1..=4 => rng.random_range(1..=4usize),
            5..=7 => rng.random_range(5..=15usize),
            _ => rng.random_range(16..=32usize),
        };
        let mut fks = Vec::new();
        let mut cols =
            String::from("id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, score REAL, name TEXT");
        if i > 0 && rng.random_bool(0.7) {
            let target = rng.random_range(0..i);
            let col = format!("t{target}_id");
            cols.push_str(&format!(
                ", {col} INTEGER, FOREIGN KEY ({col}) REFERENCES t{target}(id)"
            ));
            fks.push((col, target));
        }
        script.push_str(&format!("CREATE TABLE {name} ({cols});\n"));
        for pk in 1..=rows {
            let mut vals = vec![
                pk.to_string(),
                if rng.random_bool(0.1) { "NULL".into() } else { rng.random_range(0..5i64).to_string() },
                if rng.random_bool(0.15) { "NULL".into() } else { gen_int(rng).to_string() },
                if rng.random_bool(0.2) {
                    "NULL".into()
                } else {
                    format!("{:.2}", rng.random_range(0.0..10.0f64))
                },
                if rng.random_bool(0.15) {
                    "NULL".into()
                } else {
                    format!("'{}'", WORDS[rng.random_range(0..WORDS.len())])
                },
            ];
            for &(_, target) in &fks {
                let target_rows = tables[target].rows as i64;
                vals.push(if target_rows == 0 || rng.random_bool(0.15) {
                    "NULL".into()
                } else if rng.random_bool(0.1) {
                    // Dangling reference: FK edges are metadata, not
                    // constraints, and the optimizer must not assume them.
                    (target_rows + 50).to_string()
                } else {
                    rng.random_range(1..=target_rows).to_string()
                });
            }
            script.push_str(&format!("INSERT INTO {name} VALUES ({});\n", vals.join(", ")));
        }
        tables.push(GenTable { name, rows, fks });
    }
    Catalog { script, tables }
}

/// Skewed integer domain: mostly small values so predicates and equi joins
/// actually hit, with an occasional outlier.
fn gen_int(rng: &mut StdRng) -> i64 {
    if rng.random_bool(0.8) {
        rng.random_range(0..20)
    } else {
        rng.random_range(0..1000)
    }
}

// ---------------------------------------------------------------------------
// Query generation
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum JoinK {
    Comma,
    Inner,
    Left,
}

#[derive(Clone)]
struct Factor {
    table: String,
    alias: String,
    /// `None` for the first factor; `(kind, ON sql)` otherwise (`Comma`
    /// carries no ON clause).
    join: Option<(JoinK, String)>,
}

/// A piece of generated SQL together with the factor aliases it references,
/// so the minimizer can drop factors consistently.
#[derive(Clone)]
struct Frag {
    sql: String,
    aliases: Vec<String>,
}

#[derive(Clone)]
enum SelectKind {
    Cols(Vec<Frag>),
    Agg {
        /// Optional `GROUP BY` key (also selected, first).
        group: Option<Frag>,
        aggs: Vec<Frag>,
    },
}

#[derive(Clone)]
struct Spec {
    factors: Vec<Factor>,
    wheres: Vec<Frag>,
    select: SelectKind,
    /// When true, `ORDER BY` every output position (deterministic order).
    order_all: bool,
    order_desc: bool,
    limit: Option<(usize, usize)>,
}

impl Spec {
    fn select_len(&self) -> usize {
        match &self.select {
            SelectKind::Cols(items) => items.len(),
            SelectKind::Agg { group, aggs } => aggs.len() + usize::from(group.is_some()),
        }
    }

    fn to_sql(&self) -> String {
        let items: Vec<String> = match &self.select {
            SelectKind::Cols(items) => items.iter().map(|f| f.sql.clone()).collect(),
            SelectKind::Agg { group, aggs } => group
                .iter()
                .map(|g| g.sql.clone())
                .chain(aggs.iter().map(|a| a.sql.clone()))
                .collect(),
        };
        let mut sql = format!("SELECT {} FROM ", items.join(", "));
        for (i, f) in self.factors.iter().enumerate() {
            match (&f.join, i) {
                (None, _) | (_, 0) => {}
                (Some((JoinK::Comma, _)), _) => sql.push_str(", "),
                (Some((JoinK::Inner, _)), _) => sql.push_str(" JOIN "),
                (Some((JoinK::Left, _)), _) => sql.push_str(" LEFT JOIN "),
            }
            sql.push_str(&format!("{} AS {}", f.table, f.alias));
            if let Some((kind, on)) = &f.join {
                if *kind != JoinK::Comma && i > 0 {
                    sql.push_str(&format!(" ON {on}"));
                }
            }
        }
        if !self.wheres.is_empty() {
            let preds: Vec<&str> = self.wheres.iter().map(|f| f.sql.as_str()).collect();
            sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
        }
        if let SelectKind::Agg { group: Some(_), .. } = &self.select {
            sql.push_str(" GROUP BY 1");
        }
        if self.order_all {
            let dir = if self.order_desc { " DESC" } else { "" };
            let keys: Vec<String> =
                (1..=self.select_len()).map(|i| format!("{i}{dir}")).collect();
            sql.push_str(&format!(" ORDER BY {}", keys.join(", ")));
        }
        if let Some((n, off)) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
            if off > 0 {
                sql.push_str(&format!(" OFFSET {off}"));
            }
        }
        sql
    }
}

const COLS: &[&str] = &["id", "grp", "val", "score", "name"];

fn gen_column(rng: &mut StdRng, factors: &[Factor]) -> Frag {
    let f = &factors[rng.random_range(0..factors.len())];
    let col = COLS[rng.random_range(0..COLS.len())];
    Frag { sql: format!("{}.{}", f.alias, col), aliases: vec![f.alias.clone()] }
}

fn gen_predicate(rng: &mut StdRng, cat: &Catalog, factors: &[Factor]) -> Frag {
    let col = gen_column(rng, factors);
    match rng.random_range(0..10u32) {
        0 | 1 => {
            let op = ["=", "<>", "<", "<=", ">", ">="][rng.random_range(0..6usize)];
            Frag { sql: format!("{} {op} {}", col.sql, gen_int(rng)), aliases: col.aliases }
        }
        2 => {
            let not = if rng.random_bool(0.5) { " NOT" } else { "" };
            Frag { sql: format!("{}{not} IS NULL", nullable(rng, factors).sql), aliases: col.aliases }
        }
        3 => {
            let (lo, hi) = (gen_int(rng), gen_int(rng));
            Frag {
                sql: format!("{} BETWEEN {} AND {}", col.sql, lo.min(hi), lo.max(hi)),
                aliases: col.aliases,
            }
        }
        4 => {
            let n = rng.random_range(1..=4usize);
            let list: Vec<String> = (0..n).map(|_| gen_int(rng).to_string()).collect();
            Frag { sql: format!("{} IN ({})", col.sql, list.join(", ")), aliases: col.aliases }
        }
        5 => {
            let f = &factors[rng.random_range(0..factors.len())];
            let w = WORDS[rng.random_range(0..WORDS.len())];
            let pat = if rng.random_bool(0.5) {
                format!("{}%", &w[..1])
            } else {
                format!("%{}%", &w[1..2])
            };
            Frag { sql: format!("{}.name LIKE '{pat}'", f.alias), aliases: vec![f.alias.clone()] }
        }
        6 => Frag {
            sql: format!("{} + 1 > {}", col.sql, gen_int(rng)),
            aliases: col.aliases,
        },
        7 => {
            // Cross-factor comparison: exercises join-conjunct merging.
            let other = gen_column(rng, factors);
            let mut aliases = col.aliases;
            aliases.extend(other.aliases.clone());
            let op = ["=", "<", ">="][rng.random_range(0..3usize)];
            Frag { sql: format!("{} {op} {}", col.sql, other.sql), aliases }
        }
        8 => {
            // Unsafe for pushdown (scalar subquery): must fall back cleanly.
            let t = &cat.tables[rng.random_range(0..cat.tables.len())];
            Frag {
                sql: format!("{} >= (SELECT MIN(val) FROM {})", col.sql, t.name),
                aliases: col.aliases,
            }
        }
        _ => {
            // CASE is safe; division by zero folds to NULL, never an error.
            Frag {
                sql: format!(
                    "CASE WHEN {} > {} THEN 1 ELSE 0 END = 1",
                    col.sql,
                    gen_int(rng)
                ),
                aliases: col.aliases,
            }
        }
    }
}

/// A column that can plausibly be NULL (everything but the PK).
fn nullable(rng: &mut StdRng, factors: &[Factor]) -> Frag {
    let f = &factors[rng.random_range(0..factors.len())];
    let col = ["grp", "val", "score", "name"][rng.random_range(0..4usize)];
    Frag { sql: format!("{}.{}", f.alias, col), aliases: vec![f.alias.clone()] }
}

fn gen_on(rng: &mut StdRng, cat: &Catalog, factors: &[Factor], new: &Factor) -> String {
    let prev = &factors[rng.random_range(0..factors.len())];
    // Prefer the real FK edge when one connects the two tables.
    let fk_edge = cat
        .tables
        .iter()
        .find(|t| t.name == new.table)
        .and_then(|t| {
            t.fks
                .iter()
                .find(|(_, target)| cat.tables[*target].name == prev.table)
                .map(|(col, _)| format!("{}.{} = {}.id", new.alias, col, prev.alias))
        });
    let base = match (fk_edge, rng.random_range(0..10u32)) {
        (Some(edge), 0..=6) => edge,
        (_, 7) => format!("{}.val < {}.val", prev.alias, new.alias),
        (_, 8) => format!("{}.id = {}.id", prev.alias, new.alias),
        _ => format!("{}.grp = {}.grp", prev.alias, new.alias),
    };
    if rng.random_bool(0.25) {
        format!("{base} AND {}.val > {}", new.alias, gen_int(rng))
    } else {
        base
    }
}

fn gen_spec(rng: &mut StdRng, cat: &Catalog) -> Spec {
    let nfactors = rng.random_range(1..=3usize).min(cat.tables.len().max(1));
    let mut factors: Vec<Factor> = Vec::new();
    for i in 0..nfactors {
        let table = cat.tables[rng.random_range(0..cat.tables.len())].name.clone();
        let alias = format!("f{i}");
        let join = if i == 0 {
            None
        } else {
            let kind = match rng.random_range(0..10u32) {
                0..=1 => JoinK::Comma,
                2..=7 => JoinK::Inner,
                _ => JoinK::Left,
            };
            let new = Factor { table: table.clone(), alias: alias.clone(), join: None };
            let on = if kind == JoinK::Comma { String::new() } else { gen_on(rng, cat, &factors, &new) };
            Some((kind, on))
        };
        factors.push(Factor { table, alias, join });
    }

    let nwheres = rng.random_range(0..=3usize);
    let wheres: Vec<Frag> = (0..nwheres).map(|_| gen_predicate(rng, cat, &factors)).collect();

    let select = if rng.random_bool(0.25) {
        let group = rng
            .random_bool(0.6)
            .then(|| gen_column(rng, &factors));
        let agg_col = gen_column(rng, &factors);
        let mut aggs = vec![Frag { sql: "COUNT(*)".into(), aliases: Vec::new() }];
        if rng.random_bool(0.5) {
            let f = ["MIN", "MAX", "SUM"][rng.random_range(0..3usize)];
            aggs.push(Frag {
                sql: format!("{f}({})", agg_col.sql),
                aliases: agg_col.aliases.clone(),
            });
        }
        SelectKind::Agg { group, aggs }
    } else {
        let n = rng.random_range(1..=3usize);
        SelectKind::Cols((0..n).map(|_| gen_column(rng, &factors)).collect())
    };

    let order_all = rng.random_bool(0.4);
    let limit = rng
        .random_bool(0.3)
        .then(|| (rng.random_range(0..=10usize), rng.random_range(0..=3usize)));

    Spec { factors, wheres, select, order_all, order_desc: rng.random_bool(0.3), limit }
}

// ---------------------------------------------------------------------------
// Differential check
// ---------------------------------------------------------------------------

type RunResult = sqlengine::Result<(QueryResult, sqlengine::ExecStats)>;

fn row_key(row: &[sqlengine::Value]) -> String {
    format!("{row:?}")
}

fn sub_multiset(small: &QueryResult, big: &QueryResult) -> bool {
    let mut counts = std::collections::HashMap::new();
    for row in &big.rows {
        *counts.entry(row_key(row)).or_insert(0usize) += 1;
    }
    small.rows.iter().all(|row| {
        match counts.get_mut(&row_key(row)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    })
}

/// Run `spec` under both plan modes and describe any divergence.
fn divergence(db: &Database, spec: &Spec) -> Option<String> {
    let sql = spec.to_sql();
    let lim = limits();
    let naive: RunResult = execute_query_naive(db, &sql, &lim);
    let opt: RunResult = execute_query_plan(db, &sql, &lim, PlanMode::Optimized);
    match (naive, opt) {
        (Ok((n, _)), Ok((o, _))) => {
            if n.columns != o.columns {
                return Some(format!("column mismatch: naive {:?} vs optimized {:?}", n.columns, o.columns));
            }
            if n.ordered != o.ordered {
                return Some(format!("ordered-flag mismatch: naive {} vs optimized {}", n.ordered, o.ordered));
            }
            if spec.limit.is_some() && !n.ordered {
                // LIMIT without ORDER BY may pick different rows per plan;
                // require equal cardinality and containment in the
                // un-limited reference result.
                if n.rows.len() != o.rows.len() {
                    return Some(format!(
                        "row-count mismatch under LIMIT: naive {} vs optimized {}",
                        n.rows.len(),
                        o.rows.len()
                    ));
                }
                let mut full_spec = spec.clone();
                full_spec.limit = None;
                if let Ok((full, _)) = execute_query_naive(db, &full_spec.to_sql(), &lim) {
                    if !sub_multiset(&o, &full) || !sub_multiset(&n, &full) {
                        return Some("LIMIT result not contained in un-limited result".into());
                    }
                }
                None
            } else if n.same_result(&o) {
                None
            } else {
                Some(format!(
                    "result mismatch ({} vs {} rows)\nnaive:\n{}\noptimized:\n{}",
                    n.rows.len(),
                    o.rows.len(),
                    n.render(),
                    o.render()
                ))
            }
        }
        (Ok(_), Err(e)) if !e.is_transient() => {
            Some(format!("optimized fails where naive succeeds: {e}"))
        }
        (Err(e), Ok(_)) if !e.is_transient() => {
            Some(format!("naive fails where optimized succeeds: {e}"))
        }
        (Err(a), Err(b)) if !a.is_transient() && !b.is_transient() && a.kind() != b.kind() => {
            Some(format!("error-kind mismatch: naive {} vs optimized {}", a.kind(), b.kind()))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

/// Greedily shrink a failing spec while the divergence persists.
fn minimize(db: &Database, spec: &Spec) -> Spec {
    let mut current = spec.clone();
    loop {
        let mut shrunk = false;
        for candidate in shrink_candidates(&current) {
            if divergence(db, &candidate).is_some() {
                current = candidate;
                shrunk = true;
                break;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

fn shrink_candidates(spec: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();
    for i in 0..spec.wheres.len() {
        let mut s = spec.clone();
        s.wheres.remove(i);
        out.push(s);
    }
    if spec.limit.is_some() {
        let mut s = spec.clone();
        s.limit = None;
        out.push(s);
    }
    if spec.order_all {
        let mut s = spec.clone();
        s.order_all = false;
        out.push(s);
    }
    if let SelectKind::Agg { .. } = spec.select {
        let mut s = spec.clone();
        let alias = spec.factors[0].alias.clone();
        s.select = SelectKind::Cols(vec![Frag {
            sql: format!("{alias}.id"),
            aliases: vec![alias],
        }]);
        out.push(s);
    }
    if spec.factors.len() > 1 {
        let mut s = spec.clone();
        let dropped = s.factors.pop().map(|f| f.alias).unwrap_or_default();
        s.wheres.retain(|w| !w.aliases.contains(&dropped));
        let keep = |aliases: &[String]| !aliases.contains(&dropped);
        s.select = match s.select {
            SelectKind::Cols(items) => {
                let mut kept: Vec<Frag> =
                    items.into_iter().filter(|f| keep(&f.aliases)).collect();
                if kept.is_empty() {
                    let alias = s.factors[0].alias.clone();
                    kept.push(Frag { sql: format!("{alias}.id"), aliases: vec![alias] });
                }
                SelectKind::Cols(kept)
            }
            SelectKind::Agg { group, aggs } => SelectKind::Agg {
                group: group.filter(|g| keep(&g.aliases)),
                aggs: {
                    let kept: Vec<Frag> =
                        aggs.into_iter().filter(|a| keep(&a.aliases)).collect();
                    if kept.is_empty() {
                        vec![Frag { sql: "COUNT(*)".into(), aliases: Vec::new() }]
                    } else {
                        kept
                    }
                },
            },
        };
        // Output arity changed; positional ORDER BY and LIMIT are easier
        // to re-shrink in a later pass than to remap.
        s.order_all = false;
        s.limit = None;
        out.push(s);
    }
    out
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

const QUERIES_PER_SEED: usize = 1_000;
const CATALOGS_PER_SEED: usize = 10;

fn run_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let per_catalog = QUERIES_PER_SEED / CATALOGS_PER_SEED;
    for catalog_idx in 0..CATALOGS_PER_SEED {
        let cat = gen_catalog(&mut rng);
        let db = match database_from_script("diff", &cat.script) {
            Ok(db) => db,
            Err(e) => panic!("seed {seed} catalog {catalog_idx}: bad generated script: {e}\n{}", cat.script),
        };
        for _ in 0..per_catalog {
            let spec = gen_spec(&mut rng, &cat);
            if let Some(why) = divergence(&db, &spec) {
                let minimal = minimize(&db, &spec);
                let sql = minimal.to_sql();
                let explain = db.explain(&sql).unwrap_or_else(|e| format!("(explain failed: {e})"));
                panic!(
                    "plan divergence (seed {seed}, catalog {catalog_idx})\n\
                     original SQL: {}\n\
                     minimal SQL:  {sql}\n\
                     divergence:   {}\n\
                     catalog:\n{}\n\
                     EXPLAIN:\n{explain}",
                    spec.to_sql(),
                    divergence(&db, &minimal).unwrap_or(why),
                    cat.script,
                );
            }
        }
    }
}

fn run_seeds(seeds: std::ops::Range<u64>) {
    for seed in seeds {
        run_seed(seed);
    }
}

#[test]
fn differential_seeds_00_04() {
    run_seeds(0..5);
}

#[test]
fn differential_seeds_05_09() {
    run_seeds(5..10);
}

#[test]
fn differential_seeds_10_14() {
    run_seeds(10..15);
}

#[test]
fn differential_seeds_15_19() {
    run_seeds(15..20);
}

#[test]
fn differential_seeds_20_24() {
    run_seeds(20..25);
}

#[test]
fn differential_seeds_25_29() {
    run_seeds(25..30);
}

/// The minimizer itself must terminate and produce a spec that still
/// parses, even on a healthy query (no divergence: candidates all pass).
#[test]
fn minimizer_produces_valid_sql() {
    let mut rng = StdRng::seed_from_u64(42);
    let cat = gen_catalog(&mut rng);
    let _db = database_from_script("diff", &cat.script).expect("catalog script");
    for _ in 0..50 {
        let spec = gen_spec(&mut rng, &cat);
        for candidate in shrink_candidates(&spec) {
            let sql = candidate.to_sql();
            // Every shrink candidate must stay syntactically valid: the
            // minimizer's output is only useful if it still runs.
            let parsed = sqlengine::parse_statement(&sql);
            assert!(parsed.is_ok(), "shrink candidate does not parse: {sql}");
        }
    }
}
