//! Property tests over the cost model and the optimizer's structural
//! guarantees, complementing the differential harness in
//! `plan_differential.rs`: these pin down *estimates* (which the harness
//! cannot observe) rather than results.
//!
//! * a `Filter` never increases estimated cardinality;
//! * optimization (pushdown, reordering, hash joins, caps) never increases
//!   the plan's total estimated cost over the naive plan — the optimizer's
//!   final cost guard, asserted from the outside;
//! * join reordering preserves the result schema (binding/column pairs in
//!   output order);
//! * estimates are monotone in catalog row counts: growing base tables
//!   never shrinks an estimate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sqlengine::ast::{BinaryOp, Expr, SetExpr, Statement};
use sqlengine::{
    database_from_script, estimate_node, lower_relation, optimize_select, output_bindings,
    parse_statement, Database, PlanNode,
};

/// Build a 3-table catalog with the given row counts. `t1` and `t2` carry
/// FK edges to `t0` so generated joins have real equi columns.
fn make_db(rows: &[usize; 3]) -> Database {
    let mut script = String::from(
        "CREATE TABLE t0 (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, name TEXT);\n\
         CREATE TABLE t1 (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, name TEXT, \
            t0_id INTEGER, FOREIGN KEY (t0_id) REFERENCES t0(id));\n\
         CREATE TABLE t2 (id INTEGER PRIMARY KEY, grp INTEGER, val INTEGER, name TEXT, \
            t0_id INTEGER, FOREIGN KEY (t0_id) REFERENCES t0(id));\n",
    );
    for (t, &n) in rows.iter().enumerate() {
        for pk in 1..=n {
            let fk = if t == 0 {
                String::new()
            } else if rows[0] == 0 {
                ", NULL".into()
            } else {
                format!(", {}", 1 + pk % rows[0])
            };
            script.push_str(&format!(
                "INSERT INTO t{t} VALUES ({pk}, {}, {}, 'w{}'{fk});\n",
                pk % 4,
                (pk * 7) % 50,
                pk % 5,
            ));
        }
    }
    database_from_script("props", &script).expect("catalog script")
}

/// Generate a seeded join query over `t0`/`t1`/`t2` (the `make_db` schema).
fn gen_sql(rng: &mut StdRng) -> String {
    let nfactors = rng.random_range(1..=3usize);
    let mut sql = String::from("SELECT f0.id FROM t0 AS f0");
    for i in 1..nfactors {
        let table = rng.random_range(1..=2usize);
        match rng.random_range(0..4u32) {
            0 => sql.push_str(&format!(", t{table} AS f{i}")),
            1 => sql.push_str(&format!(" LEFT JOIN t{table} AS f{i} ON f{i}.t0_id = f0.id")),
            2 => sql.push_str(&format!(" JOIN t{table} AS f{i} ON f{i}.t0_id = f0.id")),
            _ => sql.push_str(&format!(" JOIN t{table} AS f{i} ON f{i}.grp = f0.grp")),
        }
    }
    let mut preds = Vec::new();
    for _ in 0..rng.random_range(0..=2usize) {
        let f = rng.random_range(0..nfactors);
        preds.push(match rng.random_range(0..4u32) {
            0 => format!("f{f}.val < {}", rng.random_range(0..50i64)),
            1 => format!("f{f}.grp = {}", rng.random_range(0..4i64)),
            2 => format!("f{f}.name LIKE 'w%'"),
            _ => format!("f{f}.val BETWEEN 5 AND {}", rng.random_range(5..60i64)),
        });
    }
    if !preds.is_empty() {
        sql.push_str(&format!(" WHERE {}", preds.join(" AND ")));
    }
    if rng.random_bool(0.3) {
        sql.push_str(&format!(" LIMIT {}", rng.random_range(0..=10usize)));
    }
    sql
}

/// Parse a SELECT and produce its naive and optimized relational plans.
fn plans(db: &Database, sql: &str) -> (PlanNode, PlanNode) {
    let Ok(Statement::Query(q)) = parse_statement(sql) else {
        panic!("generated SQL does not parse: {sql}");
    };
    let SetExpr::Select(s) = &q.body else {
        panic!("generated SQL is not a plain SELECT: {sql}");
    };
    let naive = lower_relation(s.from.as_ref(), s.selection.clone());
    let opt = optimize_select(db, s, &q.order_by, q.limit.as_ref(), q.offset.as_ref());
    (naive, opt)
}

/// A pool of predicates with different estimated selectivities.
fn predicate(rng: &mut StdRng) -> Expr {
    let name = ["grp", "val"][rng.random_range(0..2usize)];
    let col = move || Expr::qcol("f0", name);
    match rng.random_range(0..5u32) {
        0 => Expr::binary(col(), BinaryOp::Eq, Expr::lit(1i64)),
        1 => Expr::binary(col(), BinaryOp::Lt, Expr::lit(10i64)),
        2 => Expr::IsNull { expr: Box::new(col()), negated: rng.random_bool(0.5) },
        3 => Expr::Between {
            expr: Box::new(col()),
            low: Box::new(Expr::lit(1i64)),
            high: Box::new(Expr::lit(20i64)),
            negated: false,
        },
        _ => Expr::binary(
            Expr::binary(col(), BinaryOp::Gt, Expr::lit(3i64)),
            BinaryOp::Or,
            Expr::binary(col(), BinaryOp::Eq, Expr::lit(0i64)),
        ),
    }
}

const EPS: f64 = 1e-6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn filter_never_increases_estimated_cardinality(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = make_db(&[
            rng.random_range(0..=40usize),
            rng.random_range(0..=40usize),
            rng.random_range(0..=40usize),
        ]);
        let (naive, opt) = plans(&db, &gen_sql(&mut rng));
        for input in [naive, opt] {
            let before = estimate_node(&db, &input).rows;
            let filtered = PlanNode::Filter {
                input: Box::new(input),
                predicate: predicate(&mut rng),
            };
            let after = estimate_node(&db, &filtered).rows;
            prop_assert!(
                after <= before + EPS,
                "filter raised cardinality estimate: {before} -> {after}"
            );
        }
    }

    #[test]
    fn optimization_never_increases_total_estimated_cost(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = make_db(&[
            rng.random_range(0..=40usize),
            rng.random_range(1..=40usize),
            rng.random_range(1..=40usize),
        ]);
        for _ in 0..10 {
            let sql = gen_sql(&mut rng);
            let (naive, opt) = plans(&db, &sql);
            let naive_cost = estimate_node(&db, &naive).cost.total();
            let opt_cost = estimate_node(&db, &opt).cost.total();
            prop_assert!(
                opt_cost <= naive_cost * (1.0 + EPS) + EPS,
                "optimized plan estimated dearer than naive ({opt_cost} > {naive_cost}) for {sql}"
            );
        }
    }

    #[test]
    fn join_reordering_preserves_result_schema(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = make_db(&[
            rng.random_range(1..=40usize),
            rng.random_range(1..=40usize),
            rng.random_range(1..=40usize),
        ]);
        for _ in 0..10 {
            let sql = gen_sql(&mut rng);
            let (naive, opt) = plans(&db, &sql);
            let naive_schema = output_bindings(&db, &naive);
            let opt_schema = output_bindings(&db, &opt);
            prop_assert!(naive_schema.is_some(), "naive schema unresolvable for {sql}");
            prop_assert!(naive_schema == opt_schema, "schema drift for {sql}");
        }
    }

    #[test]
    fn estimates_are_monotone_in_catalog_row_counts(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let small = [
            rng.random_range(0..=20usize),
            rng.random_range(0..=20usize),
            rng.random_range(0..=20usize),
        ];
        let grow = [
            rng.random_range(0..=20usize),
            rng.random_range(0..=20usize),
            rng.random_range(0..=20usize),
        ];
        let big = [small[0] + grow[0], small[1] + grow[1], small[2] + grow[2]];
        let db_small = make_db(&small);
        let db_big = make_db(&big);
        for _ in 0..10 {
            let sql = gen_sql(&mut rng);
            // The naive plan is identical for both catalogs (it is purely
            // syntactic), so any estimate difference comes from row counts.
            let (naive, _) = plans(&db_small, &sql);
            let est_small = estimate_node(&db_small, &naive);
            let est_big = estimate_node(&db_big, &naive);
            prop_assert!(
                est_small.rows <= est_big.rows + EPS,
                "row estimate shrank as tables grew for {sql}: {} -> {}",
                est_small.rows,
                est_big.rows
            );
            prop_assert!(
                est_small.inter_rows <= est_big.inter_rows + EPS,
                "intermediate-row estimate shrank as tables grew for {sql}: {} -> {}",
                est_small.inter_rows,
                est_big.inter_rows
            );
            prop_assert!(
                est_small.cost.total() <= est_big.cost.total() + EPS,
                "cost estimate shrank as tables grew for {sql}: {} -> {}",
                est_small.cost.total(),
                est_big.cost.total()
            );
        }
    }
}
