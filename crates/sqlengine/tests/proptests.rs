//! Property-based tests over the engine's core invariants.

use proptest::prelude::*;
use sqlengine::functions::like_match;
use sqlengine::value::format_real;
use sqlengine::{database_from_script, execute_query, parse_query, Database, Value};

fn db_with_ints(xs: &[i64]) -> Database {
    let mut script = String::from("CREATE TABLE t (x INTEGER, tag TEXT);");
    for (i, x) in xs.iter().enumerate() {
        script.push_str(&format!("INSERT INTO t VALUES ({x}, 'r{}');", i % 3));
    }
    database_from_script("prop", &script).unwrap()
}

proptest! {
    #[test]
    fn total_order_is_transitive_and_antisymmetric(a in any::<i64>(), b in any::<i64>(), c in any::<f64>()) {
        let va = Value::Integer(a);
        let vb = Value::Integer(b);
        let vc = Value::Real(c);
        // antisymmetry
        prop_assert_eq!(va.total_cmp(&vb), vb.total_cmp(&va).reverse());
        // transitivity over a chain of three
        let mut vals = [va, vb, vc];
        vals.sort();
        prop_assert!(vals[0] <= vals[1] && vals[1] <= vals[2] && vals[0] <= vals[2]);
    }

    #[test]
    fn equal_values_hash_equal(a in -1_000_000i64..1_000_000) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let i = Value::Integer(a);
        let r = Value::Real(a as f64);
        prop_assert_eq!(&i, &r);
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        i.hash(&mut h1);
        r.hash(&mut h2);
        prop_assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn count_matches_vector_length(xs in prop::collection::vec(-1000i64..1000, 0..40)) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, "SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(&r.rows[0][0], &Value::Integer(xs.len() as i64));
    }

    #[test]
    fn sum_and_avg_agree_with_reference(xs in prop::collection::vec(-1000i64..1000, 1..40)) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, "SELECT SUM(x), AVG(x), MIN(x), MAX(x) FROM t").unwrap();
        let sum: i64 = xs.iter().sum();
        prop_assert_eq!(&r.rows[0][0], &Value::Integer(sum));
        let avg = r.rows[0][1].as_f64().unwrap();
        prop_assert!((avg - sum as f64 / xs.len() as f64).abs() < 1e-9);
        prop_assert_eq!(&r.rows[0][2], &Value::Integer(*xs.iter().min().unwrap()));
        prop_assert_eq!(&r.rows[0][3], &Value::Integer(*xs.iter().max().unwrap()));
    }

    #[test]
    fn where_partition_is_complete(xs in prop::collection::vec(-1000i64..1000, 0..40), pivot in -1000i64..1000) {
        // |x <= p| + |x > p| == |t| when x is never NULL.
        let db = db_with_ints(&xs);
        let le = execute_query(&db, &format!("SELECT COUNT(*) FROM t WHERE x <= {pivot}")).unwrap();
        let gt = execute_query(&db, &format!("SELECT COUNT(*) FROM t WHERE x > {pivot}")).unwrap();
        let (a, b) = (le.rows[0][0].as_f64().unwrap(), gt.rows[0][0].as_f64().unwrap());
        prop_assert_eq!((a + b) as usize, xs.len());
    }

    #[test]
    fn order_by_produces_sorted_rows(xs in prop::collection::vec(-1000i64..1000, 0..40)) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, "SELECT x FROM t ORDER BY x ASC").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| match row[0] { Value::Integer(i) => i, _ => unreachable!() }).collect();
        let mut want = xs.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn distinct_removes_exactly_duplicates(xs in prop::collection::vec(-20i64..20, 0..60)) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, "SELECT DISTINCT x FROM t").unwrap();
        let unique: std::collections::HashSet<i64> = xs.iter().copied().collect();
        prop_assert_eq!(r.rows.len(), unique.len());
    }

    #[test]
    fn union_is_commutative_as_multiset(xs in prop::collection::vec(-50i64..50, 0..30), ys in prop::collection::vec(-50i64..50, 0..30)) {
        let db = db_with_ints(&xs);
        let _ = ys; // second operand drawn from same table with different predicates
        let a = execute_query(&db, "SELECT x FROM t WHERE x < 0 UNION SELECT x FROM t WHERE x >= 0").unwrap();
        let b = execute_query(&db, "SELECT x FROM t WHERE x >= 0 UNION SELECT x FROM t WHERE x < 0").unwrap();
        prop_assert!(a.same_result(&b));
    }

    #[test]
    fn limit_truncates(xs in prop::collection::vec(-1000i64..1000, 0..40), k in 0usize..50) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, &format!("SELECT x FROM t LIMIT {k}")).unwrap();
        prop_assert_eq!(r.rows.len(), xs.len().min(k));
    }

    #[test]
    fn group_by_counts_sum_to_total(xs in prop::collection::vec(-1000i64..1000, 0..40)) {
        let db = db_with_ints(&xs);
        let r = execute_query(&db, "SELECT tag, COUNT(*) FROM t GROUP BY tag").unwrap();
        let total: f64 = r.rows.iter().map(|row| row[1].as_f64().unwrap()).sum();
        prop_assert_eq!(total as usize, xs.len());
        prop_assert!(r.rows.len() <= 3);
    }

    #[test]
    fn query_rendering_roundtrips(limit in 1i64..100, pivot in -100i64..100) {
        let sql = format!(
            "SELECT tag, COUNT(*) AS n FROM t WHERE x > {pivot} GROUP BY tag HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT {limit}"
        );
        let q1 = parse_query(&sql).unwrap();
        let q2 = parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    #[test]
    fn rendered_query_executes_identically(xs in prop::collection::vec(-100i64..100, 0..30)) {
        let db = db_with_ints(&xs);
        let sql = "SELECT tag, SUM(x) FROM t GROUP BY tag ORDER BY tag";
        let q = parse_query(sql).unwrap();
        let direct = execute_query(&db, sql).unwrap();
        let roundtripped = execute_query(&db, &q.to_string()).unwrap();
        prop_assert!(direct.same_result(&roundtripped));
    }

    #[test]
    fn like_underscore_matches_len(text in "[a-z]{0,12}") {
        let pattern: String = std::iter::repeat_n('_', text.chars().count()).collect();
        prop_assert!(like_match(&text, &pattern));
        prop_assert!(like_match(&text, "%"));
        if !text.is_empty() {
            // One fewer underscore must not match.
            let short: String = std::iter::repeat_n('_', text.chars().count() - 1).collect();
            prop_assert!(!like_match(&text, &short));
        }
    }

    #[test]
    fn like_contains_agrees_with_str_contains(hay in "[a-c]{0,10}", needle in "[a-c]{1,3}") {
        let pattern = format!("%{needle}%");
        prop_assert_eq!(like_match(&hay, &pattern), hay.contains(&needle));
    }

    #[test]
    fn format_real_parses_back(r in -1.0e12f64..1.0e12) {
        let s = format_real(r);
        let back: f64 = s.parse().unwrap();
        prop_assert!((back - r).abs() <= r.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn cast_to_text_and_back_preserves_integers(i in -1_000_000i64..1_000_000) {
        let v = Value::Integer(i);
        let as_text = v.cast(sqlengine::DataType::Text);
        let back = as_text.cast(sqlengine::DataType::Integer);
        prop_assert_eq!(back, v);
    }

    /// The governor's no-hang invariant: any generated query — including
    /// cross-join blowups and deep nesting — either completes, or returns
    /// a typed error, within the deadline. Never a hang, never a panic.
    #[test]
    fn governed_execution_never_hangs_or_panics(
        factors in 1usize..4,
        nesting in 0usize..8,
        threshold in -50i64..150,
        limit in 0usize..30,
        rows in 20usize..80,
        aggregate in 0usize..3,
    ) {
        use sqlengine::{catch_panics, execute_query_governed, Error, ExecLimits};
        use std::time::{Duration, Instant};

        let db = db_with_ints(&(0..rows as i64).collect::<Vec<_>>());
        let projection = match aggregate {
            0 => "*".to_string(),
            1 => "COUNT(*)".to_string(),
            _ => "MIN(t0.x)".to_string(),
        };
        let from: Vec<String> = (0..factors).map(|i| format!("t AS t{i}")).collect();
        let mut sql = format!(
            "SELECT {projection} FROM {} WHERE t0.x < {threshold} LIMIT {limit}",
            from.join(", ")
        );
        for i in 0..nesting {
            sql = format!("SELECT * FROM ({sql}) AS n{i}");
        }

        let deadline = Duration::from_secs(5);
        let limits = ExecLimits {
            deadline: Some(deadline),
            max_rows: Some(2_000),
            max_intermediate_rows: Some(20_000),
            max_memory_bytes: Some(1 << 20),
            max_recursion_depth: Some(4),
        };
        let started = Instant::now();
        let outcome = catch_panics(|| execute_query_governed(&db, &sql, &limits));
        // Generous slack over the deadline: budget kills are deterministic
        // and near-instant; the wall clock only backstops hot loops.
        prop_assert!(started.elapsed() < deadline * 2, "governed query overran: {}", sql);
        match outcome {
            Ok(_) => {}
            Err(Error::Internal(msg)) => {
                return Err(format!("governed execution panicked on {sql}: {msg}"));
            }
            Err(_) => {} // typed failure (budget, parse, semantic) is fine
        }
    }
}
