//! Schema catalog: databases, tables, columns, keys, comments and rows.
//!
//! The catalog is also the interface the CodeS prompt constructor uses: it
//! exposes column comments (§6.3(2)), representative values (§6.3(3)) and
//! primary/foreign keys (§6.3(4)).

use std::collections::HashSet;

use crate::error::{Error, Result};
use crate::types::DataType;
use crate::value::{Row, Value};

/// A column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Storage class.
    pub data_type: DataType,
    /// Human-readable comment; the paper attaches these to ambiguous or
    /// abbreviated column names (Table 2).
    pub comment: Option<String>,
    /// Part of the table's primary key.
    pub primary_key: bool,
    /// Rejects NULL on insert.
    pub not_null: bool,
}

impl Column {
    /// A nullable, non-key column of the given type.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Column {
        Column {
            name: name.into(),
            data_type,
            comment: None,
            primary_key: false,
            not_null: false,
        }
    }

    /// Attach a human-readable comment (§6.3(2) metadata).
    pub fn with_comment(mut self, comment: impl Into<String>) -> Column {
        self.comment = Some(comment.into());
        self
    }

    /// Mark as primary key (implies NOT NULL).
    pub fn primary_key(mut self) -> Column {
        self.primary_key = true;
        self.not_null = true;
        self
    }
}

/// A foreign-key edge `table.column -> ref_table.ref_column`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column of the owning table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

/// Immutable description of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Outgoing foreign-key edges.
    pub foreign_keys: Vec<ForeignKey>,
    /// Optional table-level comment.
    pub comment: Option<String>,
}

impl TableSchema {
    /// A schema with no keys or comment.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns,
            foreign_keys: Vec::new(),
            comment: None,
        }
    }

    /// Add a foreign-key edge `self.column -> ref_table.ref_column`.
    pub fn with_foreign_key(
        mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> TableSchema {
        self.foreign_keys.push(ForeignKey {
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    /// Case-insensitive column lookup.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Case-insensitive column access.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// All primary-key columns.
    pub fn primary_key_columns(&self) -> Vec<&Column> {
        self.columns.iter().filter(|c| c.primary_key).collect()
    }
}

/// A table: schema plus row storage.
#[derive(Debug, Clone)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// Row storage, in insertion order.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: TableSchema) -> Table {
        Table { schema, rows: Vec::new() }
    }

    /// Insert a row, coercing each value to the column's storage class and
    /// enforcing NOT NULL.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(Error::Catalog(format!(
                "table {}: expected {} values, got {}",
                self.schema.name,
                self.schema.columns.len(),
                row.len()
            )));
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (value, col) in row.into_iter().zip(&self.schema.columns) {
            if value.is_null() {
                if col.not_null {
                    return Err(Error::Catalog(format!(
                        "NOT NULL constraint failed: {}.{}",
                        self.schema.name, col.name
                    )));
                }
                coerced.push(Value::Null);
                continue;
            }
            // Coerce only when the storage class differs and the conversion
            // is faithful (e.g. text that is numeric into a numeric column).
            let v = match (col.data_type, &value) {
                (DataType::Integer, Value::Real(r)) if r.fract() == 0.0 => Value::Integer(*r as i64),
                (DataType::Real, Value::Integer(i)) => Value::Real(*i as f64),
                (DataType::Integer, Value::Text(t)) => match t.trim().parse::<i64>() {
                    Ok(i) => Value::Integer(i),
                    Err(_) => value,
                },
                (DataType::Real, Value::Text(t)) => match t.trim().parse::<f64>() {
                    Ok(r) => Value::Real(r),
                    Err(_) => value,
                },
                (DataType::Text, Value::Integer(i)) => Value::Text(i.to_string()),
                (DataType::Text, Value::Real(r)) => Value::Text(crate::value::format_real(*r)),
                _ => value,
            };
            coerced.push(v);
        }
        self.rows.push(coerced);
        Ok(())
    }

    /// `SELECT DISTINCT col FROM t WHERE col IS NOT NULL LIMIT n` — the
    /// representative-value probe from §6.3(3) of the paper.
    pub fn representative_values(&self, column: &str, limit: usize) -> Vec<Value> {
        self.representative_values_capped(column, limit, usize::MAX)
    }

    /// Like [`Table::representative_values`] but scanning at most
    /// `max_scan` rows — used by hot feature-extraction paths where an
    /// approximate sample is sufficient.
    pub fn representative_values_capped(&self, column: &str, limit: usize, max_scan: usize) -> Vec<Value> {
        let Some(idx) = self.schema.column_index(column) else {
            return Vec::new();
        };
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in self.rows.iter().take(max_scan) {
            let v = &row[idx];
            if v.is_null() {
                continue;
            }
            if seen.insert(v.clone()) {
                out.push(v.clone());
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    /// Number of stored rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// Process-global source of revision tokens: every catalog mutation stamps
/// the database with a fresh, never-reused value, so two databases (or two
/// states of one database) never share a revision unless one is an
/// unmutated clone of the other.
static REVISION_TOKENS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn next_revision() -> u64 {
    REVISION_TOKENS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// A database: a named collection of tables.
#[derive(Debug, Clone)]
pub struct Database {
    /// Database id (the benchmark `db_id`).
    pub name: String,
    /// Tables in creation order.
    pub tables: Vec<Table>,
    /// Mutation token: refreshed by every catalog mutation (DDL or row
    /// access through [`Database::table_mut`]). Caches key derived state on
    /// this, so stale entries become unreachable the moment the catalog
    /// changes. In-process only — not stable across runs.
    revision: u64,
}

impl Default for Database {
    fn default() -> Database {
        Database::new("")
    }
}

impl Database {
    /// An empty database.
    pub fn new(name: impl Into<String>) -> Database {
        Database { name: name.into(), tables: Vec::new(), revision: next_revision() }
    }

    /// The current mutation token. Equal revisions imply identical catalog
    /// state (within this process); a differing revision means derived
    /// state (BM25 indexes, cached schema filters) must be rebuilt.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Stamp a fresh revision. Called by every mutating accessor; public so
    /// callers that mutate table internals through other routes can mark
    /// the database dirty themselves.
    pub fn bump_revision(&mut self) -> u64 {
        self.revision = next_revision();
        self.revision
    }

    /// Stamp this catalog with an externally observed revision token.
    ///
    /// For introspection mirrors: a catalog reconstructed from a live
    /// connection must carry the *backend's* revision, not the fresh tokens
    /// its own construction minted — otherwise every re-introspection of an
    /// unchanged schema would look like a mutation and invalidate caches.
    /// Callers must only stamp a faithful copy of the catalog state the
    /// token describes, preserving the "equal revisions imply identical
    /// catalog state" invariant.
    pub fn set_revision(&mut self, token: u64) {
        self.revision = token;
    }

    /// Create a table; errors if the name already exists.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<&mut Table> {
        if self.table(&schema.name).is_some() {
            return Err(Error::Catalog(format!("table {} already exists", schema.name)));
        }
        self.bump_revision();
        self.tables.push(Table::new(schema));
        Ok(self.tables.last_mut().unwrap())
    }

    /// Case-insensitive table access.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.schema.name.eq_ignore_ascii_case(name))
    }

    /// Case-insensitive mutable table access. Conservatively stamps a new
    /// revision when the table exists: handing out `&mut Table` means rows
    /// or schema may change.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        let ix = self
            .tables
            .iter()
            .position(|t| t.schema.name.eq_ignore_ascii_case(name))?;
        self.bump_revision();
        Some(&mut self.tables[ix])
    }

    /// The table names, in creation order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.schema.name.as_str()).collect()
    }

    /// Total number of non-null cell values in the database — the quantity
    /// the paper cites when motivating the BM25 coarse filter ("116.5
    /// million valid values").
    pub fn value_count(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t.rows
                    .iter()
                    .map(|r| r.iter().filter(|v| !v.is_null()).count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Iterate `(table, column, value)` over every distinct *text* value —
    /// the stream the value retriever indexes.
    pub fn text_values(&self) -> Vec<(String, String, String)> {
        let mut out = Vec::new();
        for t in &self.tables {
            for (ci, col) in t.schema.columns.iter().enumerate() {
                let mut seen = HashSet::new();
                for row in &t.rows {
                    if let Value::Text(s) = &row[ci] {
                        if seen.insert(s.as_str()) {
                            out.push((t.schema.name.clone(), col.name.clone(), s.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// All foreign-key edges in the database.
    pub fn foreign_keys(&self) -> Vec<(String, ForeignKey)> {
        self.tables
            .iter()
            .flat_map(|t| {
                t.schema
                    .foreign_keys
                    .iter()
                    .map(|fk| (t.schema.name.clone(), fk.clone()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new("shop");
        let customers = TableSchema::new(
            "customers",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text),
                Column::new("balance", DataType::Real),
            ],
        );
        db.create_table(customers).unwrap();
        let orders = TableSchema::new(
            "orders",
            vec![
                Column::new("id", DataType::Integer).primary_key(),
                Column::new("customer_id", DataType::Integer),
                Column::new("amount", DataType::Real),
            ],
        )
        .with_foreign_key("customer_id", "customers", "id");
        db.create_table(orders).unwrap();
        let t = db.table_mut("customers").unwrap();
        t.insert(vec![1.into(), "Alice".into(), 10.5.into()]).unwrap();
        t.insert(vec![2.into(), "Bob".into(), Value::Null]).unwrap();
        t.insert(vec![3.into(), "Alice".into(), 2.0.into()]).unwrap();
        db
    }

    #[test]
    fn create_and_lookup_are_case_insensitive() {
        let db = sample_db();
        assert!(db.table("CUSTOMERS").is_some());
        let t = db.table("customers").unwrap();
        assert_eq!(t.schema.column_index("NAME"), Some(1));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = sample_db();
        let dup = TableSchema::new("customers", vec![Column::new("x", DataType::Integer)]);
        assert!(matches!(db.create_table(dup), Err(Error::Catalog(_))));
    }

    #[test]
    fn insert_enforces_arity_and_not_null() {
        let mut db = sample_db();
        let t = db.table_mut("customers").unwrap();
        assert!(t.insert(vec![1.into()]).is_err());
        assert!(t.insert(vec![Value::Null, "x".into(), Value::Null]).is_err());
    }

    #[test]
    fn insert_coerces_storage_classes() {
        let mut db = sample_db();
        let t = db.table_mut("customers").unwrap();
        t.insert(vec![Value::Text("7".into()), Value::Integer(42), Value::Integer(3)])
            .unwrap();
        let row = t.rows.last().unwrap();
        assert_eq!(row[0], Value::Integer(7));
        assert_eq!(row[1], Value::Text("42".into()));
        assert_eq!(row[2], Value::Real(3.0));
    }

    #[test]
    fn representative_values_distinct_nonnull_limited() {
        let db = sample_db();
        let t = db.table("customers").unwrap();
        let names = t.representative_values("name", 2);
        assert_eq!(names, vec![Value::Text("Alice".into()), Value::Text("Bob".into())]);
        let balances = t.representative_values("balance", 5);
        assert_eq!(balances.len(), 2); // NULL skipped
    }

    #[test]
    fn value_count_and_text_values() {
        let db = sample_db();
        assert_eq!(db.value_count(), 8); // 9 cells minus one NULL
        let texts = db.text_values();
        assert_eq!(texts.len(), 2); // Alice, Bob (distinct)
    }

    #[test]
    fn revision_changes_on_mutation_and_is_stable_otherwise() {
        let mut db = sample_db();
        let r0 = db.revision();
        assert!(db.table("customers").is_some());
        assert_eq!(db.revision(), r0, "read access leaves the revision alone");
        db.table_mut("customers").unwrap();
        let r1 = db.revision();
        assert_ne!(r1, r0);
        db.create_table(TableSchema::new("t2", vec![Column::new("x", DataType::Integer)]))
            .unwrap();
        assert_ne!(db.revision(), r1);
        // A fresh database never shares a token with an existing one, even
        // under the same name.
        assert_ne!(Database::new("shop").revision(), db.revision());
    }

    #[test]
    fn foreign_keys_enumerated() {
        let db = sample_db();
        let fks = db.foreign_keys();
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].0, "orders");
        assert_eq!(fks[0].1.ref_table, "customers");
    }
}
