#![warn(missing_docs)]

//! # sqlengine
//!
//! An embedded, in-memory relational SQL engine built as the database
//! substrate for the CodeS text-to-SQL reproduction. The paper hosts its
//! benchmarks on SQLite; this crate plays that role, providing everything
//! the pipeline needs:
//!
//! * a catalog with column **comments**, **primary/foreign keys** and typed
//!   columns — the metadata §6.3 of the paper serializes into prompts;
//! * a SQL dialect covering the Spider/BIRD query space: joins, aggregates,
//!   `GROUP BY`/`HAVING`, `ORDER BY`/`LIMIT`, set operations, nested
//!   subqueries, `LIKE`/`BETWEEN`/`IN`, `CAST` and scalar functions;
//! * execution-based result comparison (the EX metric) and a deterministic
//!   cost model (the VES metric);
//! * representative-value extraction (`SELECT DISTINCT ... LIMIT 2`).
//!
//! ```
//! use sqlengine::{database_from_script, execute_query};
//!
//! let db = database_from_script(
//!     "demo",
//!     "CREATE TABLE singer (id INTEGER PRIMARY KEY, name TEXT, age INTEGER);
//!      INSERT INTO singer VALUES (1, 'Joe', 41), (2, 'Ann', 29);",
//! )
//! .unwrap();
//! let result = execute_query(&db, "SELECT name FROM singer WHERE age > 30").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod ast;
pub mod catalog;
pub mod cost;
pub mod engine;
pub mod error;
pub mod exec;
pub mod functions;
pub mod governor;
pub mod lexer;
pub mod optimizer;
pub mod parser;
pub mod plan;
pub mod result;
pub mod types;
pub mod value;

pub use catalog::{Column, Database, ForeignKey, Table, TableSchema};
pub use cost::{estimate_node, Cost, Estimate, ExecStats, HASH_JOIN_THRESHOLD};
pub use engine::{
    apply_statement, database_from_script, execute_ast, execute_ast_governed, execute_query,
    execute_query_governed, execute_query_naive, execute_query_plan, execute_query_with_stats,
    load_script, preprice_query, schema_to_ddl,
};
pub use error::{Error, FailureClass, Resource, Result};
/// Alias emphasizing the execution-failure role of [`Error`] at call sites
/// that only ever see runtime failures (governed execution, fault
/// boundaries).
pub use error::Error as ExecError;
pub use governor::{
    catch_panics, with_retry, with_retry_paced, Backoff, ExecLimits, Governor, BUDGET_DENIED,
};
pub use optimizer::{optimize_select, PLAN_PREPRICE_SHED, PLAN_REWRITES, PREPRICE_SHED_FACTOR};
pub use parser::{parse_query, parse_script, parse_statement};
pub use plan::{lower_query, lower_relation, output_bindings, EquiJoin, PlanMode, PlanNode};
pub use result::QueryResult;
pub use types::DataType;
pub use value::{Row, Value};
