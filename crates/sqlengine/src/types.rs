//! Column data types (storage classes).

use std::fmt;

/// The three storage classes the engine supports, matching what the CodeS
/// benchmarks use (SQLite's NUMERIC/BLOB affinities are folded away).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integers.
    Integer,
    /// 64-bit floats.
    Real,
    /// UTF-8 text.
    Text,
}

impl DataType {
    /// Map a SQL type name to a storage class using SQLite-like affinity
    /// rules: anything containing INT is an integer, CHAR/CLOB/TEXT is text,
    /// REAL/FLOA/DOUB/NUM/DEC is real; unknown names default to text.
    pub fn from_sql_name(name: &str) -> DataType {
        let up = name.to_ascii_uppercase();
        if up.contains("INT") || up == "BOOL" || up == "BOOLEAN" {
            DataType::Integer
        } else if up.contains("CHAR") || up.contains("CLOB") || up.contains("TEXT") || up.contains("DATE") || up.contains("TIME") {
            DataType::Text
        } else if up.contains("REAL")
            || up.contains("FLOA")
            || up.contains("DOUB")
            || up.contains("NUM")
            || up.contains("DEC")
        {
            DataType::Real
        } else {
            DataType::Text
        }
    }

    /// Canonical SQL spelling used when serializing schemas into prompts.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Real => "REAL",
            DataType::Text => "TEXT",
        }
    }

    /// Whether arithmetic is meaningful without a CAST. The paper's §6.3
    /// metadata discussion hinges on this distinction.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Integer | DataType::Real)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_rules() {
        assert_eq!(DataType::from_sql_name("INTEGER"), DataType::Integer);
        assert_eq!(DataType::from_sql_name("bigint"), DataType::Integer);
        assert_eq!(DataType::from_sql_name("VARCHAR(255)"), DataType::Text);
        assert_eq!(DataType::from_sql_name("double precision"), DataType::Real);
        assert_eq!(DataType::from_sql_name("DECIMAL(10,2)"), DataType::Real);
        assert_eq!(DataType::from_sql_name("DATE"), DataType::Text);
        assert_eq!(DataType::from_sql_name("mystery"), DataType::Text);
    }

    #[test]
    fn numeric_flag() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Real.is_numeric());
        assert!(!DataType::Text.is_numeric());
    }
}
