//! Tree-walking query executor with deterministic cost accounting.
//!
//! Working rows are `Cow<[Value]>`: base-table scans borrow rows from the
//! catalog and only join matches / derived results are materialized, so
//! scan-filter-project queries never copy the table.
//!
//! Execution is governed: the executor consults its [`Governor`] at every
//! operator boundary (scan, join pair, grouped row, projected row, nested
//! query) so runaway statements fail with [`Error::BudgetExceeded`] instead
//! of wedging the process. `Executor::new` runs ungoverned (unlimited
//! budgets); untrusted/generated SQL goes through [`Executor::with_limits`].

// This module executes model-generated SQL; a panic here escapes into beam
// search and evaluation workers. Every fallible case must return an Error.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::borrow::Cow;
use std::collections::HashMap;
use std::rc::Rc;

use crate::ast::*;
use crate::catalog::Database;
use crate::cost::{ExecStats, HASH_JOIN_THRESHOLD};
use crate::error::{Error, Result};
use crate::functions::{concat_text, eval_scalar, like_match};
use crate::governor::{ExecLimits, Governor};
use crate::plan::{PlanMode, PlanNode, Scope, ScopeCol};
use crate::result::QueryResult;
use crate::types::DataType;
use crate::value::{Row, Value};

/// Executes queries against one database, accumulating [`ExecStats`].
pub struct Executor<'a> {
    db: &'a Database,
    /// Counters accumulated across every statement this executor ran.
    pub stats: ExecStats,
    /// Resource budgets, consulted at operator boundaries.
    gov: Governor,
    /// Which relational plan each SELECT core runs (naive or optimized).
    mode: PlanMode,
    /// Plans executed by this executor. Derived-table subqueries inside a
    /// plan are cloned ASTs whose addresses key the subquery caches below;
    /// keeping every plan alive for the executor's lifetime keeps those
    /// keys from being reused by a later allocation.
    plan_arena: Vec<Rc<PlanNode>>,
    /// Uncorrelated subqueries are evaluated once and memoized (keyed by
    /// AST address, which is stable for the duration of one execution).
    scalar_cache: HashMap<usize, Value>,
    in_cache: HashMap<usize, (std::collections::HashSet<Value>, bool)>,
    exists_cache: HashMap<usize, bool>,
}

/// A working row: borrowed from a base table or owned (join outputs,
/// derived tables).
type CowRow<'a> = Cow<'a, [Value]>;

/// Evaluation context: a single row, an un-materialized join pair, or a
/// group of rows (aggregate queries). In group context, bare columns read
/// from the group's first row (SQLite semantics).
enum Ctx<'r, 'a> {
    Row(&'r [Value]),
    /// A candidate join row: left part + right part (not yet concatenated).
    Pair(&'r [Value], &'r [Value]),
    Group(&'r [CowRow<'a>]),
}

impl<'r, 'a> Ctx<'r, 'a> {
    fn cell(&self, idx: usize) -> Option<&Value> {
        match self {
            Ctx::Row(r) => r.get(idx),
            Ctx::Pair(l, r) => {
                if idx < l.len() {
                    l.get(idx)
                } else {
                    r.get(idx - l.len())
                }
            }
            Ctx::Group(rows) => rows.first().and_then(|r| r.as_ref().get(idx)),
        }
    }
}

impl<'a> Executor<'a> {
    /// An ungoverned executor (unlimited budgets) with fresh counters and
    /// caches. For untrusted SQL use [`Executor::with_limits`].
    pub fn new(db: &'a Database) -> Executor<'a> {
        Executor::with_limits(db, &ExecLimits::unlimited())
    }

    /// An executor whose execution is bounded by `limits`. The deadline
    /// clock starts here, not at the first `query` call. Runs optimized
    /// plans; use [`Executor::with_mode`] for the naive reference path.
    pub fn with_limits(db: &'a Database, limits: &ExecLimits) -> Executor<'a> {
        Executor::with_mode(db, limits, PlanMode::Optimized)
    }

    /// An executor pinned to a specific [`PlanMode`]. `PlanMode::Naive`
    /// reproduces the syntactic-order reference semantics the differential
    /// harness compares against.
    pub fn with_mode(db: &'a Database, limits: &ExecLimits, mode: PlanMode) -> Executor<'a> {
        Executor {
            db,
            stats: ExecStats::default(),
            gov: Governor::new(*limits),
            mode,
            plan_arena: Vec::new(),
            scalar_cache: HashMap::new(),
            in_cache: HashMap::new(),
            exists_cache: HashMap::new(),
        }
    }

    /// Execute a full query. Enters a governed nesting scope: every
    /// recursive `query` call (subqueries, derived tables, nested set
    /// operands) counts against the recursion-depth budget.
    pub fn query(&mut self, q: &Query) -> Result<QueryResult> {
        self.gov.enter_query()?;
        let result = self.query_body(q);
        self.gov.exit_query();
        let result = result?;
        self.gov.check_output_rows(result.rows.len() as u64)?;
        Ok(result)
    }

    fn query_body(&mut self, q: &Query) -> Result<QueryResult> {
        match &q.body {
            SetExpr::Select(s) => self.select_full(s, &q.order_by, q.limit.as_ref(), q.offset.as_ref()),
            _ => {
                let base = self.set_expr(&q.body)?;
                self.apply_output_order(base, &q.order_by, q.limit.as_ref(), q.offset.as_ref())
            }
        }
    }

    fn set_expr(&mut self, se: &SetExpr) -> Result<QueryResult> {
        match se {
            SetExpr::Select(s) => self.select_full(s, &[], None, None),
            SetExpr::Nested(q) => self.query(q),
            SetExpr::SetOp { op, all, left, right } => {
                let l = self.set_expr(left)?;
                let r = self.set_expr(right)?;
                if !l.rows.is_empty() && !r.rows.is_empty() && l.rows[0].len() != r.rows[0].len() {
                    return Err(Error::Exec(format!(
                        "set operands have different column counts ({} vs {})",
                        l.rows[0].len(),
                        r.rows[0].len()
                    )));
                }
                self.stats.rows_grouped += (l.rows.len() + r.rows.len()) as u64;
                self.gov.charge_intermediate(
                    (l.rows.len() + r.rows.len()) as u64,
                    rows_bytes(&l.rows) + rows_bytes(&r.rows),
                )?;
                let rows = match (op, all) {
                    (SetOpKind::Union, true) => {
                        let mut rows = l.rows;
                        rows.extend(r.rows);
                        rows
                    }
                    (SetOpKind::Union, false) => {
                        let mut rows = l.rows;
                        rows.extend(r.rows);
                        dedup_rows(rows)
                    }
                    (SetOpKind::Intersect, _) => {
                        let rset: std::collections::HashSet<Row> = r.rows.into_iter().collect();
                        dedup_rows(l.rows.into_iter().filter(|row| rset.contains(row)).collect())
                    }
                    (SetOpKind::Except, _) => {
                        let rset: std::collections::HashSet<Row> = r.rows.into_iter().collect();
                        dedup_rows(l.rows.into_iter().filter(|row| !rset.contains(row)).collect())
                    }
                };
                Ok(QueryResult::new(l.columns, rows, false))
            }
        }
    }

    /// ORDER BY / LIMIT over an already-materialized result: order terms
    /// must be output columns or 1-based positions.
    fn apply_output_order(
        &mut self,
        mut result: QueryResult,
        order_by: &[OrderItem],
        limit: Option<&Expr>,
        offset: Option<&Expr>,
    ) -> Result<QueryResult> {
        if !order_by.is_empty() {
            let mut keys = Vec::with_capacity(order_by.len());
            for item in order_by {
                let idx = match &item.expr {
                    Expr::Literal(Value::Integer(k)) => {
                        let k = *k as usize;
                        if k == 0 || k > result.columns.len() {
                            return Err(Error::Bind(format!("ORDER BY position {k} out of range")));
                        }
                        k - 1
                    }
                    Expr::Column { table: None, name } => result
                        .columns
                        .iter()
                        .position(|c| c.eq_ignore_ascii_case(name))
                        .ok_or_else(|| Error::Bind(format!("ORDER BY column {name} not in output")))?,
                    other => {
                        return Err(Error::Unsupported(format!(
                            "ORDER BY over a set operation supports output columns only, got {other}"
                        )))
                    }
                };
                keys.push((idx, item.desc));
            }
            self.stats.record_sort(result.rows.len());
            result.rows.sort_by(|a, b| {
                for (idx, desc) in &keys {
                    let ord = a[*idx].total_cmp(&b[*idx]);
                    if ord != std::cmp::Ordering::Equal {
                        return if *desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
            result.ordered = true;
        }
        self.apply_limit(&mut result, limit, offset)?;
        Ok(result)
    }

    fn apply_limit(&mut self, result: &mut QueryResult, limit: Option<&Expr>, offset: Option<&Expr>) -> Result<()> {
        let scope = Scope::default();
        let empty: Row = Vec::new();
        if let Some(off) = offset {
            let v = self.eval(off, &scope, &Ctx::Row(&empty))?;
            let n = v.as_f64().unwrap_or(0.0).max(0.0) as usize;
            if n < result.rows.len() {
                result.rows.drain(..n);
            } else {
                result.rows.clear();
            }
        }
        if let Some(lim) = limit {
            let v = self.eval(lim, &scope, &Ctx::Row(&empty))?;
            let n = v.as_f64().unwrap_or(0.0).max(0.0) as usize;
            result.rows.truncate(n);
        }
        Ok(())
    }

    /// Execute one SELECT core together with (query-level) ORDER BY/LIMIT,
    /// which may reference aggregates and source columns.
    fn select_full(
        &mut self,
        s: &Select,
        order_by: &[OrderItem],
        limit: Option<&Expr>,
        offset: Option<&Expr>,
    ) -> Result<QueryResult> {
        // Lower FROM/WHERE into a relational plan (optionally optimized)
        // and execute it. The plan is parked in the arena so cloned
        // subquery ASTs inside it stay alive as long as the caches keyed
        // by their addresses.
        let plan = Rc::new(match self.mode {
            PlanMode::Naive => crate::plan::lower_relation(s.from.as_ref(), s.selection.clone()),
            PlanMode::Optimized => crate::optimizer::optimize_select(
                self.db,
                s,
                order_by,
                limit,
                offset,
            ),
        });
        self.plan_arena.push(Rc::clone(&plan));
        let (scope, rows) = self.exec_plan(&plan, None)?;

        let has_aggregate = s
            .projection
            .iter()
            .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || s.having.as_ref().is_some_and(Expr::contains_aggregate);
        let aggregate_mode = !s.group_by.is_empty() || has_aggregate;

        // Alias map for ORDER BY / HAVING fallback resolution.
        let aliases: Vec<(String, usize)> = s
            .projection
            .iter()
            .enumerate()
            .filter_map(|(i, item)| match item {
                SelectItem::Expr { alias: Some(a), .. } => Some((a.to_lowercase(), i)),
                _ => None,
            })
            .collect();

        // Materialize output units (each evaluated in its own context).
        let mut projected: Vec<(Row, Vec<Value>)> = Vec::new(); // (projection, sort keys)
        let out_columns = self.output_columns(&s.projection, &scope)?;

        let project_unit = |exec: &mut Executor<'a>, ctx: &Ctx<'_, 'a>| -> Result<(Row, Vec<Value>)> {
            let mut out = Vec::with_capacity(s.projection.len());
            for item in &s.projection {
                match item {
                    SelectItem::Wildcard => {
                        for i in 0..scope.cols.len() {
                            out.push(ctx.cell(i).cloned().unwrap_or(Value::Null));
                        }
                    }
                    SelectItem::QualifiedWildcard(t) => {
                        let lt = t.to_lowercase();
                        let mut any = false;
                        for (i, c) in scope.cols.iter().enumerate() {
                            if c.binding == lt {
                                any = true;
                                out.push(ctx.cell(i).cloned().unwrap_or(Value::Null));
                            }
                        }
                        if !any {
                            return Err(Error::Bind(format!("no such table in wildcard: {t}")));
                        }
                    }
                    SelectItem::Expr { expr, .. } => out.push(exec.eval(expr, &scope, ctx)?),
                }
            }
            let mut keys = Vec::with_capacity(order_by.len());
            for item in order_by {
                let v = match &item.expr {
                    Expr::Literal(Value::Integer(k)) if (*k as usize) >= 1 && (*k as usize) <= out.len() => {
                        out[(*k - 1) as usize].clone()
                    }
                    Expr::Column { table: None, name } => {
                        // Alias first when it is not a source column.
                        match scope.resolve(None, name) {
                            Ok(_) => exec.eval(&item.expr, &scope, ctx)?,
                            Err(_) => {
                                let lname = name.to_lowercase();
                                match aliases.iter().find(|(a, _)| *a == lname) {
                                    Some((_, i)) => out[*i].clone(),
                                    None => exec.eval(&item.expr, &scope, ctx)?,
                                }
                            }
                        }
                    }
                    e => exec.eval(e, &scope, ctx)?,
                };
                keys.push(v);
            }
            Ok((out, keys))
        };

        if aggregate_mode {
            // Group rows.
            self.stats.rows_grouped += rows.len() as u64;
            let mut order: Vec<Vec<Value>> = Vec::new();
            let mut groups: HashMap<Vec<Value>, Vec<CowRow<'a>>> = HashMap::new();
            if s.group_by.is_empty() {
                order.push(Vec::new());
                groups.insert(Vec::new(), rows);
            } else {
                for row in rows {
                    self.gov.tick()?;
                    let mut key = Vec::with_capacity(s.group_by.len());
                    for g in &s.group_by {
                        key.push(self.eval_group_key(g, &scope, row.as_ref(), &aliases, &s.projection)?);
                    }
                    match groups.get_mut(&key) {
                        Some(bucket) => bucket.push(row),
                        None => {
                            order.push(key.clone());
                            groups.insert(key, vec![row]);
                        }
                    }
                }
            }
            for key in order {
                let bucket = groups
                    .remove(&key)
                    .ok_or_else(|| Error::Internal("group key vanished between passes".into()))?;
                let ctx = Ctx::Group(&bucket);
                self.gov.tick()?;
                if let Some(h) = &s.having {
                    if self.eval(h, &scope, &ctx)?.truthiness() != Some(true) {
                        continue;
                    }
                }
                projected.push(project_unit(self, &ctx)?);
            }
        } else {
            for row in &rows {
                self.gov.tick()?;
                projected.push(project_unit(self, &Ctx::Row(row.as_ref()))?);
            }
        }

        // DISTINCT before ordering (first occurrence wins).
        if s.distinct {
            self.stats.rows_grouped += projected.len() as u64;
            let mut seen = std::collections::HashSet::new();
            projected.retain(|(row, _)| seen.insert(row.clone()));
        }

        let ordered = !order_by.is_empty();
        if ordered {
            self.stats.record_sort(projected.len());
            let desc_flags: Vec<bool> = order_by.iter().map(|o| o.desc).collect();
            projected.sort_by(|(_, ka), (_, kb)| {
                for (i, desc) in desc_flags.iter().enumerate() {
                    let ord = ka[i].total_cmp(&kb[i]);
                    if ord != std::cmp::Ordering::Equal {
                        return if *desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        let rows: Vec<Row> = projected.into_iter().map(|(r, _)| r).collect();
        self.stats.rows_output += rows.len() as u64;
        let mut result = QueryResult::new(out_columns, rows, ordered);
        self.apply_limit(&mut result, limit, offset)?;
        Ok(result)
    }

    /// GROUP BY terms may be plain expressions, projection aliases, or
    /// 1-based output positions.
    fn eval_group_key(
        &mut self,
        g: &Expr,
        scope: &Scope,
        row: &[Value],
        aliases: &[(String, usize)],
        projection: &[SelectItem],
    ) -> Result<Value> {
        let resolve_alias = |name: &str| -> Option<&Expr> {
            let lname = name.to_lowercase();
            aliases.iter().find(|(a, _)| *a == lname).and_then(|(_, i)| match &projection[*i] {
                SelectItem::Expr { expr, .. } => Some(expr),
                _ => None,
            })
        };
        match g {
            Expr::Column { table: None, name } if scope.resolve(None, name).is_err() => {
                match resolve_alias(name) {
                    Some(expr) => self.eval(expr, scope, &Ctx::Row(row)),
                    None => self.eval(g, scope, &Ctx::Row(row)), // surface the bind error
                }
            }
            Expr::Literal(Value::Integer(k)) => {
                let idx = (*k - 1) as usize;
                match projection.get(idx) {
                    Some(SelectItem::Expr { expr, .. }) => self.eval(expr, scope, &Ctx::Row(row)),
                    _ => Err(Error::Bind(format!("GROUP BY position {k} out of range"))),
                }
            }
            _ => self.eval(g, scope, &Ctx::Row(row)),
        }
    }

    fn output_columns(&mut self, projection: &[SelectItem], scope: &Scope) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for item in projection {
            match item {
                SelectItem::Wildcard => out.extend(scope.cols.iter().map(|c| c.display.clone())),
                SelectItem::QualifiedWildcard(t) => {
                    let lt = t.to_lowercase();
                    out.extend(scope.cols.iter().filter(|c| c.binding == lt).map(|c| c.display.clone()));
                }
                SelectItem::Expr { expr, alias } => out.push(match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { name, .. } => name.clone(),
                        other => other.to_string(),
                    },
                }),
            }
        }
        Ok(out)
    }

    // -- plan execution ------------------------------------------------------

    /// Execute a relational plan node, returning its output scope and rows.
    ///
    /// `cap` is the LIMIT-propagation bound: when set, the node may stop
    /// after producing that many rows. It is only ever set by a `Cap` node
    /// (optimized plans), so naive plans execute exactly like the historic
    /// AST walker. It propagates through row-for-row nodes (`Permute`) and
    /// bounds each producing node's own loop; join and filter *inputs* run
    /// uncapped because their required input size is unknown.
    fn exec_plan(&mut self, node: &PlanNode, cap: Option<usize>) -> Result<(Scope, Vec<CowRow<'a>>)> {
        match node {
            // SELECT without FROM evaluates over a single empty row.
            PlanNode::Empty => Ok((Scope::default(), vec![Cow::Owned(Vec::new())])),
            PlanNode::Scan { table, binding } => self.scan_table(table, binding, cap),
            PlanNode::Derived { query, binding } => self.derived_rows(query, binding, cap),
            PlanNode::Filter { input, predicate } => {
                let (scope, rows) = self.exec_plan(input, None)?;
                let mut kept = Vec::new();
                for row in rows {
                    if cap.is_some_and(|c| kept.len() >= c) {
                        break;
                    }
                    self.gov.tick()?;
                    if self.eval(predicate, &scope, &Ctx::Row(row.as_ref()))?.truthiness()
                        == Some(true)
                    {
                        kept.push(row);
                    }
                }
                Ok((scope, kept))
            }
            PlanNode::Join { left, right, kind, on, equi } => {
                let (scope, lrows) = self.exec_plan(left, None)?;
                let (right_scope, rrows) = self.exec_plan(right, None)?;
                let mut combined = scope.clone();
                combined.cols.extend(right_scope.cols.iter().cloned());
                let rows = match kind {
                    JoinKind::Cross => self.nested_loop(lrows, &rrows, None, &combined, false, cap)?,
                    JoinKind::Inner => {
                        // Prefer optimizer-extracted keys; otherwise detect a
                        // bare equi ON at runtime exactly like the pre-plan
                        // executor did.
                        let keys = match equi {
                            Some(e) => Some((e.left_key, e.right_key, e.residual.as_ref())),
                            None => on
                                .as_ref()
                                .and_then(|o| self.equi_join_cols(o, &scope, &right_scope))
                                .map(|(li, ri)| (li, ri, None)),
                        };
                        match keys {
                            Some((li, ri, residual))
                                if (lrows.len() as u64) * (rrows.len() as u64)
                                    > HASH_JOIN_THRESHOLD =>
                            {
                                self.hash_join(lrows, &rrows, li, ri, residual, &combined, cap)?
                            }
                            _ => self.nested_loop(lrows, &rrows, on.as_ref(), &combined, false, cap)?,
                        }
                    }
                    JoinKind::Left => {
                        self.nested_loop(lrows, &rrows, on.as_ref(), &combined, true, cap)?
                    }
                };
                Ok((combined, rows))
            }
            PlanNode::Permute { input, indices } => {
                let (scope, rows) = self.exec_plan(input, cap)?;
                let mut cols = Vec::with_capacity(indices.len());
                for &i in indices {
                    cols.push(scope.cols.get(i).cloned().ok_or_else(|| {
                        Error::Internal(format!("permute index {i} out of scope"))
                    })?);
                }
                let mut out: Vec<CowRow<'a>> = Vec::with_capacity(rows.len());
                for row in rows {
                    self.gov.tick()?;
                    let src = row.as_ref();
                    let mut permuted = Vec::with_capacity(indices.len());
                    for &i in indices {
                        permuted.push(src.get(i).cloned().unwrap_or(Value::Null));
                    }
                    self.gov.charge_intermediate(1, row_bytes(&permuted))?;
                    out.push(Cow::Owned(permuted));
                }
                Ok((Scope { cols }, out))
            }
            PlanNode::Cap { input, cap: n } => {
                let effective = match cap {
                    Some(outer) => (*n).min(outer),
                    None => *n,
                };
                self.exec_plan(input, Some(effective))
            }
            PlanNode::Project { .. }
            | PlanNode::Aggregate { .. }
            | PlanNode::Sort { .. }
            | PlanNode::Limit { .. } => Err(Error::Internal(
                "presentation plan node reached the relational executor".into(),
            )),
        }
    }

    fn scan_table(
        &mut self,
        name: &str,
        binding: &str,
        cap: Option<usize>,
    ) -> Result<(Scope, Vec<CowRow<'a>>)> {
        let table = self
            .db
            .table(name)
            .ok_or_else(|| Error::Bind(format!("no such table: {name}")))?;
        let scope = Scope {
            cols: table
                .schema
                .columns
                .iter()
                .map(|c| ScopeCol {
                    binding: binding.to_string(),
                    name: c.name.to_lowercase(),
                    display: c.name.clone(),
                })
                .collect(),
        };
        let take = match cap {
            Some(c) => table.rows.len().min(c),
            None => table.rows.len(),
        };
        self.stats.rows_scanned += take as u64;
        // Borrowed scan: rows count against the budget, bytes do not
        // (nothing is copied).
        self.gov.charge_intermediate(take as u64, 0)?;
        Ok((scope, table.rows.iter().take(take).map(|r| Cow::Borrowed(r.as_slice())).collect()))
    }

    fn derived_rows(
        &mut self,
        subquery: &Query,
        binding: &str,
        cap: Option<usize>,
    ) -> Result<(Scope, Vec<CowRow<'a>>)> {
        self.stats.subqueries += 1;
        let mut result = self.query(subquery)?;
        if let Some(c) = cap {
            result.rows.truncate(c);
        }
        self.gov.charge_intermediate(result.rows.len() as u64, rows_bytes(&result.rows))?;
        let scope = Scope {
            cols: result
                .columns
                .iter()
                .map(|c| ScopeCol {
                    binding: binding.to_string(),
                    name: c.to_lowercase(),
                    display: c.clone(),
                })
                .collect(),
        };
        Ok((scope, result.rows.into_iter().map(Cow::Owned).collect()))
    }

    fn nested_loop(
        &mut self,
        left: Vec<CowRow<'a>>,
        right: &[CowRow<'a>],
        on: Option<&Expr>,
        combined: &Scope,
        left_outer: bool,
        cap: Option<usize>,
    ) -> Result<Vec<CowRow<'a>>> {
        let right_width = combined.cols.len().saturating_sub(left.first().map(|r| r.len()).unwrap_or(0));
        let mut out: Vec<CowRow<'a>> = Vec::new();
        'outer: for lrow in left {
            let mut matched = false;
            for rrow in right {
                if cap.is_some_and(|c| out.len() >= c) {
                    break 'outer;
                }
                self.stats.join_pairs += 1;
                self.gov.tick()?;
                let keep = match on {
                    Some(pred) => self
                        .eval(pred, combined, &Ctx::Pair(lrow.as_ref(), rrow.as_ref()))?
                        .truthiness()
                        == Some(true),
                    None => true,
                };
                if keep {
                    matched = true;
                    let mut candidate = lrow.as_ref().to_vec();
                    candidate.extend(rrow.iter().cloned());
                    self.gov.charge_intermediate(1, row_bytes(&candidate))?;
                    out.push(Cow::Owned(candidate));
                }
            }
            if cap.is_some_and(|c| out.len() >= c) {
                break;
            }
            if left_outer && !matched {
                let mut padded = lrow.into_owned();
                padded.extend(std::iter::repeat_n(Value::Null, right_width.max(right.first().map(|r| r.len()).unwrap_or(0))));
                self.gov.charge_intermediate(1, row_bytes(&padded))?;
                out.push(Cow::Owned(padded));
            }
        }
        Ok(out)
    }

    /// Detect `left.col = right.col` (either direction) for hash joins.
    fn equi_join_cols(&self, on: &Expr, left: &Scope, right: &Scope) -> Option<(usize, usize)> {
        let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = on else {
            return None;
        };
        let col = |e: &Expr, scope: &Scope| -> Option<usize> {
            if let Expr::Column { table, name } = e {
                scope.resolve(table.as_deref(), name).ok()
            } else {
                None
            }
        };
        match (col(a, left), col(b, right)) {
            (Some(li), Some(ri)) => Some((li, ri)),
            _ => match (col(b, left), col(a, right)) {
                (Some(li), Some(ri)) => Some((li, ri)),
                _ => None,
            },
        }
    }

    fn hash_join(
        &mut self,
        left: Vec<CowRow<'a>>,
        right: &[CowRow<'a>],
        li: usize,
        ri: usize,
        residual: Option<&Expr>,
        combined: &Scope,
        cap: Option<usize>,
    ) -> Result<Vec<CowRow<'a>>> {
        let mut index: HashMap<Value, Vec<usize>> = HashMap::with_capacity(right.len());
        for (i, row) in right.iter().enumerate() {
            let key = &row[ri];
            if key.is_null() {
                continue;
            }
            index.entry(key.clone()).or_default().push(i);
        }
        let mut out: Vec<CowRow<'a>> = Vec::new();
        for lrow in left {
            if cap.is_some_and(|c| out.len() >= c) {
                break;
            }
            self.stats.join_pairs += 1; // one probe per left row
            self.gov.tick()?;
            let key = &lrow[li];
            if key.is_null() {
                continue;
            }
            if let Some(matches) = index.get(key) {
                self.stats.join_pairs += matches.len() as u64;
                for &i in matches {
                    if cap.is_some_and(|c| out.len() >= c) {
                        break;
                    }
                    if let Some(pred) = residual {
                        let keep = self
                            .eval(pred, combined, &Ctx::Pair(lrow.as_ref(), right[i].as_ref()))?
                            .truthiness()
                            == Some(true);
                        if !keep {
                            continue;
                        }
                    }
                    let mut candidate = lrow.as_ref().to_vec();
                    candidate.extend(right[i].iter().cloned());
                    self.gov.charge_intermediate(1, row_bytes(&candidate))?;
                    out.push(Cow::Owned(candidate));
                }
            }
        }
        Ok(out)
    }

    // -- expressions ---------------------------------------------------------

    fn eval(&mut self, e: &Expr, scope: &Scope, ctx: &Ctx<'_, 'a>) -> Result<Value> {
        match e {
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Column { table, name } => {
                let idx = scope.resolve(table.as_deref(), name)?;
                Ok(ctx.cell(idx).cloned().unwrap_or(Value::Null))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr, scope, ctx)?;
                match op {
                    UnaryOp::Neg => v.neg(),
                    UnaryOp::Not => Ok(match v.truthiness() {
                        None => Value::Null,
                        Some(b) => Value::Integer((!b) as i64),
                    }),
                }
            }
            Expr::Binary { left, op, right } => self.eval_binary(left, *op, right, scope, ctx),
            Expr::Function { name, args, distinct, star } => {
                self.eval_function(name, args, *distinct, *star, scope, ctx)
            }
            Expr::Case { operand, branches, else_expr } => {
                let op_val = match operand {
                    Some(op) => Some(self.eval(op, scope, ctx)?),
                    None => None,
                };
                for (cond, result) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let c = self.eval(cond, scope, ctx)?;
                            v.sql_eq(&c) == Some(true)
                        }
                        None => self.eval(cond, scope, ctx)?.truthiness() == Some(true),
                    };
                    if hit {
                        return self.eval(result, scope, ctx);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, scope, ctx),
                    None => Ok(Value::Null),
                }
            }
            Expr::InList { expr, list, negated } => {
                let needle = self.eval(expr, scope, ctx)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let v = self.eval(item, scope, ctx)?;
                    match needle.sql_eq(&v) {
                        Some(true) => return Ok(Value::Integer(!negated as i64)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Integer(*negated as i64))
                }
            }
            Expr::InSubquery { expr, query, negated } => {
                let needle = self.eval(expr, scope, ctx)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let key = query.as_ref() as *const Query as usize;
                if !self.in_cache.contains_key(&key) {
                    self.stats.subqueries += 1;
                    let sub = self.query(query)?;
                    if !sub.rows.is_empty() && sub.rows[0].len() != 1 {
                        return Err(Error::Exec("IN subquery must return one column".into()));
                    }
                    let mut set = std::collections::HashSet::with_capacity(sub.rows.len());
                    let mut saw_null = false;
                    for row in sub.rows {
                        let v = row.into_iter().next().unwrap_or(Value::Null);
                        if v.is_null() {
                            saw_null = true;
                        } else {
                            set.insert(v);
                        }
                    }
                    self.in_cache.insert(key, (set, saw_null));
                }
                let (set, saw_null) = &self.in_cache[&key];
                if set.contains(&needle) {
                    Ok(Value::Integer(!negated as i64))
                } else if *saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Integer(*negated as i64))
                }
            }
            Expr::ScalarSubquery(q) => {
                let key = q.as_ref() as *const Query as usize;
                if let Some(v) = self.scalar_cache.get(&key) {
                    return Ok(v.clone());
                }
                self.stats.subqueries += 1;
                let sub = self.query(q)?;
                let value = match sub.rows.first() {
                    None => Value::Null,
                    Some(row) => {
                        if row.len() != 1 {
                            return Err(Error::Exec("scalar subquery must return one column".into()));
                        }
                        row[0].clone()
                    }
                };
                self.scalar_cache.insert(key, value.clone());
                Ok(value)
            }
            Expr::Exists { query, negated } => {
                let key = query.as_ref() as *const Query as usize;
                if let Some(&has_rows) = self.exists_cache.get(&key) {
                    return Ok(Value::Integer((has_rows != *negated) as i64));
                }
                self.stats.subqueries += 1;
                let sub = self.query(query)?;
                let has_rows = !sub.rows.is_empty();
                self.exists_cache.insert(key, has_rows);
                Ok(Value::Integer((has_rows != *negated) as i64))
            }
            Expr::Between { expr, low, high, negated } => {
                let v = self.eval(expr, scope, ctx)?;
                let lo = self.eval(low, scope, ctx)?;
                let hi = self.eval(high, scope, ctx)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                Ok(match and3(ge, le) {
                    None => Value::Null,
                    Some(b) => Value::Integer((b != *negated) as i64),
                })
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval(expr, scope, ctx)?;
                let p = self.eval(pattern, scope, ctx)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let hit = like_match(&v.render(), &p.render());
                Ok(Value::Integer((hit != *negated) as i64))
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, scope, ctx)?;
                Ok(Value::Integer((v.is_null() != *negated) as i64))
            }
            Expr::Cast { expr, type_name } => {
                let v = self.eval(expr, scope, ctx)?;
                Ok(v.cast(DataType::from_sql_name(type_name)))
            }
        }
    }

    fn eval_binary(&mut self, left: &Expr, op: BinaryOp, right: &Expr, scope: &Scope, ctx: &Ctx<'_, 'a>) -> Result<Value> {
        // Short-circuiting three-valued AND/OR.
        match op {
            BinaryOp::And => {
                let l = self.eval(left, scope, ctx)?.truthiness();
                if l == Some(false) {
                    return Ok(Value::Integer(0));
                }
                let r = self.eval(right, scope, ctx)?.truthiness();
                return Ok(match and3(l, r) {
                    None => Value::Null,
                    Some(b) => Value::Integer(b as i64),
                });
            }
            BinaryOp::Or => {
                let l = self.eval(left, scope, ctx)?.truthiness();
                if l == Some(true) {
                    return Ok(Value::Integer(1));
                }
                let r = self.eval(right, scope, ctx)?.truthiness();
                return Ok(match or3(l, r) {
                    None => Value::Null,
                    Some(b) => Value::Integer(b as i64),
                });
            }
            _ => {}
        }
        let l = self.eval(left, scope, ctx)?;
        let r = self.eval(right, scope, ctx)?;
        match op {
            BinaryOp::Add => l.add(&r),
            BinaryOp::Sub => l.sub(&r),
            BinaryOp::Mul => l.mul(&r),
            BinaryOp::Div => l.div(&r),
            BinaryOp::Mod => l.rem(&r),
            BinaryOp::Concat => Ok(concat_text(&l, &r)),
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                Ok(match l.sql_cmp(&r) {
                    None => Value::Null,
                    Some(ord) => {
                        use std::cmp::Ordering::*;
                        let b = match op {
                            BinaryOp::Eq => ord == Equal,
                            BinaryOp::NotEq => ord != Equal,
                            BinaryOp::Lt => ord == Less,
                            BinaryOp::LtEq => ord != Greater,
                            BinaryOp::Gt => ord == Greater,
                            BinaryOp::GtEq => ord != Less,
                            _ => unreachable!(),
                        };
                        Value::Integer(b as i64)
                    }
                })
            }
            BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
        }
    }

    fn eval_function(
        &mut self,
        name: &str,
        args: &[Expr],
        distinct: bool,
        star: bool,
        scope: &Scope,
        ctx: &Ctx<'_, 'a>,
    ) -> Result<Value> {
        let upper = name.to_ascii_uppercase();
        let aggregate_call = star || (is_aggregate_name(&upper) && !(matches!(upper.as_str(), "MIN" | "MAX") && args.len() >= 2));
        if aggregate_call {
            let rows = match ctx {
                Ctx::Group(rows) => *rows,
                Ctx::Row(_) | Ctx::Pair(..) => {
                    return Err(Error::Bind(format!("misuse of aggregate function {upper}")));
                }
            };
            return self.eval_aggregate(&upper, args, distinct, star, scope, rows);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, scope, ctx)?);
        }
        eval_scalar(&upper, &vals)
    }

    fn eval_aggregate(
        &mut self,
        name: &str,
        args: &[Expr],
        distinct: bool,
        star: bool,
        scope: &Scope,
        rows: &[CowRow<'a>],
    ) -> Result<Value> {
        if star {
            return Ok(Value::Integer(rows.len() as i64));
        }
        if args.len() != 1 {
            return Err(Error::Type(format!("aggregate {name} expects one argument")));
        }
        // Evaluate the argument once per row.
        let mut vals = Vec::with_capacity(rows.len());
        for row in rows {
            self.gov.tick()?;
            let v = self.eval(&args[0], scope, &Ctx::Row(row.as_ref()))?;
            if !v.is_null() {
                vals.push(v);
            }
        }
        if distinct {
            let mut seen = std::collections::HashSet::new();
            vals.retain(|v| seen.insert(v.clone()));
        }
        match name {
            "COUNT" => Ok(Value::Integer(vals.len() as i64)),
            "SUM" | "TOTAL" => {
                if vals.is_empty() {
                    return Ok(if name == "TOTAL" { Value::Real(0.0) } else { Value::Null });
                }
                let all_int = vals.iter().all(|v| matches!(v, Value::Integer(_)));
                if all_int && name == "SUM" {
                    let mut acc: i64 = 0;
                    let mut overflowed = false;
                    for v in &vals {
                        if let Value::Integer(i) = v {
                            match acc.checked_add(*i) {
                                Some(n) => acc = n,
                                None => {
                                    overflowed = true;
                                    break;
                                }
                            }
                        }
                    }
                    if !overflowed {
                        return Ok(Value::Integer(acc));
                    }
                }
                let sum: f64 = vals.iter().filter_map(Value::as_f64).sum();
                Ok(Value::Real(sum))
            }
            "AVG" => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                let sum: f64 = vals.iter().filter_map(Value::as_f64).sum();
                Ok(Value::Real(sum / vals.len() as f64))
            }
            "MIN" => Ok(vals.into_iter().min().unwrap_or(Value::Null)),
            "MAX" => Ok(vals.into_iter().max().unwrap_or(Value::Null)),
            "GROUP_CONCAT" => {
                if vals.is_empty() {
                    return Ok(Value::Null);
                }
                Ok(Value::Text(
                    vals.iter().map(Value::render).collect::<Vec<_>>().join(","),
                ))
            }
            other => Err(Error::Unsupported(format!("aggregate {other}"))),
        }
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn dedup_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut seen = std::collections::HashSet::new();
    rows.into_iter().filter(|r| seen.insert(r.clone())).collect()
}

/// Approximate footprint of one materialized row.
fn row_bytes(row: &[Value]) -> u64 {
    row.iter().map(Value::approx_bytes).sum()
}

/// Approximate footprint of a materialized row set.
fn rows_bytes(rows: &[Row]) -> u64 {
    rows.iter().map(|r| row_bytes(r)).sum()
}
