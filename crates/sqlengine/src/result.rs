//! Query results and result comparison (the basis of the EX metric).

use std::collections::HashMap;

use crate::value::{Row, Value};

/// The output of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column names (post-aliasing).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Whether the query imposed an output order (top-level ORDER BY).
    pub ordered: bool,
}

impl QueryResult {
    /// Assemble a result.
    pub fn new(columns: Vec<String>, rows: Vec<Row>, ordered: bool) -> QueryResult {
        QueryResult { columns, rows, ordered }
    }

    /// The empty, unordered result.
    pub fn empty() -> QueryResult {
        QueryResult { columns: Vec::new(), rows: Vec::new(), ordered: false }
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Execution-accuracy comparison: results match when they contain the
    /// same rows — as a sequence when *both* queries are ordered, as a
    /// multiset otherwise. Floats compare with a small relative tolerance,
    /// mirroring the official Spider/BIRD evaluation scripts.
    pub fn same_result(&self, other: &QueryResult) -> bool {
        if self.rows.len() != other.rows.len() {
            return false;
        }
        if !self.rows.is_empty() && self.rows[0].len() != other.rows[0].len() {
            return false;
        }
        if self.ordered && other.ordered {
            self.rows
                .iter()
                .zip(&other.rows)
                .all(|(a, b)| rows_equal(a, b))
        } else {
            multiset_equal(&self.rows, &other.rows)
        }
    }

    /// Render as a compact table; used in examples and error reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1).max(4)));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::render).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Real(_) | Value::Integer(_), Value::Real(_) | Value::Integer(_)) => {
            // The match arm guarantees numeric variants, where `as_f64` is
            // total; the fallback keeps this comparison panic-free anyway.
            let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
            if x == y {
                return true;
            }
            let scale = x.abs().max(y.abs());
            (x - y).abs() <= 1e-6 * scale.max(1.0)
        }
        _ => a == b,
    }
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| values_equal(x, y))
}

/// Multiset equality over rows. Uses a canonical-key map: float cells are
/// bucketed at 1e-6 resolution so the tolerance of `values_equal` carries
/// over in the common case.
fn multiset_equal(a: &[Row], b: &[Row]) -> bool {
    fn key(row: &Row) -> String {
        let mut s = String::new();
        for v in row {
            match v {
                Value::Null => s.push_str("\u{1}N"),
                Value::Integer(i) => s.push_str(&format!("\u{1}F{:.6}", *i as f64)),
                Value::Real(r) => s.push_str(&format!("\u{1}F{:.6}", r)),
                Value::Text(t) => {
                    s.push_str("\u{1}T");
                    s.push_str(t);
                }
            }
        }
        s
    }
    let mut counts: HashMap<String, i64> = HashMap::with_capacity(a.len());
    for row in a {
        *counts.entry(key(row)).or_insert(0) += 1;
    }
    for row in b {
        match counts.get_mut(&key(row)) {
            Some(c) => *c -= 1,
            None => return false,
        }
    }
    counts.values().all(|&c| c == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(rows: Vec<Row>, ordered: bool) -> QueryResult {
        QueryResult::new(vec!["c".into()], rows, ordered)
    }

    #[test]
    fn unordered_comparison_is_multiset() {
        let a = res(vec![vec![1.into()], vec![2.into()], vec![2.into()]], false);
        let b = res(vec![vec![2.into()], vec![1.into()], vec![2.into()]], false);
        assert!(a.same_result(&b));
        let c = res(vec![vec![2.into()], vec![1.into()], vec![1.into()]], false);
        assert!(!a.same_result(&c));
    }

    #[test]
    fn ordered_comparison_respects_sequence() {
        let a = res(vec![vec![1.into()], vec![2.into()]], true);
        let b = res(vec![vec![2.into()], vec![1.into()]], true);
        assert!(!a.same_result(&b));
        // If either side is unordered, fall back to multiset.
        let b2 = res(vec![vec![2.into()], vec![1.into()]], false);
        assert!(a.same_result(&b2));
    }

    #[test]
    fn float_tolerance() {
        let a = res(vec![vec![Value::Real(0.3333333333)]], false);
        let b = res(vec![vec![Value::Real(0.3333333330)]], false);
        assert!(a.same_result(&b));
        let c = res(vec![vec![Value::Real(0.34)]], false);
        assert!(!a.same_result(&c));
    }

    #[test]
    fn integer_and_real_compare_equal() {
        let a = res(vec![vec![Value::Integer(3)]], false);
        let b = res(vec![vec![Value::Real(3.0)]], false);
        assert!(a.same_result(&b));
    }

    #[test]
    fn arity_mismatch_fails() {
        let a = QueryResult::new(vec!["a".into()], vec![vec![1.into()]], false);
        let b = QueryResult::new(
            vec!["a".into(), "b".into()],
            vec![vec![1.into(), 2.into()]],
            false,
        );
        assert!(!a.same_result(&b));
    }

    #[test]
    fn render_is_readable() {
        let r = QueryResult::new(
            vec!["name".into(), "n".into()],
            vec![vec!["x".into(), 3.into()]],
            false,
        );
        let s = r.render();
        assert!(s.contains("name | n"));
        assert!(s.contains("x | 3"));
    }
}
