//! Deterministic execution-cost accounting and pre-execution estimation.
//!
//! Two halves:
//!
//! * [`ExecStats`] counts what an execution actually did. BIRD's VES metric
//!   compares the execution time of the predicted query against the ground
//!   truth; the paper notes wall-clock VES "could be highly susceptible to
//!   fluctuations", so `ExecStats::cost()` is a deterministic weighted sum
//!   whose weights roughly track per-row operator overheads.
//! * [`estimate_node`] predicts, *before* execution, how expensive a
//!   logical plan will be: per-node output-cardinality and cpu/io
//!   estimates from catalog row counts (the in-memory catalog makes base
//!   cardinalities exact; selectivities are classic textbook defaults).
//!   The optimizer uses these estimates to rank join orders, and beam
//!   selection uses [`Estimate::inter_rows`] to shed catastrophic plans
//!   before they spend governor budget.

use crate::ast::{BinaryOp, Expr, JoinKind, Query, SelectItem, SetExpr};
use crate::catalog::Database;
use crate::plan::PlanNode;
use crate::value::Value;

/// Threshold above which an inner equi-join switches from nested loops to
/// a hash join (pairs examined = left*right). Shared by the runtime
/// executor and the estimator so the model prices the strategy that will
/// actually run.
pub const HASH_JOIN_THRESHOLD: u64 = 1_000;

/// Counters accumulated while executing one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Rows read out of base-table scans.
    pub rows_scanned: u64,
    /// Candidate row pairs examined by join operators (probe comparisons for
    /// hash joins, full pairs for nested loops).
    pub join_pairs: u64,
    /// Comparison steps performed by sorts, ~ n*log2(n).
    pub sort_steps: u64,
    /// Rows materialized by grouping/distinct/set operators.
    pub rows_grouped: u64,
    /// Rows produced as final or intermediate output.
    pub rows_output: u64,
    /// Number of subquery executions.
    pub subqueries: u64,
}

impl ExecStats {
    /// Record an n-row sort.
    pub fn record_sort(&mut self, n: usize) {
        let n = n as u64;
        if n > 1 {
            self.sort_steps += n * (64 - n.leading_zeros() as u64);
        }
    }

    /// Scalar cost in abstract "row operations".
    pub fn cost(&self) -> f64 {
        self.rows_scanned as f64
            + 1.5 * self.join_pairs as f64
            + 0.5 * self.sort_steps as f64
            + 1.2 * self.rows_grouped as f64
            + 0.1 * self.rows_output as f64
            + 5.0 * self.subqueries as f64
            // Fixed per-statement overhead so the ratio of two trivial
            // queries is ~1 rather than 0/0.
            + 10.0
    }

    /// Accumulate another statement's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.join_pairs += other.join_pairs;
        self.sort_steps += other.sort_steps;
        self.rows_grouped += other.rows_grouped;
        self.rows_output += other.rows_output;
        self.subqueries += other.subqueries;
    }
}

// -- pre-execution estimation ------------------------------------------------

/// Abstract cpu/io cost of a plan (sub)tree, in "row operations".
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Cost {
    /// Per-row compute: predicate evaluations, join pair examinations,
    /// hash builds/probes, sort comparisons.
    pub cpu: f64,
    /// Rows moved out of storage (base-table scans, derived materialization).
    pub io: f64,
}

impl Cost {
    /// Total scalar cost used to rank plans.
    pub fn total(&self) -> f64 {
        self.cpu + self.io
    }

    fn plus(&self, other: Cost) -> Cost {
        Cost { cpu: self.cpu + other.cpu, io: self.io + other.io }
    }
}

/// Pre-execution estimate for one plan node.
#[derive(Debug, Clone, Copy)]
pub struct Estimate {
    /// Estimated output cardinality.
    pub rows: f64,
    /// Estimated rows the governor will charge as intermediate results
    /// (scans + join outputs + derived materializations), accumulated over
    /// the subtree. Beam pre-pricing compares this against the
    /// intermediate-row budget.
    pub inter_rows: f64,
    /// Estimated cpu/io cost of the subtree.
    pub cost: Cost,
}

/// Default selectivity of one predicate conjunct (clamped to [0, 1] so a
/// filter can never increase estimated cardinality).
fn conjunct_selectivity(e: &Expr) -> f64 {
    match e {
        Expr::Binary { op, .. } => match op {
            BinaryOp::Eq => 0.1,
            BinaryOp::NotEq => 0.9,
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => 0.33,
            BinaryOp::And | BinaryOp::Or => 0.5, // handled via split at call sites
            _ => 0.5,
        },
        Expr::Between { .. } => 0.25,
        Expr::IsNull { negated, .. } => {
            if *negated {
                0.9
            } else {
                0.1
            }
        }
        Expr::Like { .. } => 0.25,
        Expr::InList { list, .. } => (0.1 * list.len() as f64).min(0.9),
        Expr::Literal(Value::Integer(0)) => 0.0,
        _ => 0.5,
    }
}

/// Split a predicate into its top-level AND conjuncts.
pub(crate) fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Combined selectivity of a whole predicate (product over conjuncts,
/// clamped to [0, 1]).
fn predicate_selectivity(e: &Expr) -> f64 {
    let sel: f64 = split_conjuncts(e).iter().map(|c| conjunct_selectivity(c)).product();
    sel.clamp(0.0, 1.0)
}

/// Whether a predicate contains a pure `col = col` equi conjunct usable as
/// a hash-join key.
fn has_equi_conjunct(e: &Expr) -> bool {
    split_conjuncts(e).iter().any(|c| {
        matches!(
            c,
            Expr::Binary { left, op: BinaryOp::Eq, right }
                if matches!(left.as_ref(), Expr::Column { .. })
                    && matches!(right.as_ref(), Expr::Column { .. })
        )
    })
}

/// Wrap a bare set-expression body into a query with no ORDER BY / LIMIT,
/// so set-operation operands can be estimated recursively.
pub(crate) fn wrap_set_expr(body: SetExpr) -> Query {
    Query { body, order_by: Vec::new(), limit: None, offset: None }
}

/// Estimate output cardinality of a whole query (used for derived tables).
fn estimate_query_rows(db: &Database, q: &Query, depth: usize) -> f64 {
    if depth > 8 {
        return 100.0;
    }
    let base = match &q.body {
        SetExpr::Select(s) => {
            let rel = crate::plan::lower_relation(s.from.as_ref(), s.selection.clone());
            let rel_rows = estimate_at(db, &rel, depth + 1).rows;
            let has_aggregate = s
                .projection
                .iter()
                .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
                || s.having.as_ref().is_some_and(Expr::contains_aggregate);
            let mut rows = if !s.group_by.is_empty() {
                rel_rows.sqrt().max(1.0)
            } else if has_aggregate {
                1.0
            } else {
                rel_rows
            };
            if s.distinct {
                rows *= 0.7;
            }
            rows
        }
        SetExpr::Nested(inner) => estimate_query_rows(db, inner, depth + 1),
        SetExpr::SetOp { left, right, .. } => {
            estimate_query_rows(db, &wrap_set_expr((**left).clone()), depth + 1)
                + estimate_query_rows(db, &wrap_set_expr((**right).clone()), depth + 1)
        }
    };
    match &q.limit {
        Some(Expr::Literal(Value::Integer(n))) if *n >= 0 => base.min(*n as f64),
        _ => base,
    }
}

fn estimate_at(db: &Database, node: &PlanNode, depth: usize) -> Estimate {
    match node {
        PlanNode::Empty => {
            Estimate { rows: 1.0, inter_rows: 0.0, cost: Cost { cpu: 1.0, io: 0.0 } }
        }
        PlanNode::Scan { table, .. } => {
            let n = db.table(table).map_or(0.0, |t| t.rows.len() as f64);
            Estimate { rows: n, inter_rows: n, cost: Cost { cpu: 0.0, io: n } }
        }
        PlanNode::Derived { query, .. } => {
            let n = estimate_query_rows(db, query, depth);
            // A derived table pays io twice: the inner query produces the
            // rows and the outer materializes them.
            Estimate { rows: n, inter_rows: 2.0 * n, cost: Cost { cpu: n, io: 2.0 * n } }
        }
        PlanNode::Filter { input, predicate } => {
            let e = estimate_at(db, input, depth);
            let sel = predicate_selectivity(predicate);
            Estimate {
                rows: e.rows * sel,
                inter_rows: e.inter_rows,
                cost: e.cost.plus(Cost { cpu: e.rows, io: 0.0 }),
            }
        }
        PlanNode::Join { left, right, kind, on, equi } => {
            let l = estimate_at(db, left, depth);
            let r = estimate_at(db, right, depth);
            let pairs = l.rows * r.rows;
            let equi_available =
                equi.is_some() || on.as_ref().is_some_and(has_equi_conjunct);
            let mut out = if equi_available {
                // |L ⋈ R| ≈ |L|·|R| / max(|L|, |R|): keys on one side are
                // roughly unique (PK/FK joins dominate the workloads).
                let residual_sel = match equi {
                    Some(e) => e.residual.as_ref().map_or(1.0, predicate_selectivity),
                    None => 1.0,
                };
                pairs / l.rows.max(r.rows).max(1.0) * residual_sel
            } else {
                match on {
                    Some(on) => pairs * predicate_selectivity(on),
                    None => pairs,
                }
            };
            if *kind == JoinKind::Left {
                out = out.max(l.rows);
            }
            let nested_cpu = pairs;
            let cpu = if equi_available && *kind == JoinKind::Inner {
                // The optimizer (and the runtime threshold) pick whichever
                // strategy is cheaper, so price the better one.
                nested_cpu.min(l.rows + r.rows + out)
            } else {
                nested_cpu
            };
            Estimate {
                rows: out,
                inter_rows: l.inter_rows + r.inter_rows + out,
                cost: l.cost.plus(r.cost).plus(Cost { cpu, io: 0.0 }),
            }
        }
        PlanNode::Permute { input, .. } => {
            let e = estimate_at(db, input, depth);
            Estimate {
                rows: e.rows,
                inter_rows: e.inter_rows,
                cost: e.cost.plus(Cost { cpu: e.rows, io: 0.0 }),
            }
        }
        PlanNode::Cap { input, cap } => {
            let e = estimate_at(db, input, depth);
            Estimate { rows: e.rows.min(*cap as f64), inter_rows: e.inter_rows, cost: e.cost }
        }
        PlanNode::Project { input, items, distinct } => {
            let e = estimate_at(db, input, depth);
            let rows = if *distinct { e.rows * 0.7 } else { e.rows };
            Estimate {
                rows,
                inter_rows: e.inter_rows,
                cost: e.cost.plus(Cost { cpu: e.rows * items.len().max(1) as f64, io: 0.0 }),
            }
        }
        PlanNode::Aggregate { input, group_by, .. } => {
            let e = estimate_at(db, input, depth);
            let rows = if group_by.is_empty() { 1.0 } else { e.rows.sqrt().max(1.0) };
            Estimate {
                rows,
                inter_rows: e.inter_rows,
                cost: e.cost.plus(Cost { cpu: e.rows, io: 0.0 }),
            }
        }
        PlanNode::Sort { input, .. } => {
            let e = estimate_at(db, input, depth);
            let n = e.rows.max(1.0);
            Estimate {
                rows: e.rows,
                inter_rows: e.inter_rows,
                cost: e.cost.plus(Cost { cpu: n * n.log2().max(1.0), io: 0.0 }),
            }
        }
        PlanNode::Limit { input, limit, .. } => {
            let e = estimate_at(db, input, depth);
            let rows = match limit {
                Some(Expr::Literal(Value::Integer(n))) if *n >= 0 => e.rows.min(*n as f64),
                _ => e.rows,
            };
            Estimate { rows, inter_rows: e.inter_rows, cost: e.cost }
        }
    }
}

/// Estimate cardinality and cpu/io cost of a plan against `db`'s catalog.
///
/// Base-table cardinalities are exact (the catalog is in memory); filter
/// and join selectivities are classic defaults. Estimates are monotone in
/// catalog row counts, and a `Filter` never increases estimated
/// cardinality — both properties are pinned by `tests/cost_props.rs`.
pub fn estimate_node(db: &Database, node: &PlanNode) -> Estimate {
    estimate_at(db, node, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_steps_are_nlogn() {
        let mut s = ExecStats::default();
        s.record_sort(8);
        assert_eq!(s.sort_steps, 8 * 4); // log2(8)+1 = 4 (leading-zeros form)
        s.record_sort(1);
        assert_eq!(s.sort_steps, 32); // single-row sorts are free
    }

    #[test]
    fn cost_monotone_in_work() {
        let cheap = ExecStats { rows_scanned: 10, ..Default::default() };
        let pricey = ExecStats { rows_scanned: 10_000, ..Default::default() };
        assert!(pricey.cost() > cheap.cost());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats { rows_scanned: 5, ..Default::default() };
        let b = ExecStats { rows_scanned: 7, subqueries: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.subqueries, 1);
    }
}
