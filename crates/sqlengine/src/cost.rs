//! Deterministic execution-cost accounting.
//!
//! BIRD's VES metric compares the execution time of the predicted query
//! against the ground truth. The paper notes wall-clock VES "could be highly
//! susceptible to fluctuations"; we therefore expose a deterministic cost
//! model fed by operator-level counters, so VES ratios are stable across
//! machines and runs. `ExecStats::cost()` is a weighted sum whose weights
//! roughly track per-row operator overheads.

/// Counters accumulated while executing one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Rows read out of base-table scans.
    pub rows_scanned: u64,
    /// Candidate row pairs examined by join operators (probe comparisons for
    /// hash joins, full pairs for nested loops).
    pub join_pairs: u64,
    /// Comparison steps performed by sorts, ~ n*log2(n).
    pub sort_steps: u64,
    /// Rows materialized by grouping/distinct/set operators.
    pub rows_grouped: u64,
    /// Rows produced as final or intermediate output.
    pub rows_output: u64,
    /// Number of subquery executions.
    pub subqueries: u64,
}

impl ExecStats {
    /// Record an n-row sort.
    pub fn record_sort(&mut self, n: usize) {
        let n = n as u64;
        if n > 1 {
            self.sort_steps += n * (64 - n.leading_zeros() as u64);
        }
    }

    /// Scalar cost in abstract "row operations".
    pub fn cost(&self) -> f64 {
        self.rows_scanned as f64
            + 1.5 * self.join_pairs as f64
            + 0.5 * self.sort_steps as f64
            + 1.2 * self.rows_grouped as f64
            + 0.1 * self.rows_output as f64
            + 5.0 * self.subqueries as f64
            // Fixed per-statement overhead so the ratio of two trivial
            // queries is ~1 rather than 0/0.
            + 10.0
    }

    /// Accumulate another statement's counters into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.join_pairs += other.join_pairs;
        self.sort_steps += other.sort_steps;
        self.rows_grouped += other.rows_grouped;
        self.rows_output += other.rows_output;
        self.subqueries += other.subqueries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_steps_are_nlogn() {
        let mut s = ExecStats::default();
        s.record_sort(8);
        assert_eq!(s.sort_steps, 8 * 4); // log2(8)+1 = 4 (leading-zeros form)
        s.record_sort(1);
        assert_eq!(s.sort_steps, 32); // single-row sorts are free
    }

    #[test]
    fn cost_monotone_in_work() {
        let cheap = ExecStats { rows_scanned: 10, ..Default::default() };
        let pricey = ExecStats { rows_scanned: 10_000, ..Default::default() };
        assert!(pricey.cost() > cheap.cost());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats { rows_scanned: 5, ..Default::default() };
        let b = ExecStats { rows_scanned: 7, subqueries: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 12);
        assert_eq!(a.subqueries, 1);
    }
}
