//! Cost-based rewrites over the logical plan.
//!
//! [`optimize_select`] takes one SELECT core and returns the relational
//! plan the executor should run. Rewrites applied, in order:
//!
//! 1. **Predicate pushdown** — the WHERE clause is split into AND
//!    conjuncts; conjuncts referencing a single binding move below the
//!    joins onto that factor's leaf, and multi-binding conjuncts merge
//!    into the earliest inner join that sees all their bindings.
//! 2. **Join reordering** — the leading run of inner/cross-joined base
//!    tables is re-planned greedily, smallest estimated cardinality
//!    first, preferring equi-connected factors; a `Permute` node restores
//!    the original column layout. The reordered tree is kept only if its
//!    estimated cost beats the syntactic order.
//! 3. **Hash-join keys** — each inner join's conjuncts are scanned for a
//!    pure `col = col` equi predicate; the keys are pre-resolved so the
//!    executor can hash-join above the pair threshold, applying the
//!    remaining conjuncts as a residual filter.
//! 4. **LIMIT propagation** — when no aggregate/DISTINCT/ORDER BY
//!    intervenes and the projection cannot fail mid-row, a `Cap` node
//!    stops the relational pipeline after LIMIT+OFFSET rows.
//!
//! Every rewrite is gated on a *safety* analysis: predicates must resolve
//! statically and must be total (unable to raise runtime errors), and all
//! binding names must be distinct. When the gate fails the optimizer
//! returns the naive plan unchanged, so error behaviour — including lazy
//! bind errors that only fire when a row is actually examined — is
//! byte-identical to naive execution. The differential harness
//! (`tests/plan_differential.rs`) holds this to "zero divergence" across
//! thousands of generated queries.

// This module runs on the inference hot path over model-generated SQL; it
// must never panic and every public item is documented.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(missing_docs)]

use crate::ast::*;
use crate::catalog::Database;
use crate::cost::{estimate_node, split_conjuncts};
use crate::plan::{factor_binding, lower_relation, static_factor_scope, EquiJoin, PlanNode, Scope};
use crate::value::Value;

/// Counter: rewrites present in chosen plans, labelled by rule
/// (`predicate_pushdown`, `join_reorder`, `hash_equi`, `limit_cap`,
/// `fallback_naive`).
pub const PLAN_REWRITES: &str = "codes_sqlengine_plan_rewrites_total";

/// Counter: beam candidates shed by pre-execution cost pricing before
/// spending any governor budget.
pub const PLAN_PREPRICE_SHED: &str = "codes_sqlengine_plan_preprice_shed_total";

/// A candidate query is shed when its estimated intermediate-row footprint
/// exceeds this multiple of the governor's intermediate-row budget.
/// Conservative: estimates for the catastrophic case (unfiltered cross
/// joins) are exact products of base cardinalities, while moderately wrong
/// selectivity guesses stay well under 4x.
pub const PREPRICE_SHED_FACTOR: f64 = 4.0;

// -- safety analysis ---------------------------------------------------------

/// Whether `e` is *total* over `scope`: every column reference resolves
/// statically and no subexpression can raise a runtime error, so the
/// expression may be re-sited freely (evaluated on more rows, fewer rows,
/// or in a different order) without changing which queries fail.
///
/// The whitelist excludes function calls (unknown-name and aggregate
/// errors), subqueries (governor charges and recursion), and unary minus
/// (errors on text); binary arithmetic stays in because `Value::arith` is
/// total (division by zero yields NULL), and CAST stays in because
/// `Value::cast` is total.
fn is_safe(e: &Expr, scope: &Scope) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Column { table, name } => scope.resolve(table.as_deref(), name).is_ok(),
        Expr::Unary { op: UnaryOp::Not, expr } => is_safe(expr, scope),
        Expr::Unary { op: UnaryOp::Neg, .. } => false,
        Expr::Binary { left, right, .. } => is_safe(left, scope) && is_safe(right, scope),
        Expr::Case { operand, branches, else_expr } => {
            operand.as_deref().map_or(true, |o| is_safe(o, scope))
                && branches.iter().all(|(c, r)| is_safe(c, scope) && is_safe(r, scope))
                && else_expr.as_deref().map_or(true, |e| is_safe(e, scope))
        }
        Expr::InList { expr, list, .. } => {
            is_safe(expr, scope) && list.iter().all(|i| is_safe(i, scope))
        }
        Expr::Between { expr, low, high, .. } => {
            is_safe(expr, scope) && is_safe(low, scope) && is_safe(high, scope)
        }
        Expr::Like { expr, pattern, .. } => is_safe(expr, scope) && is_safe(pattern, scope),
        Expr::IsNull { expr, .. } => is_safe(expr, scope),
        Expr::Cast { expr, .. } => is_safe(expr, scope),
        Expr::Function { .. }
        | Expr::InSubquery { .. }
        | Expr::ScalarSubquery(_)
        | Expr::Exists { .. } => false,
    }
}

/// Rewrite every column reference in `e` to its fully-qualified
/// `binding.column` form (resolved against `scope`) and collect the set of
/// bindings referenced. Returns None if any reference fails to resolve or
/// the expression contains a subquery/function.
fn qualify(e: &Expr, scope: &Scope, bindings: &mut Vec<String>) -> Option<Expr> {
    Some(match e {
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Column { table, name } => {
            let idx = scope.resolve(table.as_deref(), name).ok()?;
            let col = scope.cols.get(idx)?;
            if !bindings.iter().any(|b| *b == col.binding) {
                bindings.push(col.binding.clone());
            }
            Expr::Column { table: Some(col.binding.clone()), name: col.name.clone() }
        }
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(qualify(expr, scope, bindings)?) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(qualify(left, scope, bindings)?),
            op: *op,
            right: Box::new(qualify(right, scope, bindings)?),
        },
        Expr::Case { operand, branches, else_expr } => Expr::Case {
            operand: match operand {
                Some(o) => Some(Box::new(qualify(o, scope, bindings)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(c, r)| Some((qualify(c, scope, bindings)?, qualify(r, scope, bindings)?)))
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(Box::new(qualify(e, scope, bindings)?)),
                None => None,
            },
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(qualify(expr, scope, bindings)?),
            list: list
                .iter()
                .map(|i| qualify(i, scope, bindings))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(qualify(expr, scope, bindings)?),
            low: Box::new(qualify(low, scope, bindings)?),
            high: Box::new(qualify(high, scope, bindings)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(qualify(expr, scope, bindings)?),
            pattern: Box::new(qualify(pattern, scope, bindings)?),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(qualify(expr, scope, bindings)?), negated: *negated }
        }
        Expr::Cast { expr, type_name } => Expr::Cast {
            expr: Box::new(qualify(expr, scope, bindings)?),
            type_name: type_name.clone(),
        },
        Expr::Function { .. }
        | Expr::InSubquery { .. }
        | Expr::ScalarSubquery(_)
        | Expr::Exists { .. } => return None,
    })
}

/// AND a list of conjuncts back together, left-associatively (matching the
/// parser's shape for `a AND b AND c`).
fn and_all(conjuncts: Vec<Expr>) -> Option<Expr> {
    let mut it = conjuncts.into_iter();
    let first = it.next()?;
    Some(it.fold(first, Expr::and))
}

// -- join-tree building ------------------------------------------------------

/// A qualified conjunct with the bindings it references.
#[derive(Debug, Clone)]
struct Conjunct {
    expr: Expr,
    bindings: Vec<String>,
}

/// One FROM factor with its static scope and join metadata.
struct Factor<'a> {
    factor: &'a TableFactor,
    binding: String,
    scope: Scope,
    /// Join kind that introduced this factor (None for the base factor).
    kind: Option<JoinKind>,
}

/// Find the first `col = col` conjunct bridging `left` and `right` scopes;
/// returns (index in conjuncts, left key, right key).
fn find_equi(conjuncts: &[Expr], left: &Scope, right: &Scope) -> Option<(usize, usize, usize)> {
    let col = |e: &Expr, scope: &Scope| -> Option<usize> {
        if let Expr::Column { table, name } = e {
            scope.resolve(table.as_deref(), name).ok()
        } else {
            None
        }
    };
    for (i, c) in conjuncts.iter().enumerate() {
        let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = c else { continue };
        if let (Some(li), Some(ri)) = (col(a, left), col(b, right)) {
            return Some((i, li, ri));
        }
        if let (Some(li), Some(ri)) = (col(b, left), col(a, right)) {
            return Some((i, li, ri));
        }
    }
    None
}

/// Build a join node over `left`+`right` from a set of attached conjuncts,
/// upgrading cross joins with conjuncts to inner joins and extracting hash
/// keys when an equi predicate is available.
fn make_join(
    left: PlanNode,
    left_scope: &Scope,
    right: PlanNode,
    right_scope: &Scope,
    kind: JoinKind,
    conjuncts: Vec<Expr>,
) -> PlanNode {
    // Attaching conjuncts to a cross join makes it an inner join.
    let kind =
        if kind == JoinKind::Cross && !conjuncts.is_empty() { JoinKind::Inner } else { kind };
    let equi = if kind == JoinKind::Inner {
        find_equi(&conjuncts, left_scope, right_scope).map(|(idx, li, ri)| {
            let residual: Vec<Expr> = conjuncts
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, c)| c.clone())
                .collect();
            EquiJoin { left_key: li, right_key: ri, residual: and_all(residual) }
        })
    } else {
        None
    };
    let on = and_all(conjuncts);
    PlanNode::Join { left: Box::new(left), right: Box::new(right), kind, on, equi }
}

/// A leaf prepared for tree building: its plan (scan + pushed filters),
/// scope, binding, and original factor index.
struct Leaf {
    node: PlanNode,
    scope: Scope,
    binding: String,
    /// Index of this factor in syntactic order (for permutation).
    position: usize,
}

/// Fold `leaves` (in the given order) into a left-deep join tree,
/// attaching each pool conjunct at the earliest join where all its
/// bindings are in scope. Returns the tree, the factor positions in build
/// order, and the indices of any pool conjuncts that could not be attached
/// (the caller must keep those in the top filter).
fn build_region_tree(mut leaves: Vec<Leaf>, pool: &[Conjunct]) -> (PlanNode, Vec<usize>, Vec<usize>) {
    let mut used = vec![false; pool.len()];
    let first = leaves.remove(0);
    let mut node = first.node;
    let mut scope = first.scope;
    let mut present = vec![first.binding.clone()];
    let mut positions = vec![first.position];
    for leaf in leaves {
        let mut conjuncts = Vec::new();
        for (i, c) in pool.iter().enumerate() {
            if used[i] {
                continue;
            }
            let available = c
                .bindings
                .iter()
                .all(|b| present.iter().any(|p| p == b) || *b == leaf.binding);
            if available {
                used[i] = true;
                conjuncts.push(c.expr.clone());
            }
        }
        let right_scope = leaf.scope.clone();
        node = make_join(node, &scope, leaf.node, &right_scope, JoinKind::Cross, conjuncts);
        scope.cols.extend(right_scope.cols);
        present.push(leaf.binding);
        positions.push(leaf.position);
    }
    let unattached = (0..pool.len()).filter(|&i| !used[i]).collect();
    (node, positions, unattached)
}

/// Greedy join order over region leaves: start from the smallest estimated
/// leaf, then repeatedly add the factor minimizing the estimated size of
/// the next join, treating equi-connected factors (a pool conjunct
/// bridging the current set and the candidate) as key-joins.
fn greedy_order(db: &Database, leaves: &[Leaf], pool: &[Conjunct]) -> Vec<usize> {
    let n = leaves.len();
    let card: Vec<f64> = leaves.iter().map(|l| estimate_node(db, &l.node).rows).collect();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut present: Vec<&str> = Vec::new();
    let mut cur_rows = 0.0f64;
    while !remaining.is_empty() {
        let mut best_slot = 0usize;
        let mut best_est = f64::INFINITY;
        for (slot, &i) in remaining.iter().enumerate() {
            let est = if order.is_empty() {
                card[i]
            } else {
                let connected = pool.iter().any(|c| {
                    c.bindings.len() >= 2
                        && c.bindings.iter().any(|b| *b == leaves[i].binding)
                        && c.bindings
                            .iter()
                            .all(|b| *b == leaves[i].binding || present.iter().any(|p| p == b))
                });
                if connected {
                    (cur_rows * card[i]) / cur_rows.max(card[i]).max(1.0)
                } else {
                    cur_rows * card[i]
                }
            };
            if est < best_est {
                best_est = est;
                best_slot = slot;
            }
        }
        let i = remaining.remove(best_slot);
        cur_rows = if order.is_empty() { card[i] } else { best_est };
        present.push(&leaves[i].binding);
        order.push(i);
    }
    order
}

// -- rewrite accounting ------------------------------------------------------

/// Walk a chosen plan and bump per-rule rewrite counters. Done once on the
/// final plan so discarded candidate orders never inflate the metrics.
fn count_rewrites(node: &PlanNode, pushdowns: u64) {
    fn walk(n: &PlanNode, hash: &mut u64, permute: &mut u64, cap: &mut u64) {
        match n {
            PlanNode::Join { left, right, equi, .. } => {
                if equi.is_some() {
                    *hash += 1;
                }
                walk(left, hash, permute, cap);
                walk(right, hash, permute, cap);
            }
            PlanNode::Permute { input, .. } => {
                *permute += 1;
                walk(input, hash, permute, cap);
            }
            PlanNode::Cap { input, .. } => {
                *cap += 1;
                walk(input, hash, permute, cap);
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => walk(input, hash, permute, cap),
            PlanNode::Empty | PlanNode::Scan { .. } | PlanNode::Derived { .. } => {}
        }
    }
    let (mut hash, mut permute, mut cap) = (0u64, 0u64, 0u64);
    walk(node, &mut hash, &mut permute, &mut cap);
    let obs = codes_obs::global();
    for (rule, n) in [
        ("predicate_pushdown", pushdowns),
        ("hash_equi", hash),
        ("join_reorder", permute),
        ("limit_cap", cap),
    ] {
        if n > 0 {
            obs.counter(PLAN_REWRITES, &[("rule", rule)]).inc_by(n);
        }
    }
}

// -- entry point -------------------------------------------------------------

/// Optimize one SELECT core's relational plan. Falls back to the naive
/// plan whenever the safety gate fails or the rewritten plan does not
/// estimate cheaper, so the chosen plan is always observably equivalent to
/// naive execution.
pub fn optimize_select(
    db: &Database,
    s: &Select,
    order_by: &[OrderItem],
    limit: Option<&Expr>,
    offset: Option<&Expr>,
) -> PlanNode {
    match try_optimize(db, s, order_by, limit, offset) {
        Some((plan, pushdowns)) => {
            count_rewrites(&plan, pushdowns);
            plan
        }
        None => {
            codes_obs::global().counter(PLAN_REWRITES, &[("rule", "fallback_naive")]).inc();
            lower_relation(s.from.as_ref(), s.selection.clone())
        }
    }
}

fn try_optimize(
    db: &Database,
    s: &Select,
    order_by: &[OrderItem],
    limit: Option<&Expr>,
    offset: Option<&Expr>,
) -> Option<(PlanNode, u64)> {
    let from = s.from.as_ref()?;
    let naive = lower_relation(s.from.as_ref(), s.selection.clone());

    // Collect factors with static scopes; bail if any scope is unknown
    // (missing table, underivable subquery columns) so lazy runtime errors
    // surface exactly as they would under naive execution.
    let mut factors: Vec<Factor<'_>> = Vec::new();
    factors.push(Factor {
        factor: &from.base,
        binding: factor_binding(&from.base),
        scope: static_factor_scope(db, &from.base)?,
        kind: None,
    });
    for join in &from.joins {
        factors.push(Factor {
            factor: &join.factor,
            binding: factor_binding(&join.factor),
            scope: static_factor_scope(db, &join.factor)?,
            kind: Some(join.kind),
        });
    }

    // All binding names must be distinct, or column references become
    // position-dependent and cannot be re-sited.
    for i in 0..factors.len() {
        for j in (i + 1)..factors.len() {
            if factors[i].binding == factors[j].binding {
                return None;
            }
        }
    }

    // Prefix scopes (what join i's ON clause sees) and the full scope.
    let mut prefix_scopes: Vec<Scope> = Vec::with_capacity(factors.len());
    let mut acc = Scope::default();
    for f in &factors {
        acc.cols.extend(f.scope.cols.iter().cloned());
        prefix_scopes.push(acc.clone());
    }
    let full_scope = acc;

    // Gate: every ON conjunct must be safe over its prefix scope and every
    // WHERE conjunct safe over the full scope. Qualify them all so they
    // can be re-sited without capture.
    let mut on_conjuncts: Vec<Vec<Conjunct>> = Vec::with_capacity(factors.len());
    on_conjuncts.push(Vec::new()); // base factor has no ON clause
    for (i, join) in from.joins.iter().enumerate() {
        let prefix = &prefix_scopes[i + 1];
        let mut list = Vec::new();
        if let Some(on) = &join.on {
            for c in split_conjuncts(on) {
                if !is_safe(c, prefix) {
                    return None;
                }
                let mut bindings = Vec::new();
                let expr = qualify(c, prefix, &mut bindings)?;
                list.push(Conjunct { expr, bindings });
            }
        }
        on_conjuncts.push(list);
    }
    let mut where_conjuncts: Vec<Conjunct> = Vec::new();
    if let Some(sel) = &s.selection {
        for c in split_conjuncts(sel) {
            if !is_safe(c, &full_scope) {
                return None;
            }
            let mut bindings = Vec::new();
            let expr = qualify(c, &full_scope, &mut bindings)?;
            where_conjuncts.push(Conjunct { expr, bindings });
        }
    }

    // The reorderable region: the leading run of inner/cross joins.
    // Everything from the first LEFT join onward keeps its syntactic
    // position (outer joins do not commute with inner joins in general).
    let mut region_end = factors.len();
    for (i, f) in factors.iter().enumerate() {
        if f.kind == Some(JoinKind::Left) {
            region_end = i;
            break;
        }
    }
    let region_bindings: Vec<&str> =
        factors[..region_end].iter().map(|f| f.binding.as_str()).collect();

    // Classify WHERE conjuncts: pushed to a leaf, pooled into the region,
    // merged into a later inner join, or kept in the top filter.
    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); factors.len()];
    let mut pool: Vec<Conjunct> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    let mut merged_on: Vec<Vec<Expr>> = vec![Vec::new(); factors.len()];
    let mut pushdowns = 0u64;
    for c in where_conjuncts {
        if c.bindings.is_empty() {
            // Constant predicate: there is no leaf to own it — keep it on
            // top rather than attaching it to an arbitrary join.
            residual.push(c.expr);
        } else if c.bindings.len() == 1 {
            let b = &c.bindings[0];
            let idx = factors.iter().position(|f| f.binding == *b)?;
            if factors[idx].kind == Some(JoinKind::Left) {
                // The right side of a LEFT join is filtered *after* NULL
                // padding; its predicates must stay above the join.
                residual.push(c.expr);
            } else {
                pushed[idx].push(c.expr);
                pushdowns += 1;
            }
        } else if c.bindings.iter().all(|b| region_bindings.iter().any(|r| r == b)) {
            pool.push(c);
            pushdowns += 1;
        } else {
            // Merge into the earliest join that sees every binding, when
            // that join is inner. (Filtering left-side columns before a
            // later LEFT join is sound: padded rows never change them.)
            let earliest = (0..factors.len()).find(|&i| {
                c.bindings.iter().all(|b| factors[..=i].iter().any(|f| f.binding == *b))
            });
            match earliest {
                Some(i) if factors[i].kind == Some(JoinKind::Inner) => {
                    merged_on[i].push(c.expr);
                    pushdowns += 1;
                }
                _ => residual.push(c.expr),
            }
        }
    }

    // Region ON conjuncts join the pool; later ONs stay at their join.
    for list in on_conjuncts.iter().take(region_end) {
        pool.extend(list.iter().cloned());
    }

    // Build region leaves (scan + pushed filters).
    let region_leaves: Vec<Leaf> = factors[..region_end]
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut node = crate::plan::lower_factor(f.factor);
            if let Some(pred) = and_all(pushed[i].clone()) {
                node = PlanNode::Filter { input: Box::new(node), predicate: pred };
            }
            Leaf { node, scope: f.scope.clone(), binding: f.binding.clone(), position: i }
        })
        .collect();

    // Candidate orders: syntactic always; greedy when the region is all
    // base-table scans (reordering derived tables would change subquery
    // execution order and stats).
    let all_scans =
        factors[..region_end].iter().all(|f| matches!(f.factor, TableFactor::Table { .. }));
    let syntactic: Vec<usize> = (0..region_leaves.len()).collect();
    let mut orders: Vec<Vec<usize>> = vec![syntactic];
    if all_scans && region_leaves.len() >= 2 {
        orders.push(greedy_order(db, &region_leaves, &pool));
    }

    let mut best: Option<(PlanNode, Vec<usize>, Vec<usize>, f64)> = None;
    for order in orders {
        let leaves: Vec<Leaf> = order
            .iter()
            .map(|&i| {
                let l = &region_leaves[i];
                Leaf {
                    node: l.node.clone(),
                    scope: l.scope.clone(),
                    binding: l.binding.clone(),
                    position: l.position,
                }
            })
            .collect();
        let (tree, positions, unattached) = build_region_tree(leaves, &pool);
        let cost = estimate_node(db, &tree).cost.total();
        let better = match &best {
            None => true,
            Some((.., best_cost)) => cost < *best_cost,
        };
        if better {
            best = Some((tree, positions, unattached, cost));
        }
    }
    let (mut node, positions, unattached, _) = best?;
    for i in unattached {
        // Defensive: a pool conjunct that found no join to attach to goes
        // back to the top filter rather than being dropped.
        residual.push(pool[i].expr.clone());
    }
    if positions.windows(2).any(|w| w[0] > w[1]) {
        // Restore the original column layout: out[i] = row[indices[i]].
        let mut new_offsets = vec![0usize; region_end];
        let mut cursor = 0usize;
        for &p in &positions {
            new_offsets[p] = cursor;
            cursor += factors[p].scope.cols.len();
        }
        let mut indices = Vec::with_capacity(cursor);
        for (p, f) in factors[..region_end].iter().enumerate() {
            for k in 0..f.scope.cols.len() {
                indices.push(new_offsets[p] + k);
            }
        }
        node = PlanNode::Permute { input: Box::new(node), indices };
    }
    // Either way the region's output scope is now the syntactic layout.
    let mut scope = Scope {
        cols: factors[..region_end].iter().flat_map(|f| f.scope.cols.iter().cloned()).collect(),
    };

    // Fold the remaining joins in syntactic order.
    for (i, f) in factors.iter().enumerate().skip(region_end) {
        let mut leaf = crate::plan::lower_factor(f.factor);
        if let Some(pred) = and_all(pushed[i].clone()) {
            leaf = PlanNode::Filter { input: Box::new(leaf), predicate: pred };
        }
        let kind = f.kind.unwrap_or(JoinKind::Cross);
        let right_scope = f.scope.clone();
        if kind == JoinKind::Left {
            // A LEFT join's ON decides matching, not filtering: keep the
            // original ON whole and never merge WHERE conjuncts into it.
            let on: Vec<Expr> = on_conjuncts[i].iter().map(|c| c.expr.clone()).collect();
            node = PlanNode::Join {
                left: Box::new(node),
                right: Box::new(leaf),
                kind: JoinKind::Left,
                on: and_all(on),
                equi: None,
            };
        } else {
            let mut conjuncts: Vec<Expr> =
                on_conjuncts[i].iter().map(|c| c.expr.clone()).collect();
            conjuncts.append(&mut merged_on[i]);
            node = make_join(node, &scope, leaf, &right_scope, kind, conjuncts);
        }
        scope.cols.extend(right_scope.cols);
    }

    // Residual WHERE conjuncts stay on top, in their original order.
    if let Some(pred) = and_all(residual) {
        node = PlanNode::Filter { input: Box::new(node), predicate: pred };
    }

    // LIMIT propagation: cap the relational pipeline when nothing between
    // it and the LIMIT can reorder, drop, or fail on rows beyond the cap.
    if let Some(cap) = limit_cap(s, order_by, limit, offset, &full_scope) {
        node = PlanNode::Cap { input: Box::new(node), cap };
    }

    // Final guard: keep the rewritten plan only when it estimates
    // cheaper-or-equal (this also pins the cost_props invariant that
    // optimization never raises estimated cost).
    let opt_cost = estimate_node(db, &node).cost.total();
    let naive_cost = estimate_node(db, &naive).cost.total();
    if opt_cost > naive_cost {
        return None;
    }
    Some((node, pushdowns))
}

/// How many relational rows a capped SELECT needs: LIMIT+OFFSET when both
/// are non-negative integer literals and the pipeline above the relational
/// part is row-for-row (no aggregate/DISTINCT/ORDER BY) with a projection
/// that cannot fail mid-stream.
fn limit_cap(
    s: &Select,
    order_by: &[OrderItem],
    limit: Option<&Expr>,
    offset: Option<&Expr>,
    scope: &Scope,
) -> Option<usize> {
    if limit.is_none() && offset.is_none() {
        return None;
    }
    if !order_by.is_empty() || s.distinct || !s.group_by.is_empty() || s.having.is_some() {
        return None;
    }
    for item in &s.projection {
        match item {
            SelectItem::Wildcard => {}
            SelectItem::QualifiedWildcard(t) => {
                let lt = t.to_lowercase();
                if !scope.cols.iter().any(|c| c.binding == lt) {
                    return None;
                }
            }
            SelectItem::Expr { expr, .. } => {
                if expr.contains_aggregate() || !is_safe(expr, scope) {
                    return None;
                }
            }
        }
    }
    let lit = |e: Option<&Expr>| -> Option<u64> {
        match e {
            None => Some(0),
            Some(Expr::Literal(Value::Integer(n))) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    };
    let cap = lit(limit)?.checked_add(lit(offset)?)?;
    usize::try_from(cap).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::engine::database_from_script;
    use crate::parser::parse_statement;

    fn db() -> Database {
        let mut script = String::from(
            "CREATE TABLE small (id INTEGER PRIMARY KEY, v INTEGER);\n\
             CREATE TABLE big (id INTEGER PRIMARY KEY, small_id INTEGER, w INTEGER);\n",
        );
        for i in 0..4 {
            script.push_str(&format!("INSERT INTO small VALUES ({i}, {});\n", i * 10));
        }
        for i in 0..50 {
            script.push_str(&format!("INSERT INTO big VALUES ({i}, {}, {});\n", i % 4, i));
        }
        database_from_script("opt", &script).unwrap()
    }

    fn select_of(sql: &str) -> (Query, Select) {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!("query") };
        let SetExpr::Select(s) = &q.body else { panic!("select") };
        (q.clone(), (**s).clone())
    }

    fn has_filter_below_join(n: &PlanNode) -> bool {
        match n {
            PlanNode::Join { left, right, .. } => {
                matches!(left.as_ref(), PlanNode::Filter { .. })
                    || matches!(right.as_ref(), PlanNode::Filter { .. })
                    || has_filter_below_join(left)
                    || has_filter_below_join(right)
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Permute { input, .. }
            | PlanNode::Cap { input, .. } => has_filter_below_join(input),
            _ => false,
        }
    }

    fn has_equi_join(n: &PlanNode) -> bool {
        match n {
            PlanNode::Join { equi, left, right, .. } => {
                equi.is_some() || has_equi_join(left) || has_equi_join(right)
            }
            PlanNode::Filter { input, .. }
            | PlanNode::Permute { input, .. }
            | PlanNode::Cap { input, .. } => has_equi_join(input),
            _ => false,
        }
    }

    #[test]
    fn single_binding_predicates_are_pushed_to_the_leaf() {
        let db = db();
        let (q, s) = select_of(
            "SELECT * FROM big JOIN small ON big.small_id = small.id WHERE small.v > 10",
        );
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        assert!(has_filter_below_join(&plan), "{plan:?}");
    }

    #[test]
    fn equi_keys_are_extracted_for_inner_joins() {
        let db = db();
        let (q, s) = select_of("SELECT * FROM big JOIN small ON big.small_id = small.id");
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        assert!(has_equi_join(&plan), "{plan:?}");
    }

    #[test]
    fn unsafe_predicates_fall_back_to_naive() {
        let db = db();
        let (q, s) = select_of(
            "SELECT * FROM big JOIN small ON big.small_id = small.id WHERE ABS(small.v) > 1",
        );
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        let PlanNode::Filter { input, .. } = &plan else { panic!("expected naive top filter") };
        let PlanNode::Join { equi, .. } = input.as_ref() else { panic!("expected join") };
        assert!(equi.is_none(), "fallback must not annotate keys");
    }

    #[test]
    fn limit_cap_applies_only_to_plain_projections() {
        let db = db();
        let (q, s) = select_of("SELECT w FROM big LIMIT 5");
        let plan = optimize_select(&db, &s, &q.order_by, q.limit.as_ref(), q.offset.as_ref());
        assert!(matches!(plan, PlanNode::Cap { cap: 5, .. }), "{plan:?}");

        let (q2, s2) = select_of("SELECT COUNT(*) FROM big LIMIT 5");
        let plan2 =
            optimize_select(&db, &s2, &q2.order_by, q2.limit.as_ref(), q2.offset.as_ref());
        assert!(!matches!(plan2, PlanNode::Cap { .. }), "{plan2:?}");
    }

    #[test]
    fn duplicate_bindings_disable_rewrites() {
        let db = db();
        let (q, s) = select_of("SELECT big.w FROM big, big WHERE big.w > 1");
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        assert!(
            matches!(&plan, PlanNode::Filter { input, .. }
                if matches!(input.as_ref(), PlanNode::Join { .. })),
            "{plan:?}"
        );
    }

    #[test]
    fn constant_predicates_stay_in_the_top_filter() {
        let db = db();
        let (q, s) = select_of("SELECT w FROM big WHERE 1 = 1");
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        assert!(
            matches!(&plan, PlanNode::Filter { input, .. }
                if matches!(input.as_ref(), PlanNode::Scan { .. })),
            "{plan:?}"
        );
    }

    #[test]
    fn left_join_right_side_predicates_are_not_pushed() {
        let db = db();
        let (q, s) = select_of(
            "SELECT * FROM small LEFT JOIN big ON small.id = big.small_id WHERE big.w > 1",
        );
        let plan = optimize_select(&db, &s, &q.order_by, None, None);
        assert!(!has_filter_below_join(&plan), "{plan:?}");
    }
}
