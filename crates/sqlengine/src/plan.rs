//! Logical query plans: the relational IR the optimizer rewrites and the
//! executor runs.
//!
//! [`lower_relation`] turns the FROM/WHERE portion of a SELECT core into a
//! [`PlanNode`] tree whose naive shape reproduces the pre-plan executor
//! byte-for-byte: factors fold left-to-right in syntactic order, each join
//! keeps its ON predicate, and the whole WHERE clause sits in one `Filter`
//! on top. The optimizer (`crate::optimizer`) rewrites that tree —
//! predicate pushdown, join reordering, hash-join key extraction, LIMIT
//! capping — without changing the bag of rows it produces.
//!
//! [`lower_query`] additionally wraps the relational core with the
//! presentation operators (project/aggregate/sort/limit) so
//! [`Database::explain`] can render the whole pipeline with per-node cost
//! estimates from `crate::cost`.

// Plans are built from model-generated SQL on the inference hot path; a
// panic here escapes into beam search. Every fallible case must return an
// Option/Result, and every public item is documented.
#![deny(clippy::unwrap_used, clippy::expect_used)]
#![deny(missing_docs)]

use crate::ast::*;
use crate::catalog::Database;
use crate::cost;
use crate::error::{Error, Result};
use crate::parser::parse_statement;

/// Which plan the executor runs for each SELECT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// Syntactic join order, WHERE evaluated on top: the reference
    /// semantics the differential harness compares against.
    Naive,
    /// Cost-based rewrites applied (the default execution path).
    Optimized,
}

/// Optimizer-extracted equi-join keys for a hash-join strategy.
///
/// `left_key`/`right_key` index into the join's left/right input scopes.
/// `residual` holds the remaining ON conjuncts, applied to each
/// key-matched pair.
#[derive(Debug, Clone)]
pub struct EquiJoin {
    /// Column index into the left input's scope.
    pub left_key: usize,
    /// Column index into the right input's scope.
    pub right_key: usize,
    /// Non-equi ON conjuncts evaluated on key-matched pairs.
    pub residual: Option<Expr>,
}

/// One node of a logical plan.
///
/// `Scan`/`Derived`/`Filter`/`Join`/`Permute`/`Cap` form the relational
/// core the executor runs; `Project`/`Aggregate`/`Sort`/`Limit` wrap it in
/// the full tree built by [`lower_query`] for EXPLAIN and estimation.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// FROM-less SELECT: a single empty row under an empty scope.
    Empty,
    /// Base-table scan.
    Scan {
        /// Table name as written in the query (case preserved for error
        /// messages).
        table: String,
        /// Lower-cased binding name (alias or table name).
        binding: String,
    },
    /// Derived table: a subquery executed and bound under an alias.
    Derived {
        /// The subquery to execute.
        query: Box<Query>,
        /// Lower-cased binding name.
        binding: String,
    },
    /// Keep only rows where `predicate` is true.
    Filter {
        /// Input node.
        input: Box<PlanNode>,
        /// Predicate evaluated per row against the input scope.
        predicate: Expr,
    },
    /// Join two inputs.
    Join {
        /// Left input.
        left: Box<PlanNode>,
        /// Right input.
        right: Box<PlanNode>,
        /// Inner, left-outer, or cross.
        kind: JoinKind,
        /// Full ON predicate for the nested-loop path (None = cross).
        on: Option<Expr>,
        /// Optimizer-extracted hash keys; None = runtime detection only.
        equi: Option<EquiJoin>,
    },
    /// Reorder output columns back to the pre-rewrite layout.
    Permute {
        /// Input node.
        input: Box<PlanNode>,
        /// `out[i] = row[indices[i]]`.
        indices: Vec<usize>,
    },
    /// Produce at most `cap` rows (optimized LIMIT propagation).
    Cap {
        /// Input node.
        input: Box<PlanNode>,
        /// Maximum rows to produce (LIMIT + OFFSET).
        cap: usize,
    },
    /// Projection wrapper (explain/estimation only).
    Project {
        /// Input node.
        input: Box<PlanNode>,
        /// Select items.
        items: Vec<SelectItem>,
        /// Whether DISTINCT applies.
        distinct: bool,
    },
    /// Aggregation wrapper (explain/estimation only).
    Aggregate {
        /// Input node.
        input: Box<PlanNode>,
        /// GROUP BY expressions.
        group_by: Vec<Expr>,
        /// HAVING predicate.
        having: Option<Expr>,
        /// Aggregate select items.
        items: Vec<SelectItem>,
    },
    /// Sort wrapper (explain/estimation only).
    Sort {
        /// Input node.
        input: Box<PlanNode>,
        /// ORDER BY keys.
        keys: Vec<OrderItem>,
    },
    /// Limit/offset wrapper (explain/estimation only).
    Limit {
        /// Input node.
        input: Box<PlanNode>,
        /// LIMIT expression.
        limit: Option<Expr>,
        /// OFFSET expression.
        offset: Option<Expr>,
    },
}

/// One column visible inside a SELECT core.
#[derive(Debug, Clone)]
pub(crate) struct ScopeCol {
    /// Lower-cased binding name (table alias or table name).
    pub(crate) binding: String,
    /// Lower-cased column name.
    pub(crate) name: String,
    /// Original display name used for `*` expansion and output naming.
    pub(crate) display: String,
}

/// The ordered column namespace of a relational node's output.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    /// Columns in output order.
    pub(crate) cols: Vec<ScopeCol>,
}

impl Scope {
    /// Resolve a (possibly qualified) column reference to its index.
    pub(crate) fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let lname = name.to_lowercase();
        match table {
            Some(t) => {
                let lt = t.to_lowercase();
                self.cols
                    .iter()
                    .position(|c| c.binding == lt && c.name == lname)
                    .ok_or_else(|| Error::Bind(format!("no such column: {t}.{name}")))
            }
            None => {
                let mut it = self.cols.iter().enumerate().filter(|(_, c)| c.name == lname);
                match (it.next(), it.next()) {
                    (Some((i, _)), None) => Ok(i),
                    (Some(_), Some(_)) => Err(Error::Bind(format!("ambiguous column: {name}"))),
                    (None, _) => Err(Error::Bind(format!("no such column: {name}"))),
                }
            }
        }
    }
}

/// The lower-cased binding name a factor introduces.
pub(crate) fn factor_binding(f: &TableFactor) -> String {
    match f {
        TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name).to_lowercase(),
        TableFactor::Derived { alias, .. } => alias.to_lowercase(),
    }
}

/// Lower one factor into a plan leaf.
pub(crate) fn lower_factor(f: &TableFactor) -> PlanNode {
    match f {
        TableFactor::Table { name, .. } => {
            PlanNode::Scan { table: name.clone(), binding: factor_binding(f) }
        }
        TableFactor::Derived { subquery, alias } => {
            PlanNode::Derived { query: subquery.clone(), binding: alias.to_lowercase() }
        }
    }
}

/// Lower a FROM/WHERE pair into the naive relational plan: factors fold
/// left-to-right exactly as written, each join keeps its ON predicate, and
/// the whole WHERE clause becomes a single top `Filter`. Executing this
/// plan reproduces the pre-plan executor's behaviour (including its lazy
/// "no such table" and bind errors) operator for operator.
pub fn lower_relation(from: Option<&FromClause>, selection: Option<Expr>) -> PlanNode {
    let mut node = match from {
        // SELECT without FROM evaluates over a single empty row.
        None => PlanNode::Empty,
        Some(from) => {
            let mut node = lower_factor(&from.base);
            for join in &from.joins {
                node = PlanNode::Join {
                    left: Box::new(node),
                    right: Box::new(lower_factor(&join.factor)),
                    kind: join.kind,
                    on: join.on.clone(),
                    equi: None,
                };
            }
            node
        }
    };
    if let Some(pred) = selection {
        node = PlanNode::Filter { input: Box::new(node), predicate: pred };
    }
    node
}

/// Lower a whole query into a full plan tree (relational core plus
/// project/aggregate/sort/limit wrappers) for EXPLAIN and estimation.
/// Only plain SELECT bodies are supported; set operations return
/// [`Error::Unsupported`].
pub fn lower_query(db: &Database, q: &Query, mode: PlanMode) -> Result<PlanNode> {
    let s = match &q.body {
        SetExpr::Select(s) => s,
        _ => {
            return Err(Error::Unsupported(
                "plan lowering supports plain SELECT queries only".into(),
            ))
        }
    };
    let relational = match mode {
        PlanMode::Naive => lower_relation(s.from.as_ref(), s.selection.clone()),
        PlanMode::Optimized => crate::optimizer::optimize_select(
            db,
            s,
            &q.order_by,
            q.limit.as_ref(),
            q.offset.as_ref(),
        ),
    };
    let has_aggregate = s
        .projection
        .iter()
        .any(|item| matches!(item, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
        || s.having.as_ref().is_some_and(Expr::contains_aggregate);
    let mut node = if !s.group_by.is_empty() || has_aggregate {
        PlanNode::Aggregate {
            input: Box::new(relational),
            group_by: s.group_by.clone(),
            having: s.having.clone(),
            items: s.projection.clone(),
        }
    } else {
        PlanNode::Project {
            input: Box::new(relational),
            items: s.projection.clone(),
            distinct: s.distinct,
        }
    };
    if !q.order_by.is_empty() {
        node = PlanNode::Sort { input: Box::new(node), keys: q.order_by.clone() };
    }
    if q.limit.is_some() || q.offset.is_some() {
        node = PlanNode::Limit {
            input: Box::new(node),
            limit: q.limit.clone(),
            offset: q.offset.clone(),
        };
    }
    Ok(node)
}

// -- static scopes -----------------------------------------------------------

/// Output column names of a query, computed without executing it. Returns
/// None when a name cannot be determined statically (e.g. a wildcard over
/// an unknown table).
fn derived_columns(db: &Database, q: &Query) -> Option<Vec<String>> {
    match &q.body {
        SetExpr::Select(s) => {
            let scope = match &s.from {
                Some(from) => static_from_scope(db, from)?,
                None => Scope::default(),
            };
            let mut out = Vec::new();
            for item in &s.projection {
                match item {
                    SelectItem::Wildcard => {
                        out.extend(scope.cols.iter().map(|c| c.display.clone()))
                    }
                    SelectItem::QualifiedWildcard(t) => {
                        let lt = t.to_lowercase();
                        let mut any = false;
                        for c in scope.cols.iter().filter(|c| c.binding == lt) {
                            any = true;
                            out.push(c.display.clone());
                        }
                        if !any {
                            return None;
                        }
                    }
                    SelectItem::Expr { expr, alias } => out.push(match alias {
                        Some(a) => a.clone(),
                        None => match expr {
                            Expr::Column { name, .. } => name.clone(),
                            other => other.to_string(),
                        },
                    }),
                }
            }
            Some(out)
        }
        SetExpr::Nested(inner) => derived_columns(db, inner),
        // Set-operation results carry the left operand's column names.
        SetExpr::SetOp { left, .. } => {
            let probe = crate::cost::wrap_set_expr((**left).clone());
            derived_columns(db, &probe)
        }
    }
}

/// The scope a factor will have at runtime, computed statically. None when
/// the table is missing or a derived column list cannot be determined —
/// callers must then fall back to the naive plan so the runtime error (or
/// lack of one, for empty inputs) surfaces unchanged.
pub(crate) fn static_factor_scope(db: &Database, f: &TableFactor) -> Option<Scope> {
    let binding = factor_binding(f);
    match f {
        TableFactor::Table { name, .. } => {
            let table = db.table(name)?;
            Some(Scope {
                cols: table
                    .schema
                    .columns
                    .iter()
                    .map(|c| ScopeCol {
                        binding: binding.clone(),
                        name: c.name.to_lowercase(),
                        display: c.name.clone(),
                    })
                    .collect(),
            })
        }
        TableFactor::Derived { subquery, .. } => {
            let cols = derived_columns(db, subquery)?;
            Some(Scope {
                cols: cols
                    .into_iter()
                    .map(|c| ScopeCol {
                        binding: binding.clone(),
                        name: c.to_lowercase(),
                        display: c,
                    })
                    .collect(),
            })
        }
    }
}

/// The combined scope of a whole FROM clause, computed statically.
pub(crate) fn static_from_scope(db: &Database, from: &FromClause) -> Option<Scope> {
    let mut scope = static_factor_scope(db, &from.base)?;
    for join in &from.joins {
        let right = static_factor_scope(db, &join.factor)?;
        scope.cols.extend(right.cols);
    }
    Some(scope)
}

/// The static output columns of a relational plan node as
/// `(binding, column)` pairs, or None when a leaf cannot be resolved.
/// Used by the schema-preservation property tests.
pub fn output_bindings(db: &Database, node: &PlanNode) -> Option<Vec<(String, String)>> {
    let scope = node_scope(db, node)?;
    Some(scope.cols.into_iter().map(|c| (c.binding, c.name)).collect())
}

/// Static scope of a relational plan node.
pub(crate) fn node_scope(db: &Database, node: &PlanNode) -> Option<Scope> {
    match node {
        PlanNode::Empty => Some(Scope::default()),
        PlanNode::Scan { table, binding } => {
            let factor = TableFactor::Table { name: table.clone(), alias: Some(binding.clone()) };
            static_factor_scope(db, &factor)
        }
        PlanNode::Derived { query, binding } => {
            let factor =
                TableFactor::Derived { subquery: query.clone(), alias: binding.clone() };
            static_factor_scope(db, &factor)
        }
        PlanNode::Filter { input, .. } | PlanNode::Cap { input, .. } => node_scope(db, input),
        PlanNode::Join { left, right, .. } => {
            let mut scope = node_scope(db, left)?;
            scope.cols.extend(node_scope(db, right)?.cols);
            Some(scope)
        }
        PlanNode::Permute { input, indices } => {
            let scope = node_scope(db, input)?;
            let mut cols = Vec::with_capacity(indices.len());
            for &i in indices {
                cols.push(scope.cols.get(i)?.clone());
            }
            Some(Scope { cols })
        }
        PlanNode::Project { .. }
        | PlanNode::Aggregate { .. }
        | PlanNode::Sort { .. }
        | PlanNode::Limit { .. } => None,
    }
}

// -- EXPLAIN rendering -------------------------------------------------------

impl PlanNode {
    fn describe(&self) -> String {
        match self {
            PlanNode::Empty => "Empty".to_string(),
            PlanNode::Scan { table, binding } => {
                if table.to_lowercase() == *binding {
                    format!("Scan {table}")
                } else {
                    format!("Scan {table} AS {binding}")
                }
            }
            PlanNode::Derived { binding, .. } => format!("Derived AS {binding}"),
            PlanNode::Filter { predicate, .. } => format!("Filter {predicate}"),
            PlanNode::Join { kind, on, equi, .. } => {
                let kind = match kind {
                    JoinKind::Inner => "inner",
                    JoinKind::Left => "left",
                    JoinKind::Cross => "cross",
                };
                let strategy = match equi {
                    Some(e) => {
                        let residual = match &e.residual {
                            Some(r) => format!(" residual {r}"),
                            None => String::new(),
                        };
                        format!(" hash(l[{}] = r[{}]){residual}", e.left_key, e.right_key)
                    }
                    None => String::new(),
                };
                match on {
                    Some(on) => format!("Join {kind}{strategy} ON {on}"),
                    None => format!("Join {kind}{strategy}"),
                }
            }
            PlanNode::Permute { indices, .. } => format!("Permute {indices:?}"),
            PlanNode::Cap { cap, .. } => format!("Cap {cap}"),
            PlanNode::Project { items, distinct, .. } => {
                let d = if *distinct { "distinct " } else { "" };
                format!("Project {d}[{} cols]", items.len())
            }
            PlanNode::Aggregate { group_by, .. } => {
                format!("Aggregate [{} group keys]", group_by.len())
            }
            PlanNode::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
            PlanNode::Limit { limit, offset, .. } => {
                let l = limit.as_ref().map_or("-".to_string(), |e| e.to_string());
                match offset {
                    Some(o) => format!("Limit {l} OFFSET {o}"),
                    None => format!("Limit {l}"),
                }
            }
        }
    }

    fn children(&self) -> Vec<&PlanNode> {
        match self {
            PlanNode::Empty | PlanNode::Scan { .. } | PlanNode::Derived { .. } => Vec::new(),
            PlanNode::Filter { input, .. }
            | PlanNode::Permute { input, .. }
            | PlanNode::Cap { input, .. }
            | PlanNode::Project { input, .. }
            | PlanNode::Aggregate { input, .. }
            | PlanNode::Sort { input, .. }
            | PlanNode::Limit { input, .. } => vec![input],
            PlanNode::Join { left, right, .. } => vec![left, right],
        }
    }

    fn render_into(&self, db: &Database, depth: usize, out: &mut String) {
        let est = cost::estimate_node(db, self);
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{}  (est rows={:.1} cpu={:.1} io={:.1})\n",
            self.describe(),
            est.rows,
            est.cost.cpu,
            est.cost.io
        ));
        for child in self.children() {
            child.render_into(db, depth + 1, out);
        }
    }

    /// Render this plan as an indented tree with per-node cost estimates.
    pub fn render(&self, db: &Database) -> String {
        let mut out = String::new();
        self.render_into(db, 0, &mut out);
        out
    }
}

impl Database {
    /// EXPLAIN-style debug helper: parse `sql`, lower and optimize it, and
    /// return the chosen plan rendered as an indented tree with per-node
    /// cost estimates. Supports plain SELECT statements.
    pub fn explain(&self, sql: &str) -> Result<String> {
        match parse_statement(sql)? {
            Statement::Query(q) => {
                let plan = lower_query(self, &q, PlanMode::Optimized)?;
                Ok(plan.render(self))
            }
            _ => Err(Error::Unsupported("EXPLAIN supports SELECT statements only".into())),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn db() -> Database {
        crate::engine::database_from_script(
            "sample",
            "CREATE TABLE t (id INTEGER PRIMARY KEY, x INTEGER);\n\
             CREATE TABLE u (id INTEGER PRIMARY KEY, t_id INTEGER, y INTEGER);\n\
             INSERT INTO t VALUES (1, 10);\n\
             INSERT INTO u VALUES (1, 1, 7);",
        )
        .unwrap()
    }

    #[test]
    fn naive_lowering_preserves_syntactic_shape() {
        let db = db();
        let Statement::Query(q) =
            parse_statement("SELECT * FROM t JOIN u ON t.id = u.t_id WHERE u.y > 3").unwrap()
        else {
            panic!("expected query")
        };
        let SetExpr::Select(s) = &q.body else { panic!("expected select") };
        let plan = lower_relation(s.from.as_ref(), s.selection.clone());
        let PlanNode::Filter { input, .. } = &plan else { panic!("expected top filter") };
        let PlanNode::Join { left, right, kind, on, equi } = input.as_ref() else {
            panic!("expected join")
        };
        assert_eq!(*kind, JoinKind::Inner);
        assert!(on.is_some());
        assert!(equi.is_none(), "naive lowering never pre-extracts keys");
        assert!(matches!(left.as_ref(), PlanNode::Scan { .. }));
        assert!(matches!(right.as_ref(), PlanNode::Scan { .. }));
        let _ = db;
    }

    #[test]
    fn static_scope_matches_runtime_layout() {
        let db = db();
        let Statement::Query(q) =
            parse_statement("SELECT * FROM t AS a JOIN u AS b ON a.id = b.t_id").unwrap()
        else {
            panic!("expected query")
        };
        let SetExpr::Select(s) = &q.body else { panic!("expected select") };
        let scope = static_from_scope(&db, s.from.as_ref().unwrap()).unwrap();
        let cols: Vec<(String, String)> =
            scope.cols.iter().map(|c| (c.binding.clone(), c.name.clone())).collect();
        assert_eq!(
            cols,
            vec![
                ("a".into(), "id".into()),
                ("a".into(), "x".into()),
                ("b".into(), "id".into()),
                ("b".into(), "t_id".into()),
                ("b".into(), "y".into()),
            ]
        );
    }

    #[test]
    fn explain_renders_per_node_estimates() {
        let db = db();
        let text = db.explain("SELECT x FROM t WHERE x > 3 LIMIT 2").unwrap();
        assert!(text.contains("Scan t"), "{text}");
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains("Limit 2"), "{text}");
    }

    #[test]
    fn explain_rejects_non_select() {
        let db = db();
        assert!(db.explain("INSERT INTO t VALUES (2, 2)").is_err());
    }
}
