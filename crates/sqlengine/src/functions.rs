//! Scalar (non-aggregate) SQL functions.

use crate::error::{Error, Result};
use crate::types::DataType;
use crate::value::{format_real, Value};

/// Evaluate a scalar function over already-evaluated arguments.
pub fn eval_scalar(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Type(format!("{name} expects {n} argument(s), got {}", args.len())))
        }
    };
    match name {
        "LENGTH" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Text(t) => Value::Integer(t.chars().count() as i64),
                other => Value::Integer(other.render().chars().count() as i64),
            })
        }
        "UPPER" => {
            arity(1)?;
            Ok(text_map(&args[0], |t| t.to_uppercase()))
        }
        "LOWER" => {
            arity(1)?;
            Ok(text_map(&args[0], |t| t.to_lowercase()))
        }
        "TRIM" => {
            arity(1)?;
            Ok(text_map(&args[0], |t| t.trim().to_string()))
        }
        "LTRIM" => {
            arity(1)?;
            Ok(text_map(&args[0], |t| t.trim_start().to_string()))
        }
        "RTRIM" => {
            arity(1)?;
            Ok(text_map(&args[0], |t| t.trim_end().to_string()))
        }
        "ABS" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Integer(i) => Value::Integer(i.wrapping_abs()),
                Value::Real(r) => Value::Real(r.abs()),
                Value::Text(t) => Value::Real(t.trim().parse::<f64>().unwrap_or(0.0).abs()),
            })
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(Error::Type("ROUND expects 1 or 2 arguments".into()));
            }
            let digits = if args.len() == 2 {
                match &args[1] {
                    Value::Null => return Ok(Value::Null),
                    v => v.as_f64().unwrap_or(0.0) as i32,
                }
            } else {
                0
            };
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => {
                    let x = v.as_f64().unwrap_or(0.0);
                    let m = 10f64.powi(digits);
                    Value::Real((x * m).round() / m)
                }
            })
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(Error::Type("SUBSTR expects 2 or 3 arguments".into()));
            }
            let Value::Text(ref s) = (match &args[0] {
                Value::Null => return Ok(Value::Null),
                Value::Text(t) => Value::Text(t.clone()),
                other => Value::Text(other.render()),
            }) else {
                unreachable!()
            };
            let chars: Vec<char> = s.chars().collect();
            let start = match &args[1] {
                Value::Null => return Ok(Value::Null),
                v => v.as_f64().unwrap_or(1.0) as i64,
            };
            let len = if args.len() == 3 {
                match &args[2] {
                    Value::Null => return Ok(Value::Null),
                    v => Some(v.as_f64().unwrap_or(0.0) as i64),
                }
            } else {
                None
            };
            // SQLite 1-based indexing; negative start counts from the end.
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start == 0 {
                0
            } else {
                chars.len().saturating_sub((-start) as usize)
            };
            let take = match len {
                Some(l) if l < 0 => 0usize,
                Some(l) => l as usize,
                None => chars.len(),
            };
            let out: String = chars.iter().skip(begin.min(chars.len())).take(take).collect();
            Ok(Value::Text(out))
        }
        "REPLACE" => {
            arity(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) | (_, Value::Null, _) | (_, _, Value::Null) => Ok(Value::Null),
                (s, from, to) => {
                    let (s, from, to) = (s.render(), from.render(), to.render());
                    if from.is_empty() {
                        Ok(Value::Text(s))
                    } else {
                        Ok(Value::Text(s.replace(&from, &to)))
                    }
                }
            }
        }
        "INSTR" => {
            arity(2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (hay, needle) => {
                    let (h, n) = (hay.render(), needle.render());
                    Ok(Value::Integer(match h.find(&n) {
                        Some(byte_pos) => (h[..byte_pos].chars().count() + 1) as i64,
                        None => 0,
                    }))
                }
            }
        }
        "COALESCE" | "IFNULL" => {
            if args.is_empty() {
                return Err(Error::Type(format!("{name} expects at least one argument")));
            }
            Ok(args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null))
        }
        "NULLIF" => {
            arity(2)?;
            if args[0].sql_eq(&args[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "IIF" => {
            arity(3)?;
            match args[0].truthiness() {
                Some(true) => Ok(args[1].clone()),
                _ => Ok(args[2].clone()),
            }
        }
        // Scalar MIN/MAX over two or more arguments (SQLite semantics:
        // NULL if any argument is NULL).
        "MIN" | "MAX" => {
            if args.len() < 2 {
                return Err(Error::Type(format!("scalar {name} needs at least 2 arguments")));
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut best = args[0].clone();
            for v in &args[1..] {
                let replace = if name == "MIN" { v < &best } else { v > &best };
                if replace {
                    best = v.clone();
                }
            }
            Ok(best)
        }
        "TYPEOF" => {
            arity(1)?;
            Ok(Value::Text(
                match args[0].data_type() {
                    None => "null",
                    Some(DataType::Integer) => "integer",
                    Some(DataType::Real) => "real",
                    Some(DataType::Text) => "text",
                }
                .to_string(),
            ))
        }
        other => Err(Error::Unsupported(format!("scalar function {other}"))),
    }
}

fn text_map(v: &Value, f: impl Fn(&str) -> String) -> Value {
    match v {
        Value::Null => Value::Null,
        Value::Text(t) => Value::Text(f(t)),
        other => Value::Text(f(&other.render())),
    }
}

/// SQL LIKE pattern matching: `%` any run, `_` any single character.
/// Case-insensitive for ASCII, as in SQLite's default collation.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn norm(s: &str) -> Vec<char> {
        s.chars().map(|c| c.to_ascii_lowercase()).collect()
    }
    let t = norm(text);
    let p = norm(pattern);
    // Classic two-pointer wildcard match with backtracking on '%'.
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            ti = star_t;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// Render a value as text for string functions (exposed to the executor's
/// `||` operator).
pub fn concat_text(a: &Value, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    let mut s = match a {
        Value::Real(r) => format_real(*r),
        other => other.render(),
    };
    s.push_str(&match b {
        Value::Real(r) => format_real(*r),
        other => other.render(),
    });
    Value::Text(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Value {
        Value::Text(s.into())
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval_scalar("LENGTH", &[t("héllo")]).unwrap(), Value::Integer(5));
        assert_eq!(eval_scalar("UPPER", &[t("abc")]).unwrap(), t("ABC"));
        assert_eq!(eval_scalar("TRIM", &[t("  x ")]).unwrap(), t("x"));
        assert_eq!(
            eval_scalar("REPLACE", &[t("a-b-c"), t("-"), t("+")]).unwrap(),
            t("a+b+c")
        );
        assert_eq!(eval_scalar("INSTR", &[t("hello"), t("ll")]).unwrap(), Value::Integer(3));
        assert_eq!(eval_scalar("INSTR", &[t("hello"), t("zz")]).unwrap(), Value::Integer(0));
    }

    #[test]
    fn substr_matches_sqlite() {
        assert_eq!(eval_scalar("SUBSTR", &[t("2009-03-04"), 1.into(), 4.into()]).unwrap(), t("2009"));
        assert_eq!(eval_scalar("SUBSTR", &[t("hello"), 2.into()]).unwrap(), t("ello"));
        assert_eq!(eval_scalar("SUBSTR", &[t("hello"), Value::Integer(-3), 2.into()]).unwrap(), t("ll"));
        assert_eq!(eval_scalar("SUBSTR", &[Value::Null, 1.into()]).unwrap(), Value::Null);
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval_scalar("ABS", &[Value::Integer(-4)]).unwrap(), Value::Integer(4));
        assert_eq!(eval_scalar("ROUND", &[Value::Real(2.567), 2.into()]).unwrap(), Value::Real(2.57));
        assert_eq!(eval_scalar("ROUND", &[Value::Real(2.5)]).unwrap(), Value::Real(3.0));
    }

    #[test]
    fn null_handling_functions() {
        assert_eq!(
            eval_scalar("COALESCE", &[Value::Null, Value::Null, 7.into()]).unwrap(),
            Value::Integer(7)
        );
        assert_eq!(eval_scalar("NULLIF", &[1.into(), 1.into()]).unwrap(), Value::Null);
        assert_eq!(eval_scalar("NULLIF", &[1.into(), 2.into()]).unwrap(), Value::Integer(1));
        assert_eq!(eval_scalar("IIF", &[0.into(), t("y"), t("n")]).unwrap(), t("n"));
    }

    #[test]
    fn scalar_min_max() {
        assert_eq!(eval_scalar("MIN", &[3.into(), 1.into(), 2.into()]).unwrap(), Value::Integer(1));
        assert_eq!(eval_scalar("MAX", &[3.into(), Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn unknown_function_is_unsupported() {
        assert!(matches!(
            eval_scalar("FROBNICATE", &[]),
            Err(crate::error::Error::Unsupported(_))
        ));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("HELLO", "hello")); // case-insensitive
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("banana", "%an%"));
        assert!(!like_match("banana", "%anx%"));
        assert!(like_match("a%b", "a%b")); // literal traversal via wildcard
        assert!(like_match("smith", "%smith"));
    }

    #[test]
    fn concat_semantics() {
        assert_eq!(concat_text(&t("a"), &Value::Integer(1)), t("a1"));
        assert!(concat_text(&t("a"), &Value::Null).is_null());
        assert_eq!(concat_text(&Value::Real(2.0), &t("x")), t("2.0x"));
    }
}
