//! High-level entry points: execute SQL text against a [`Database`].

// Entry points for model-generated SQL: a panic here escapes into beam
// search and evaluation workers. Every fallible case must return an Error.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::ast::{Expr, Statement};
use crate::catalog::{Column, Database, TableSchema};
use crate::cost::ExecStats;
use crate::error::{Error, Result};
use crate::exec::Executor;
use crate::governor::ExecLimits;
use crate::parser::{parse_script, parse_statement};
use crate::plan::PlanMode;
use crate::result::QueryResult;
use crate::types::DataType;
use crate::value::Value;

/// Execute a single `SELECT` query and return its result.
pub fn execute_query(db: &Database, sql: &str) -> Result<QueryResult> {
    execute_query_with_stats(db, sql).map(|(r, _)| r)
}

/// Execute a `SELECT` query, returning the result together with the
/// deterministic execution-cost counters (used by the VES metric).
pub fn execute_query_with_stats(db: &Database, sql: &str) -> Result<(QueryResult, ExecStats)> {
    execute_query_governed(db, sql, &ExecLimits::unlimited())
}

/// Execute a `SELECT` query under resource budgets. This is the entry
/// point for untrusted (model-generated) SQL: a statement that exhausts a
/// budget returns [`Error::BudgetExceeded`] instead of running away.
pub fn execute_query_governed(
    db: &Database,
    sql: &str,
    limits: &ExecLimits,
) -> Result<(QueryResult, ExecStats)> {
    execute_query_plan(db, sql, limits, PlanMode::Optimized)
}

/// Execute a `SELECT` query under resource budgets with an explicit
/// [`PlanMode`]. `PlanMode::Naive` runs the syntactic reference plan; the
/// differential harness compares it against `PlanMode::Optimized`.
pub fn execute_query_plan(
    db: &Database,
    sql: &str,
    limits: &ExecLimits,
    mode: PlanMode,
) -> Result<(QueryResult, ExecStats)> {
    let stmt = parse_statement(sql)?;
    match stmt {
        Statement::Query(q) => {
            let mut exec = Executor::with_mode(db, limits, mode);
            let result = exec.query(&q)?;
            Ok((result, exec.stats))
        }
        other => Err(Error::Exec(format!("expected a query, got {other}"))),
    }
}

/// Execute a `SELECT` query under resource budgets with the naive
/// (syntactic-order, un-rewritten) plan. Reference semantics for the
/// differential harness and the optimizer benchmark baseline.
pub fn execute_query_naive(
    db: &Database,
    sql: &str,
    limits: &ExecLimits,
) -> Result<(QueryResult, ExecStats)> {
    execute_query_plan(db, sql, limits, PlanMode::Naive)
}

/// Pre-price a candidate `SELECT` before spending governor budget on it.
///
/// Lowers and optimizes the statement, estimates its intermediate-row
/// footprint, and returns [`Error::CostShed`] when the estimate exceeds
/// [`crate::optimizer::PREPRICE_SHED_FACTOR`] times the governor's
/// intermediate-row budget — i.e. when even the best plan found is all but
/// certain to die of [`Error::BudgetExceeded`] anyway. Statements that do
/// not parse, are not queries, or have no finite intermediate-row budget
/// return `Ok(())`: pre-pricing only ever sheds work the governor would
/// reject, it never introduces new failure modes.
pub fn preprice_query(db: &Database, sql: &str, limits: &ExecLimits) -> Result<()> {
    let Some(budget_rows) = limits.max_intermediate_rows else {
        return Ok(());
    };
    let Ok(Statement::Query(q)) = parse_statement(sql) else {
        return Ok(());
    };
    let Ok(plan) = crate::plan::lower_query(db, &q, PlanMode::Optimized) else {
        return Ok(());
    };
    let est = crate::cost::estimate_node(db, &plan);
    let threshold = crate::optimizer::PREPRICE_SHED_FACTOR * budget_rows as f64;
    if est.inter_rows > threshold {
        codes_obs::global().counter(crate::optimizer::PLAN_PREPRICE_SHED, &[]).inc();
        return Err(Error::CostShed {
            estimated_rows: est.inter_rows.min(u64::MAX as f64) as u64,
            budget_rows,
        });
    }
    Ok(())
}

/// Execute a parsed query AST directly (used by the generator, which builds
/// ASTs and only serializes them for output).
pub fn execute_ast(db: &Database, query: &crate::ast::Query) -> Result<(QueryResult, ExecStats)> {
    execute_ast_governed(db, query, &ExecLimits::unlimited())
}

/// Execute a parsed query AST under resource budgets.
pub fn execute_ast_governed(
    db: &Database,
    query: &crate::ast::Query,
    limits: &ExecLimits,
) -> Result<(QueryResult, ExecStats)> {
    let mut exec = Executor::with_limits(db, limits);
    let result = exec.query(query)?;
    Ok((result, exec.stats))
}

/// Apply a DDL/DML statement to a database.
pub fn apply_statement(db: &mut Database, stmt: &Statement) -> Result<()> {
    match stmt {
        Statement::CreateTable(ct) => {
            let mut schema = TableSchema::new(ct.name.clone(), Vec::new());
            for cd in &ct.columns {
                let mut col = Column::new(cd.name.clone(), DataType::from_sql_name(&cd.type_name));
                col.primary_key = cd.primary_key || ct.primary_key.iter().any(|p| p.eq_ignore_ascii_case(&cd.name));
                col.not_null = cd.not_null || col.primary_key;
                col.comment = cd.comment.clone();
                schema.columns.push(col);
            }
            for fk in &ct.foreign_keys {
                schema = schema.with_foreign_key(fk.column.clone(), fk.ref_table.clone(), fk.ref_column.clone());
            }
            db.create_table(schema)?;
            Ok(())
        }
        Statement::Insert(ins) => {
            // Evaluate literal expressions first (no live borrow of db needed:
            // INSERT values must be constant).
            let schema_len;
            let col_indexes: Vec<usize>;
            {
                let table = db
                    .table(&ins.table)
                    .ok_or_else(|| Error::UnknownTable(ins.table.clone()))?;
                schema_len = table.schema.columns.len();
                col_indexes = match &ins.columns {
                    None => (0..schema_len).collect(),
                    Some(cols) => {
                        let mut idx = Vec::with_capacity(cols.len());
                        for c in cols {
                            idx.push(table.schema.column_index(c).ok_or_else(|| {
                                Error::Bind(format!("no such column: {}.{}", ins.table, c))
                            })?);
                        }
                        idx
                    }
                };
            }
            let mut materialized = Vec::with_capacity(ins.rows.len());
            for row in &ins.rows {
                if row.len() != col_indexes.len() {
                    return Err(Error::Exec(format!(
                        "INSERT arity mismatch: {} values for {} columns",
                        row.len(),
                        col_indexes.len()
                    )));
                }
                let mut full = vec![Value::Null; schema_len];
                for (expr, &target) in row.iter().zip(&col_indexes) {
                    full[target] = eval_const(expr)?;
                }
                materialized.push(full);
            }
            // The immutable lookup above proved the table exists, but a
            // panic on a stale assumption is exactly what this path must
            // never do — resolve again, fallibly.
            let table = db
                .table_mut(&ins.table)
                .ok_or_else(|| Error::UnknownTable(ins.table.clone()))?;
            for row in materialized {
                table.insert(row)?;
            }
            Ok(())
        }
        Statement::Query(_) => Err(Error::Exec("cannot apply a query as a mutation".into())),
    }
}

/// Evaluate a constant expression (literals, sign, simple arithmetic).
fn eval_const(e: &Expr) -> Result<Value> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Unary { op: crate::ast::UnaryOp::Neg, expr } => eval_const(expr)?.neg(),
        Expr::Binary { left, op, right } => {
            let l = eval_const(left)?;
            let r = eval_const(right)?;
            match op {
                crate::ast::BinaryOp::Add => l.add(&r),
                crate::ast::BinaryOp::Sub => l.sub(&r),
                crate::ast::BinaryOp::Mul => l.mul(&r),
                crate::ast::BinaryOp::Div => l.div(&r),
                _ => Err(Error::Exec("non-constant INSERT value".into())),
            }
        }
        _ => Err(Error::Exec("non-constant INSERT value".into())),
    }
}

/// Run a semicolon-separated DDL/DML script against a database.
pub fn load_script(db: &mut Database, sql: &str) -> Result<()> {
    for stmt in parse_script(sql)? {
        apply_statement(db, &stmt)?;
    }
    Ok(())
}

/// Build a fresh database from a DDL/DML script.
pub fn database_from_script(name: &str, sql: &str) -> Result<Database> {
    let mut db = Database::new(name);
    load_script(&mut db, sql)?;
    Ok(db)
}

/// Serialize a database's schema (and optionally its rows) back to a script
/// that `database_from_script` accepts. Used by test-suite augmentation.
pub fn schema_to_ddl(db: &Database) -> String {
    let mut out = String::new();
    for table in &db.tables {
        out.push_str(&format!("CREATE TABLE {} (", quote_ident(&table.schema.name)));
        let mut parts = Vec::new();
        for c in &table.schema.columns {
            let mut p = format!("{} {}", quote_ident(&c.name), c.data_type.sql_name());
            if c.primary_key {
                p.push_str(" PRIMARY KEY");
            } else if c.not_null {
                p.push_str(" NOT NULL");
            }
            if let Some(comment) = &c.comment {
                p.push_str(&format!(" COMMENT '{}'", comment.replace('\'', "''")));
            }
            parts.push(p);
        }
        for fk in &table.schema.foreign_keys {
            parts.push(format!(
                "FOREIGN KEY ({}) REFERENCES {}({})",
                quote_ident(&fk.column),
                quote_ident(&fk.ref_table),
                quote_ident(&fk.ref_column)
            ));
        }
        out.push_str(&parts.join(", "));
        out.push_str(");\n");
    }
    out
}

fn quote_ident(name: &str) -> String {
    if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name.chars().next().is_some_and(|c| !c.is_ascii_digit())
        && !name.is_empty()
    {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}
