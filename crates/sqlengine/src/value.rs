//! Runtime values and their SQL comparison / arithmetic semantics.
//!
//! The engine follows SQLite's storage-class model restricted to the types
//! the CodeS benchmarks need: `NULL`, 64-bit integers, 64-bit floats and
//! UTF-8 text. Comparison uses a total cross-type order (NULL < numbers <
//! text) so sorting and grouping are always well-defined, while SQL
//! three-valued logic for predicates is handled at the expression layer.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};
use crate::types::DataType;

/// A single cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Integer(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

/// A row is simply a vector of values.
pub type Row = Vec<Value>;

impl Value {
    /// Storage class of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Real(_) => Some(DataType::Real),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view used by arithmetic and numeric comparison.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Integer(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// SQL truthiness: numbers are true when non-zero, text when it parses
    /// to a non-zero number, NULL is "unknown" (`None`).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Integer(i) => Some(*i != 0),
            Value::Real(r) => Some(*r != 0.0),
            Value::Text(t) => Some(t.trim().parse::<f64>().map(|v| v != 0.0).unwrap_or(false)),
        }
    }

    /// Three-valued equality: `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// Three-valued comparison: `None` when either side is NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total cross-type order: NULL < numeric < text. Integers and reals
    /// compare numerically; NaN sorts below all other reals.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Integer(_) | Value::Real(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {}
            ord => return ord,
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (a, b) => {
                // Both sides are numeric here (rank 1), so as_f64 is total.
                let (x, y) = (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0));
                x.total_cmp(&y)
            }
        }
    }

    /// Approximate in-memory footprint, used by the execution governor's
    /// memory budget. A coarse model is fine: enum discriminant + payload,
    /// with text charged for its heap buffer.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Text(t) => 32 + t.len() as u64,
            _ => 16,
        }
    }

    /// CAST semantics, mirroring SQLite's lossy conversions.
    pub fn cast(&self, to: DataType) -> Value {
        match (self, to) {
            (Value::Null, _) => Value::Null,
            (Value::Integer(i), DataType::Integer) => Value::Integer(*i),
            (Value::Integer(i), DataType::Real) => Value::Real(*i as f64),
            (Value::Integer(i), DataType::Text) => Value::Text(i.to_string()),
            (Value::Real(r), DataType::Integer) => Value::Integer(*r as i64),
            (Value::Real(r), DataType::Real) => Value::Real(*r),
            (Value::Real(r), DataType::Text) => Value::Text(format_real(*r)),
            (Value::Text(t), DataType::Integer) => {
                Value::Integer(parse_numeric_prefix(t) as i64)
            }
            (Value::Text(t), DataType::Real) => Value::Real(parse_numeric_prefix(t)),
            (Value::Text(t), DataType::Text) => Value::Text(t.clone()),
        }
    }

    /// Render the value the way result sets and prompts display it.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Integer(i) => i.to_string(),
            Value::Real(r) => format_real(*r),
            Value::Text(t) => t.clone(),
        }
    }

    /// Render as a SQL literal (text quoted and escaped).
    pub fn to_literal(&self) -> String {
        match self {
            Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
            other => other.render(),
        }
    }

    fn arith(&self, other: &Value, op: fn(f64, f64) -> f64, iop: fn(i64, i64) -> Option<i64>) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Integer(a), Value::Integer(b)) => match iop(*a, *b) {
                Some(v) => Ok(Value::Integer(v)),
                None => Ok(Value::Real(op(*a as f64, *b as f64))),
            },
            (a, b) => {
                let (x, y) = (coerce_num(a)?, coerce_num(b)?);
                Ok(Value::Real(op(x, y)))
            }
        }
    }

    /// SQL `+` (NULL-propagating; integer overflow promotes to real).
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.arith(other, |a, b| a + b, i64::checked_add)
    }

    /// SQL `-` (NULL-propagating).
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, |a, b| a - b, i64::checked_sub)
    }

    /// SQL `*` (NULL-propagating).
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, |a, b| a * b, i64::checked_mul)
    }

    /// SQL division: NULL on division by zero (SQLite behaviour), real
    /// division whenever either operand is real.
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (_, Value::Integer(0)) => Ok(Value::Null),
            (Value::Integer(a), Value::Integer(b)) => Ok(Value::Integer(a / b)),
            (a, b) => {
                let y = coerce_num(b)?;
                if y == 0.0 {
                    return Ok(Value::Null);
                }
                Ok(Value::Real(coerce_num(a)? / y))
            }
        }
    }

    /// SQL `%` (NULL on modulo-by-zero, like SQLite).
    pub fn rem(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (_, Value::Integer(0)) => Ok(Value::Null),
            (Value::Integer(a), Value::Integer(b)) => Ok(Value::Integer(a % b)),
            (a, b) => {
                let y = coerce_num(b)?;
                if y == 0.0 {
                    return Ok(Value::Null);
                }
                Ok(Value::Real(coerce_num(a)? % y))
            }
        }
    }

    /// Arithmetic negation (type error on text).
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Integer(i) => Ok(Value::Integer(-i)),
            Value::Real(r) => Ok(Value::Real(-r)),
            Value::Text(t) => Err(Error::Type(format!("cannot negate text value '{t}'"))),
        }
    }
}

fn coerce_num(v: &Value) -> Result<f64> {
    match v {
        Value::Integer(i) => Ok(*i as f64),
        Value::Real(r) => Ok(*r),
        Value::Text(t) => Ok(parse_numeric_prefix(t)),
        Value::Null => Err(Error::Type("NULL in arithmetic".into())),
    }
}

/// SQLite-style: parse the longest numeric prefix, defaulting to 0.
fn parse_numeric_prefix(s: &str) -> f64 {
    let t = s.trim_start();
    let mut end = 0usize;
    let bytes = t.as_bytes();
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let ok = match c {
            '0'..='9' => {
                seen_digit = true;
                true
            }
            '+' | '-' => end == 0 || matches!(bytes[end - 1] as char, 'e' | 'E'),
            '.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                true
            }
            'e' | 'E' if seen_digit && !seen_exp => {
                seen_exp = true;
                true
            }
            _ => false,
        };
        if !ok {
            break;
        }
        end += 1;
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse::<f64>().unwrap_or(0.0)
}

/// Format a real so that whole numbers keep a trailing `.0` (SQLite style).
pub fn format_real(r: f64) -> String {
    if r.is_nan() {
        return "NaN".to_string();
    }
    if r.is_infinite() {
        return if r > 0.0 { "Inf" } else { "-Inf" }.to_string();
    }
    if r == r.trunc() && r.abs() < 1e15 {
        format!("{:.1}", r)
    } else {
        let s = format!("{r}");
        s
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Integers and equal-valued reals must hash alike because they
            // compare equal (1 == 1.0).
            Value::Integer(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Real(r) => {
                1u8.hash(state);
                // Normalize -0.0 to 0.0 so they hash alike.
                let r = if *r == 0.0 { 0.0 } else { *r };
                r.to_bits().hash(state);
            }
            Value::Text(t) => {
                2u8.hash(state);
                t.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn cross_type_total_order() {
        let null = Value::Null;
        let one = Value::Integer(1);
        let pi = Value::Real(3.14);
        let txt = Value::Text("a".into());
        assert!(null < one);
        assert!(one < pi);
        assert!(pi < txt);
    }

    #[test]
    fn integer_real_compare_numerically_and_hash_alike() {
        assert_eq!(Value::Integer(2), Value::Real(2.0));
        assert_eq!(h(&Value::Integer(2)), h(&Value::Real(2.0)));
        assert!(Value::Integer(2) < Value::Real(2.5));
    }

    #[test]
    fn sql_comparisons_are_null_aware() {
        assert_eq!(Value::Null.sql_eq(&Value::Integer(1)), None);
        assert_eq!(Value::Integer(1).sql_eq(&Value::Integer(1)), Some(true));
        assert_eq!(Value::Integer(1).sql_cmp(&Value::Integer(2)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn arithmetic_follows_sql_semantics() {
        assert_eq!(Value::Integer(2).add(&Value::Integer(3)).unwrap(), Value::Integer(5));
        assert_eq!(Value::Integer(2).add(&Value::Real(0.5)).unwrap(), Value::Real(2.5));
        assert!(Value::Integer(1).add(&Value::Null).unwrap().is_null());
        // Division by zero yields NULL, not an error.
        assert!(Value::Integer(1).div(&Value::Integer(0)).unwrap().is_null());
        assert_eq!(Value::Integer(7).div(&Value::Integer(2)).unwrap(), Value::Integer(3));
        assert_eq!(Value::Real(7.0).div(&Value::Integer(2)).unwrap(), Value::Real(3.5));
    }

    #[test]
    fn overflow_promotes_to_real() {
        let v = Value::Integer(i64::MAX).add(&Value::Integer(1)).unwrap();
        assert!(matches!(v, Value::Real(_)));
    }

    #[test]
    fn cast_text_to_numbers_uses_numeric_prefix() {
        assert_eq!(Value::Text("12abc".into()).cast(DataType::Integer), Value::Integer(12));
        assert_eq!(Value::Text("3.5x".into()).cast(DataType::Real), Value::Real(3.5));
        assert_eq!(Value::Text("abc".into()).cast(DataType::Integer), Value::Integer(0));
        assert_eq!(Value::Real(2.7).cast(DataType::Integer), Value::Integer(2));
    }

    #[test]
    fn render_and_literal() {
        assert_eq!(Value::Real(2.0).render(), "2.0");
        assert_eq!(Value::Text("O'Brien".into()).to_literal(), "'O''Brien'");
        assert_eq!(Value::Null.render(), "NULL");
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Integer(0).truthiness(), Some(false));
        assert_eq!(Value::Integer(3).truthiness(), Some(true));
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Text("1".into()).truthiness(), Some(true));
        assert_eq!(Value::Text("x".into()).truthiness(), Some(false));
    }

    #[test]
    fn numeric_prefix_parser_handles_exponents() {
        assert_eq!(parse_numeric_prefix("1e3"), 1000.0);
        assert_eq!(parse_numeric_prefix("-2.5e-1x"), -0.25);
        assert_eq!(parse_numeric_prefix(""), 0.0);
        assert_eq!(parse_numeric_prefix(".5"), 0.5);
    }
}
