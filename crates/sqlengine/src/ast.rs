//! Abstract syntax tree for the supported SQL dialect, plus a canonical
//! SQL renderer (`Display`) used both by tests and by the CodeS generator,
//! which emits ASTs and serializes them back to SQL text.

use std::fmt;

use crate::value::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `INSERT INTO ...`
    Insert(Insert),
    /// A `SELECT` query (possibly a set operation).
    Query(Query),
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Table-level `PRIMARY KEY (a, b)` column names (inline PKs are on the
    /// column defs).
    pub primary_key: Vec<String>,
    /// Foreign-key constraints (inline and table-level).
    pub foreign_keys: Vec<ForeignKeyDef>,
}

/// One column of a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Raw SQL type name as written (`VARCHAR(30)`, `double precision`...).
    pub type_name: String,
    /// Declared inline as `PRIMARY KEY`.
    pub primary_key: bool,
    /// Declared `NOT NULL` (implied by `PRIMARY KEY`).
    pub not_null: bool,
    /// `COMMENT '...'` attached to the column.
    pub comment: Option<String>,
}

/// A foreign-key constraint of a `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKeyDef {
    /// Referencing column of this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
}

/// `INSERT INTO` statement. Values are restricted to literal expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Rows of (constant) value expressions.
    pub rows: Vec<Vec<Expr>>,
}

/// A full query: set-expression body plus trailing ORDER BY / LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The set-expression body (one SELECT core or a set operation).
    pub body: SetExpr,
    /// Top-level `ORDER BY` keys.
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` expression (constant).
    pub limit: Option<Expr>,
    /// `OFFSET` expression (constant).
    pub offset: Option<Expr>,
}

impl Query {
    /// Wrap a plain SELECT core into a query with no ORDER BY/LIMIT.
    pub fn plain(select: Select) -> Query {
        Query {
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }

    /// The left-most SELECT core (used for output column naming).
    pub fn leftmost_select(&self) -> &Select {
        self.body.leftmost_select()
    }

    /// True when the top level of the query imposes an output ordering.
    pub fn is_ordered(&self) -> bool {
        !self.order_by.is_empty()
    }
}

/// The body of a query: SELECT cores combined by set operators.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A single SELECT core.
    Select(Box<Select>),
    /// A parenthesized query with its own ORDER BY / LIMIT, appearing as a
    /// term of a set operation.
    Nested(Box<Query>),
    /// `left (UNION|INTERSECT|EXCEPT) [ALL] right`.
    SetOp {
        /// Which set operator.
        op: SetOpKind,
        /// `ALL` keeps duplicates (UNION only).
        all: bool,
        /// Left operand.
        left: Box<SetExpr>,
        /// Right operand.
        right: Box<SetExpr>,
    },
}

impl SetExpr {
    /// The left-most SELECT core (used for output column naming).
    pub fn leftmost_select(&self) -> &Select {
        match self {
            SetExpr::Select(s) => s,
            SetExpr::Nested(q) => q.leftmost_select(),
            SetExpr::SetOp { left, .. } => left.leftmost_select(),
        }
    }
}

/// The three SQL set operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOpKind {
    /// `UNION` (deduplicating unless `ALL`).
    Union,
    /// `INTERSECT` (set semantics).
    Intersect,
    /// `EXCEPT` (set difference).
    Except,
}

/// One SELECT core.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` clause, if any.
    pub from: Option<FromClause>,
    /// `WHERE` predicate.
    pub selection: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
}

impl Select {
    /// A bare `SELECT <projection>` with no other clauses.
    pub fn new(projection: Vec<SelectItem>) -> Select {
        Select {
            distinct: false,
            projection,
            from: None,
            selection: None,
            group_by: Vec::new(),
            having: None,
        }
    }
}

/// One item of a projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// An expression with optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A `FROM` clause: a base factor plus zero or more joins.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// The first table factor.
    pub base: TableFactor,
    /// Subsequent joined factors, in order.
    pub joins: Vec<Join>,
}

/// A table reference in a `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A base table, optionally aliased.
    Table {
        /// Table name.
        name: String,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
    /// A parenthesized subquery with a mandatory alias.
    Derived {
        /// The subquery.
        subquery: Box<Query>,
        /// Binding name.
        alias: String,
    },
}

impl TableFactor {
    /// The name this factor is referred to by in column qualifiers.
    pub fn binding_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    Inner,
    /// `LEFT [OUTER] JOIN`.
    Left,
    /// `CROSS JOIN` or comma join.
    Cross,
}

/// One join step of a `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join kind.
    pub kind: JoinKind,
    /// The joined factor.
    pub factor: TableFactor,
    /// `ON` predicate, if any.
    pub on: Option<Expr>,
}

/// One `ORDER BY` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// `DESC` when true, `ASC` otherwise.
    pub desc: bool,
}

/// Binary operators, in SQL semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // operator names are their own documentation
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

impl BinaryOp {
    /// The operator's SQL spelling.
    pub fn symbol(&self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Concat => "||",
        }
    }

    /// True for comparison operators (used by generation grammar).
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT (three-valued).
    Not,
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field names mirror SQL syntax directly
pub enum Expr {
    Column { table: Option<String>, name: String },
    Literal(Value),
    Unary { op: UnaryOp, expr: Box<Expr> },
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// Function call; `star` marks `COUNT(*)`.
    Function { name: String, args: Vec<Expr>, distinct: bool, star: bool },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    InSubquery { expr: Box<Expr>, query: Box<Query>, negated: bool },
    ScalarSubquery(Box<Query>),
    Exists { query: Box<Query>, negated: bool },
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    IsNull { expr: Box<Expr>, negated: bool },
    Cast { expr: Box<Expr>, type_name: String },
}

impl Expr {
    /// An unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    /// A table-qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column { table: Some(table.to_string()), name: name.to_string() }
    }

    /// A literal value expression.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// A binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    /// A function call (name upper-cased).
    pub fn func(name: &str, args: Vec<Expr>) -> Expr {
        Expr::Function { name: name.to_uppercase(), args, distinct: false, star: false }
    }

    /// `COUNT(*)`.
    pub fn count_star() -> Expr {
        Expr::Function { name: "COUNT".into(), args: Vec::new(), distinct: false, star: true }
    }

    /// True when the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, star, .. } => {
                *star
                    || is_aggregate_name(name)
                    || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => left.contains_aggregate() || right.contains_aggregate(),
            Expr::Case { operand, branches, else_expr } => {
                operand.as_deref().map(Expr::contains_aggregate).unwrap_or(false)
                    || branches.iter().any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr.as_deref().map(Expr::contains_aggregate).unwrap_or(false)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => expr.contains_aggregate() || pattern.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Column { .. }
            | Expr::Literal(_)
            | Expr::ScalarSubquery(_)
            | Expr::Exists { .. } => false,
        }
    }
}

/// Aggregate function names the executor understands.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "TOTAL" | "GROUP_CONCAT"
    )
}

// ---------------------------------------------------------------------------
// Canonical SQL rendering
// ---------------------------------------------------------------------------

/// Quote an identifier only when required.
fn ident(name: &str) -> String {
    let needs_quote = name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
        || crate::lexer::tokenize(name)
            .map(|t| matches!(t.first(), Some(crate::lexer::Token::Keyword(_))))
            .unwrap_or(true);
    if needs_quote {
        format!("\"{}\"", name.replace('"', "\"\""))
    } else {
        name.to_string()
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Query(q) => write!(f, "{q}"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE TABLE {} (", ident(&self.name))?;
        let mut first = true;
        for c in &self.columns {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{} {}", ident(&c.name), c.type_name)?;
            if c.primary_key {
                write!(f, " PRIMARY KEY")?;
            } else if c.not_null {
                write!(f, " NOT NULL")?;
            }
            if let Some(comment) = &c.comment {
                write!(f, " COMMENT '{}'", comment.replace('\'', "''"))?;
            }
        }
        if !self.primary_key.is_empty() {
            write!(
                f,
                ", PRIMARY KEY ({})",
                self.primary_key.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", ")
            )?;
        }
        for fk in &self.foreign_keys {
            write!(
                f,
                ", FOREIGN KEY ({}) REFERENCES {}({})",
                ident(&fk.column),
                ident(&fk.ref_table),
                ident(&fk.ref_column)
            )?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", ident(&self.table))?;
        if let Some(cols) = &self.columns {
            write!(f, " ({})", cols.iter().map(|c| ident(c)).collect::<Vec<_>>().join(", "))?;
        }
        write!(f, " VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "({})",
                row.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
            )?;
        }
        Ok(())
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(
                f,
                " ORDER BY {}",
                self.order_by
                    .iter()
                    .map(|o| format!("{}{}", o.expr, if o.desc { " DESC" } else { " ASC" }))
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        if let Some(limit) = &self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        if let Some(offset) = &self.offset {
            write!(f, " OFFSET {offset}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::Nested(q) => write!(f, "({q})"),
            SetExpr::SetOp { op, all, left, right } => {
                let kw = match op {
                    SetOpKind::Union => "UNION",
                    SetOpKind::Intersect => "INTERSECT",
                    SetOpKind::Except => "EXCEPT",
                };
                write!(f, "{left} {kw}{} {right}", if *all { " ALL" } else { "" })
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::QualifiedWildcard(t) => write!(f, "{}.*", ident(t))?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS {}", ident(a))?;
                    }
                }
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {}", from)?;
        }
        if let Some(sel) = &self.selection {
            write!(f, " WHERE {sel}")?;
        }
        if !self.group_by.is_empty() {
            write!(
                f,
                " GROUP BY {}",
                self.group_by.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
            )?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for FromClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for j in &self.joins {
            let kw = match j.kind {
                JoinKind::Inner => "JOIN",
                JoinKind::Left => "LEFT JOIN",
                JoinKind::Cross => "CROSS JOIN",
            };
            write!(f, " {kw} {}", j.factor)?;
            if let Some(on) = &j.on {
                write!(f, " ON {on}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{}", ident(name))?;
                if let Some(a) = alias {
                    write!(f, " AS {}", ident(a))?;
                }
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                write!(f, "({subquery}) AS {}", ident(alias))
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table, name } => match table {
                Some(t) => write!(f, "{}.{}", ident(t), ident(name)),
                None => write!(f, "{}", ident(name)),
            },
            Expr::Literal(v) => write!(f, "{}", v.to_literal()),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => write!(f, "-{expr}"),
                UnaryOp::Not => write!(f, "NOT {expr}"),
            },
            Expr::Binary { left, op, right } => {
                // Parenthesize nested OR under AND to keep rendering
                // unambiguous without tracking precedence.
                let needs_paren = |e: &Expr| {
                    matches!(
                        e,
                        Expr::Binary { op: BinaryOp::Or, .. } | Expr::Binary { op: BinaryOp::And, .. }
                    ) && op.is_comparison()
                };
                let fmt_side = |e: &Expr| {
                    if needs_paren(e) {
                        format!("({e})")
                    } else {
                        format!("{e}")
                    }
                };
                write!(f, "{} {} {}", fmt_side(left), op.symbol(), fmt_side(right))
            }
            Expr::Function { name, args, distinct, star } => {
                if *star {
                    return write!(f, "{name}(*)");
                }
                write!(
                    f,
                    "{name}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    args.iter().map(|a| a.to_string()).collect::<Vec<_>>().join(", ")
                )
            }
            Expr::Case { operand, branches, else_expr } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (cond, result) in branches {
                    write!(f, " WHEN {cond} THEN {result}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::InList { expr, list, negated } => write!(
                f,
                "{expr} {}IN ({})",
                if *negated { "NOT " } else { "" },
                list.iter().map(|e| e.to_string()).collect::<Vec<_>>().join(", ")
            ),
            Expr::InSubquery { expr, query, negated } => {
                write!(f, "{expr} {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "{expr} {}LIKE {pattern}", if *negated { "NOT " } else { "" })
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Cast { expr, type_name } => write!(f, "CAST({expr} AS {type_name})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_simple_select() {
        let q = Query::plain(Select {
            distinct: true,
            projection: vec![SelectItem::Expr { expr: Expr::col("name"), alias: None }],
            from: Some(FromClause {
                base: TableFactor::Table { name: "users".into(), alias: None },
                joins: vec![],
            }),
            selection: Some(Expr::binary(Expr::col("age"), BinaryOp::Gt, Expr::lit(18))),
            group_by: vec![],
            having: None,
        });
        assert_eq!(q.to_string(), "SELECT DISTINCT name FROM users WHERE age > 18");
    }

    #[test]
    fn render_count_star_and_group() {
        let q = Query {
            body: SetExpr::Select(Box::new(Select {
                distinct: false,
                projection: vec![
                    SelectItem::Expr { expr: Expr::col("dept"), alias: None },
                    SelectItem::Expr { expr: Expr::count_star(), alias: Some("n".into()) },
                ],
                from: Some(FromClause {
                    base: TableFactor::Table { name: "emp".into(), alias: None },
                    joins: vec![],
                }),
                selection: None,
                group_by: vec![Expr::col("dept")],
                having: None,
            })),
            order_by: vec![OrderItem { expr: Expr::count_star(), desc: true }],
            limit: Some(Expr::lit(1)),
            offset: None,
        };
        assert_eq!(
            q.to_string(),
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY COUNT(*) DESC LIMIT 1"
        );
    }

    #[test]
    fn identifiers_quote_when_needed() {
        assert_eq!(ident("plain_name"), "plain_name");
        assert_eq!(ident("has space"), "\"has space\"");
        assert_eq!(ident("select"), "\"select\"");
        assert_eq!(ident("1st"), "\"1st\"");
    }

    #[test]
    fn aggregate_detection() {
        assert!(Expr::count_star().contains_aggregate());
        assert!(Expr::binary(Expr::func("SUM", vec![Expr::col("x")]), BinaryOp::Gt, Expr::lit(3))
            .contains_aggregate());
        assert!(!Expr::func("LENGTH", vec![Expr::col("x")]).contains_aggregate());
    }

    #[test]
    fn render_text_literal_escapes() {
        let e = Expr::lit("O'Brien");
        assert_eq!(e.to_string(), "'O''Brien'");
    }
}
