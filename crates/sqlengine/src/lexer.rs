//! SQL tokenizer.

use crate::error::{Error, Result};

/// A lexical token. Keywords are recognized case-insensitively but the
/// original spelling of identifiers is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword, normalized to upper case (`SELECT`, `FROM`, ...).
    Keyword(String),
    /// Bare or quoted identifier.
    Ident(String),
    /// String literal with quotes stripped and escapes resolved.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Operator or punctuation (`=`, `<=`, `(`, `,`, `*`, ...).
    Symbol(&'static str),
    /// End of input sentinel.
    Eof,
}

impl Token {
    /// Human-readable description used in parse-error messages.
    pub fn describe(&self) -> String {
        match self {
            Token::Keyword(k) => format!("keyword {k}"),
            Token::Ident(i) => format!("identifier {i}"),
            Token::StringLit(s) => format!("string '{s}'"),
            Token::IntLit(i) => format!("integer {i}"),
            Token::FloatLit(f) => format!("float {f}"),
            Token::Symbol(s) => format!("'{s}'"),
            Token::Eof => "end of input".to_string(),
        }
    }
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "AS",
    "AND", "OR", "NOT", "IN", "LIKE", "BETWEEN", "IS", "NULL", "DISTINCT", "JOIN", "INNER",
    "LEFT", "RIGHT", "OUTER", "CROSS", "ON", "ASC", "DESC", "UNION", "INTERSECT", "EXCEPT",
    "ALL", "EXISTS", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "CREATE", "TABLE",
    "PRIMARY", "KEY", "FOREIGN", "REFERENCES", "INSERT", "INTO", "VALUES", "COMMENT",
    "UNIQUE", "DEFAULT", "GLOB",
];

fn keyword(word: &str) -> Option<String> {
    let up = word.to_ascii_uppercase();
    if KEYWORDS.contains(&up.as_str()) {
        Some(up)
    } else {
        None
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0usize;
    let n = chars.len();
    while i < n {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if i + 1 < n && chars[i + 1] == '-' => {
                // line comment
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && chars[i + 1] == '*' => {
                i += 2;
                while i + 1 < n && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= n {
                    return Err(Error::Lex("unterminated block comment".into()));
                }
                i += 2;
            }
            '\'' => {
                let (s, next) = read_quoted(&chars, i, '\'')?;
                tokens.push(Token::StringLit(s));
                i = next;
            }
            '"' => {
                let (s, next) = read_quoted(&chars, i, '"')?;
                tokens.push(Token::Ident(s));
                i = next;
            }
            '`' => {
                let (s, next) = read_quoted(&chars, i, '`')?;
                tokens.push(Token::Ident(s));
                i = next;
            }
            '[' => {
                // MSSQL-style bracketed identifier; also appears in Spider.
                let mut j = i + 1;
                let mut s = String::new();
                while j < n && chars[j] != ']' {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= n {
                    return Err(Error::Lex("unterminated [identifier]".into()));
                }
                tokens.push(Token::Ident(s));
                i = j + 1;
            }
            '0'..='9' => {
                let (tok, next) = read_number(&chars, i)?;
                tokens.push(tok);
                i = next;
            }
            '.' if i + 1 < n && chars[i + 1].is_ascii_digit() => {
                let (tok, next) = read_number(&chars, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let word: String = chars[i..j].iter().collect();
                match keyword(&word) {
                    Some(k) => tokens.push(Token::Keyword(k)),
                    None => tokens.push(Token::Ident(word)),
                }
                i = j;
            }
            _ => {
                let (sym, len) = read_symbol(&chars, i)?;
                tokens.push(Token::Symbol(sym));
                i += len;
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

fn read_quoted(chars: &[char], start: usize, quote: char) -> Result<(String, usize)> {
    let mut s = String::new();
    let mut i = start + 1;
    let n = chars.len();
    while i < n {
        if chars[i] == quote {
            // doubled quote = escaped quote
            if i + 1 < n && chars[i + 1] == quote {
                s.push(quote);
                i += 2;
                continue;
            }
            return Ok((s, i + 1));
        }
        s.push(chars[i]);
        i += 1;
    }
    Err(Error::Lex(format!("unterminated {quote}-quoted token")))
}

fn read_number(chars: &[char], start: usize) -> Result<(Token, usize)> {
    let n = chars.len();
    let mut i = start;
    let mut is_float = false;
    while i < n {
        match chars[i] {
            '0'..='9' => i += 1,
            '.' if !is_float => {
                is_float = true;
                i += 1;
            }
            'e' | 'E' if i > start => {
                is_float = true;
                i += 1;
                if i < n && (chars[i] == '+' || chars[i] == '-') {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text: String = chars[start..i].iter().collect();
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::FloatLit(f), i))
            .map_err(|_| Error::Lex(format!("bad float literal {text}")))
    } else {
        match text.parse::<i64>() {
            Ok(v) => Ok((Token::IntLit(v), i)),
            // Too large for i64 — degrade to float like SQLite.
            Err(_) => text
                .parse::<f64>()
                .map(|f| (Token::FloatLit(f), i))
                .map_err(|_| Error::Lex(format!("bad numeric literal {text}"))),
        }
    }
}

fn read_symbol(chars: &[char], i: usize) -> Result<(&'static str, usize)> {
    let n = chars.len();
    let two = if i + 1 < n {
        Some((chars[i], chars[i + 1]))
    } else {
        None
    };
    if let Some(pair) = two {
        let sym = match pair {
            ('<', '=') => Some("<="),
            ('>', '=') => Some(">="),
            ('<', '>') => Some("!="),
            ('!', '=') => Some("!="),
            ('|', '|') => Some("||"),
            _ => None,
        };
        if let Some(s) = sym {
            return Ok((s, 2));
        }
    }
    let sym = match chars[i] {
        '(' => "(",
        ')' => ")",
        ',' => ",",
        ';' => ";",
        '*' => "*",
        '+' => "+",
        '-' => "-",
        '/' => "/",
        '%' => "%",
        '=' => "=",
        '<' => "<",
        '>' => ">",
        '.' => ".",
        c => return Err(Error::Lex(format!("unexpected character '{c}'"))),
    };
    Ok((sym, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(sql: &str) -> Vec<Token> {
        tokenize(sql).unwrap()
    }

    #[test]
    fn keywords_and_identifiers() {
        let t = toks("SELECT name FROM users");
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Ident("name".into()));
        assert_eq!(t[2], Token::Keyword("FROM".into()));
        assert_eq!(t[3], Token::Ident("users".into()));
        assert_eq!(t[4], Token::Eof);
    }

    #[test]
    fn keywords_case_insensitive() {
        let t = toks("select * from T");
        assert_eq!(t[0], Token::Keyword("SELECT".into()));
        assert_eq!(t[1], Token::Symbol("*"));
    }

    #[test]
    fn string_literals_with_escapes() {
        let t = toks("'O''Brien'");
        assert_eq!(t[0], Token::StringLit("O'Brien".into()));
    }

    #[test]
    fn quoted_identifiers() {
        assert_eq!(toks("\"weird col\"")[0], Token::Ident("weird col".into()));
        assert_eq!(toks("`tick`")[0], Token::Ident("tick".into()));
        assert_eq!(toks("[bracket id]")[0], Token::Ident("bracket id".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42")[0], Token::IntLit(42));
        assert_eq!(toks("3.25")[0], Token::FloatLit(3.25));
        assert_eq!(toks("1e2")[0], Token::FloatLit(100.0));
        assert_eq!(toks(".5")[0], Token::FloatLit(0.5));
        // i64 overflow degrades to float
        assert!(matches!(toks("99999999999999999999")[0], Token::FloatLit(_)));
    }

    #[test]
    fn multi_char_operators() {
        let t = toks("a <= b <> c != d || e");
        let syms: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Token::Symbol(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<=", "!=", "!=", "||"]);
    }

    #[test]
    fn comments_skipped() {
        let t = toks("SELECT 1 -- trailing\n/* block */ + 2");
        assert_eq!(t.len(), 5); // SELECT 1 + 2 EOF
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("SELECT @x").is_err());
    }
}
