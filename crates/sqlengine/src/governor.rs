//! Execution governor: cooperative resource budgets for untrusted SQL.
//!
//! Generated SQL is adversarial by accident — beam search produces
//! unconstrained cross joins, deeply nested subqueries and pathological
//! `GROUP BY`s as a matter of course. The governor bounds what one
//! statement may consume, so a bad candidate costs a bounded slice of the
//! budget instead of wedging an evaluation run.
//!
//! Checks are *cooperative*: the executor calls into [`Governor`] at
//! operator boundaries (scan, join pair, group, projected row, query
//! nesting) and receives [`Error::BudgetExceeded`] once a limit trips.
//! Row/memory/depth accounting is exact and deterministic — the same
//! statement against the same data trips the same budget at the same
//! point on every run — while the wall-clock deadline is an amortized
//! backstop (checked every [`TIME_CHECK_MASK`]+1 ticks) for statements
//! that stay small but run hot.
//!
//! The module also hosts the two fault-tolerance primitives the rest of
//! the stack builds on: [`catch_panics`] (unwind isolation at a fault
//! boundary, converting panics into [`Error::Internal`]) and
//! [`with_retry`] (re-running transient failures under halved budgets).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::error::{Error, FailureClass, Resource, Result};

/// Deadline polls happen once per this many ticks (power of two minus one,
/// used as a mask). `Instant::now` is tens of nanoseconds; amortizing keeps
/// the per-row overhead of governed execution negligible.
const TIME_CHECK_MASK: u64 = 0xFF;

/// Counter family for budget denials, labeled by the resource that
/// tripped (`time` / `rows` / `intermediate_rows` / `memory` / `depth`).
pub const BUDGET_DENIED: &str = "codes_governor_budget_denied_total";

/// Count one budget denial into the process-global metrics registry and
/// build the error. Only the denial path pays for the registry lookup —
/// the within-budget hot path stays atomic-free.
fn deny(resource: Resource, spent: u64, limit: u64) -> Error {
    codes_obs::global().counter(BUDGET_DENIED, &[("resource", resource.label())]).inc();
    Error::BudgetExceeded { resource, spent, limit }
}

/// Resource budgets for one statement execution. `None` means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecLimits {
    /// Wall-clock budget for the whole statement.
    pub deadline: Option<Duration>,
    /// Maximum rows the statement may return.
    pub max_rows: Option<u64>,
    /// Maximum rows intermediate operators may materialize (join outputs,
    /// grouped rows, set-operation inputs), cumulative over the statement.
    pub max_intermediate_rows: Option<u64>,
    /// Approximate cap on bytes materialized by intermediate operators,
    /// cumulative over the statement (see [`crate::value::Value::approx_bytes`]).
    pub max_memory_bytes: Option<u64>,
    /// Maximum nested query depth (subqueries, derived tables, set operands).
    pub max_recursion_depth: Option<u32>,
}

impl ExecLimits {
    /// No limits: the pre-governor behaviour, used by trusted callers
    /// (schema scripts, gold-query sanity checks in tests).
    pub fn unlimited() -> ExecLimits {
        ExecLimits {
            deadline: None,
            max_rows: None,
            max_intermediate_rows: None,
            max_memory_bytes: None,
            max_recursion_depth: None,
        }
    }

    /// Budgets for evaluation runs. The deterministic limits (rows, memory,
    /// depth) are sized so that every realistic Spider/BIRD query passes
    /// while cross-join blowups trip quickly; the generous deadline is a
    /// backstop only, so budget-kills are decided by the deterministic
    /// limits and EX/TS/VES verdicts are reproducible across machines.
    pub fn evaluation() -> ExecLimits {
        ExecLimits {
            deadline: Some(Duration::from_secs(10)),
            max_rows: Some(1_000_000),
            max_intermediate_rows: Some(4_000_000),
            max_memory_bytes: Some(256 << 20),
            max_recursion_depth: Some(32),
        }
    }

    /// Tight budgets for interactive serving, where a wedged statement
    /// stalls a user-visible inference.
    pub fn serving() -> ExecLimits {
        ExecLimits {
            deadline: Some(Duration::from_secs(2)),
            max_rows: Some(100_000),
            max_intermediate_rows: Some(1_000_000),
            max_memory_bytes: Some(64 << 20),
            max_recursion_depth: Some(16),
        }
    }

    /// This budget with `deadline` replaced.
    pub fn with_deadline(mut self, deadline: Duration) -> ExecLimits {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with every finite limit halved (deadline included).
    /// [`with_retry`] uses it so a retried statement contends for half the
    /// resources of the attempt that failed: a statement that was *close*
    /// to finishing still fails fast instead of burning the full budget
    /// again, keeping total retry cost bounded by ~2x one attempt.
    pub fn halved(&self) -> ExecLimits {
        ExecLimits {
            deadline: self.deadline.map(|d| d / 2),
            max_rows: self.max_rows.map(|n| (n / 2).max(1)),
            max_intermediate_rows: self.max_intermediate_rows.map(|n| (n / 2).max(1)),
            max_memory_bytes: self.max_memory_bytes.map(|n| (n / 2).max(1)),
            max_recursion_depth: self.max_recursion_depth.map(|n| (n / 2).max(1)),
        }
    }

    /// True when no limit is set (governed execution degenerates to the
    /// ungoverned fast path).
    pub fn is_unlimited(&self) -> bool {
        *self == ExecLimits::unlimited()
    }
}

impl Default for ExecLimits {
    fn default() -> ExecLimits {
        ExecLimits::unlimited()
    }
}

/// Per-statement budget tracker the executor consults at operator
/// boundaries. One governor lives for one statement execution; counters
/// are cumulative, not high-water marks.
#[derive(Debug)]
pub struct Governor {
    limits: ExecLimits,
    started: Instant,
    ticks: u64,
    intermediate_rows: u64,
    memory_bytes: u64,
    depth: u32,
}

impl Governor {
    /// A fresh governor; the deadline clock starts now.
    pub fn new(limits: ExecLimits) -> Governor {
        Governor {
            limits,
            started: Instant::now(),
            ticks: 0,
            intermediate_rows: 0,
            memory_bytes: 0,
            depth: 0,
        }
    }

    /// The limits this governor enforces.
    pub fn limits(&self) -> &ExecLimits {
        &self.limits
    }

    /// Cheap per-unit-of-work check (one join pair probed, one row grouped,
    /// one row projected). Amortizes the deadline poll.
    #[inline]
    pub fn tick(&mut self) -> Result<()> {
        self.ticks += 1;
        if self.ticks & TIME_CHECK_MASK == 0 {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Unconditional deadline poll, for boundaries that are rare but may
    /// follow a long burst of un-ticked work (operator entry/exit).
    pub fn check_deadline(&self) -> Result<()> {
        if let Some(deadline) = self.limits.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(deny(
                    Resource::Time,
                    elapsed.as_millis() as u64,
                    deadline.as_millis() as u64,
                ));
            }
        }
        Ok(())
    }

    /// Charge `rows` materialized intermediate rows of ~`bytes` total size.
    /// Borrowed base-table scans charge rows with zero bytes (no copy
    /// happens); join outputs and derived tables charge both.
    pub fn charge_intermediate(&mut self, rows: u64, bytes: u64) -> Result<()> {
        self.intermediate_rows += rows;
        if let Some(limit) = self.limits.max_intermediate_rows {
            if self.intermediate_rows > limit {
                return Err(deny(Resource::IntermediateRows, self.intermediate_rows, limit));
            }
        }
        self.memory_bytes += bytes;
        if let Some(limit) = self.limits.max_memory_bytes {
            if self.memory_bytes > limit {
                return Err(deny(Resource::Memory, self.memory_bytes, limit));
            }
        }
        Ok(())
    }

    /// Check the statement's final row count (after LIMIT is applied, so a
    /// `SELECT ... LIMIT 5` over a big table is not penalized for the scan
    /// — the intermediate-row budget governs that).
    pub fn check_output_rows(&self, rows: u64) -> Result<()> {
        if let Some(limit) = self.limits.max_rows {
            if rows > limit {
                return Err(deny(Resource::Rows, rows, limit));
            }
        }
        Ok(())
    }

    /// Enter a nested query scope (subquery, derived table, set operand).
    /// Paired with [`Governor::exit_query`], which must run on error paths
    /// too (the executor wraps the body so the pair always balances).
    pub fn enter_query(&mut self) -> Result<()> {
        self.depth += 1;
        if let Some(limit) = self.limits.max_recursion_depth {
            if self.depth > limit {
                return Err(deny(Resource::Depth, self.depth as u64, limit as u64));
            }
        }
        // Subquery entry is rare relative to row work and a natural place
        // to notice a blown deadline early.
        self.check_deadline()
    }

    /// Leave a nested query scope.
    pub fn exit_query(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }
}

/// Run `f`, converting a panic into [`Error::Internal`] instead of
/// unwinding. This is the fault boundary used around beam-candidate
/// execution and per-sample evaluation: one defective statement must never
/// take down candidate selection or an evaluation run.
///
/// The closure's captures are treated as unwind-safe. Callers at the fault
/// boundaries uphold this by discarding state the failed call may have
/// half-mutated (the candidate's result, the sample's verdict) rather than
/// reading it after a failure.
pub fn catch_panics<T>(f: impl FnOnce() -> Result<T>) -> Result<T> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            Err(Error::Internal(format!("caught panic: {msg}")))
        }
    }
}

/// Run `f` under `limits`, retrying transient failures up to `retries`
/// extra attempts, each under halved budgets (see [`ExecLimits::halved`]).
/// Permanent failures return immediately — retrying a parse error or a
/// caught panic cannot change the outcome.
pub fn with_retry<T>(
    limits: &ExecLimits,
    retries: u32,
    f: impl FnMut(&ExecLimits) -> Result<T>,
) -> Result<T> {
    with_retry_paced(limits, retries, |_| {}, f)
}

/// [`with_retry`] with a pacing hook: before each retry, `pause` receives
/// the delay the caller's [`Backoff`] policy chose for that attempt (the
/// serving runtime sleeps; tests record). The hook runs only between
/// attempts — never before the first or after the last.
pub fn with_retry_paced<T>(
    limits: &ExecLimits,
    retries: u32,
    mut pause: impl FnMut(u32),
    mut f: impl FnMut(&ExecLimits) -> Result<T>,
) -> Result<T> {
    let mut budget = *limits;
    let mut attempt = 0;
    loop {
        match f(&budget) {
            Ok(v) => return Ok(v),
            Err(e) if e.class() == FailureClass::Transient && attempt < retries => {
                pause(attempt);
                attempt += 1;
                budget = budget.halved();
            }
            Err(e) => return Err(e),
        }
    }
}

/// Deterministic jittered exponential backoff policy.
///
/// `delay(attempt)` grows as `base * 2^attempt`, capped at `max`, then
/// spread by a multiplicative jitter drawn from
/// `[1 - jitter/2, 1 + jitter/2)`. The jitter stream is seeded, so the same
/// `(seed, attempt)` pair always yields the same delay — retry schedules
/// and circuit-breaker open windows are reproducible in tests while still
/// decorrelating real fleets started with different seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry (attempt 0).
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub max: Duration,
    /// Width of the multiplicative jitter band (0 = none, 0.5 = ±25%).
    pub jitter: f64,
    /// Seed of the deterministic jitter stream.
    pub seed: u64,
}

impl Backoff {
    /// A policy with ±25% jitter.
    pub fn new(base: Duration, max: Duration, seed: u64) -> Backoff {
        Backoff { base, max, jitter: 0.5, seed }
    }

    /// The delay to wait before retry number `attempt` (0-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .checked_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .unwrap_or(self.max)
            .min(self.max);
        if self.jitter <= 0.0 {
            return exp;
        }
        // SplitMix64 over (seed, attempt): cheap, stateless, deterministic.
        let mut z = self
            .seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let factor = 1.0 - self.jitter / 2.0 + unit * self.jitter;
        exp.mul_f64(factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_governor_never_trips() {
        let mut gov = Governor::new(ExecLimits::unlimited());
        for _ in 0..10_000 {
            gov.tick().unwrap();
        }
        gov.charge_intermediate(u64::MAX / 2, u64::MAX / 2).unwrap();
        gov.check_output_rows(u64::MAX).unwrap();
        for _ in 0..1000 {
            gov.enter_query().unwrap();
        }
    }

    #[test]
    fn intermediate_row_budget_trips_exactly() {
        let limits = ExecLimits { max_intermediate_rows: Some(10), ..ExecLimits::unlimited() };
        let mut gov = Governor::new(limits);
        gov.charge_intermediate(10, 0).unwrap();
        let err = gov.charge_intermediate(1, 0).unwrap_err();
        assert_eq!(
            err,
            Error::BudgetExceeded { resource: Resource::IntermediateRows, spent: 11, limit: 10 }
        );
    }

    #[test]
    fn memory_budget_trips() {
        let limits = ExecLimits { max_memory_bytes: Some(100), ..ExecLimits::unlimited() };
        let mut gov = Governor::new(limits);
        gov.charge_intermediate(1, 60).unwrap();
        let err = gov.charge_intermediate(1, 60).unwrap_err();
        assert!(matches!(err, Error::BudgetExceeded { resource: Resource::Memory, .. }));
    }

    #[test]
    fn depth_budget_trips_and_exit_rebalances() {
        let limits = ExecLimits { max_recursion_depth: Some(2), ..ExecLimits::unlimited() };
        let mut gov = Governor::new(limits);
        gov.enter_query().unwrap();
        gov.enter_query().unwrap();
        assert!(matches!(
            gov.enter_query().unwrap_err(),
            Error::BudgetExceeded { resource: Resource::Depth, .. }
        ));
        gov.exit_query();
        gov.exit_query();
        gov.enter_query().unwrap();
    }

    #[test]
    fn budget_denials_are_counted_by_resource() {
        // The registry is process-global and shared with parallel tests, so
        // assert on the delta produced by a known number of denials.
        let count = |resource: &str| {
            codes_obs::global().counter(BUDGET_DENIED, &[("resource", resource)]).get()
        };
        let rows_before = count("rows");
        let depth_before = count("depth");

        let limits = ExecLimits { max_rows: Some(5), ..ExecLimits::unlimited() };
        let gov = Governor::new(limits);
        assert!(gov.check_output_rows(6).is_err());
        assert!(gov.check_output_rows(7).is_err());
        assert!(gov.check_output_rows(5).is_ok(), "within budget must not count");

        let limits = ExecLimits { max_recursion_depth: Some(1), ..ExecLimits::unlimited() };
        let mut gov = Governor::new(limits);
        gov.enter_query().unwrap();
        assert!(gov.enter_query().is_err());

        assert_eq!(count("rows") - rows_before, 2);
        assert_eq!(count("depth") - depth_before, 1);
    }

    #[test]
    fn deadline_trips_via_ticks() {
        let limits = ExecLimits::unlimited().with_deadline(Duration::from_millis(0));
        let mut gov = Governor::new(limits);
        std::thread::sleep(Duration::from_millis(2));
        let mut tripped = false;
        for _ in 0..=TIME_CHECK_MASK {
            if gov.tick().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "deadline not noticed within one amortization window");
    }

    #[test]
    fn halved_shrinks_every_budget() {
        let halved = ExecLimits::evaluation().halved();
        let full = ExecLimits::evaluation();
        assert_eq!(halved.deadline.unwrap(), full.deadline.unwrap() / 2);
        assert_eq!(halved.max_rows.unwrap(), full.max_rows.unwrap() / 2);
        assert_eq!(halved.max_recursion_depth.unwrap(), full.max_recursion_depth.unwrap() / 2);
        // Halving never reaches zero (a zero budget would reject everything).
        let tiny = ExecLimits {
            max_rows: Some(1),
            ..ExecLimits::unlimited()
        };
        assert_eq!(tiny.halved().max_rows, Some(1));
    }

    #[test]
    fn catch_panics_converts_to_internal() {
        let err = catch_panics::<()>(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(err.kind(), "internal");
        assert!(err.to_string().contains("boom 42"), "{err}");
        assert!(!err.is_transient());
        assert_eq!(catch_panics(|| Ok(7)).unwrap(), 7);
    }

    #[test]
    fn with_retry_halves_budget_on_transient_failures() {
        let mut seen = Vec::new();
        let result = with_retry(&ExecLimits::evaluation(), 2, |limits| {
            seen.push(limits.max_rows);
            if seen.len() < 3 {
                Err(Error::BudgetExceeded { resource: Resource::Time, spent: 1, limit: 0 })
            } else {
                Ok("done")
            }
        });
        assert_eq!(result.unwrap(), "done");
        let full = ExecLimits::evaluation().max_rows.unwrap();
        assert_eq!(seen, vec![Some(full), Some(full / 2), Some(full / 4)]);
    }

    #[test]
    fn with_retry_stops_on_permanent_failures() {
        let mut attempts = 0;
        let result: Result<()> = with_retry(&ExecLimits::evaluation(), 3, |_| {
            attempts += 1;
            Err(Error::Parse("bad".into()))
        });
        assert_eq!(result.unwrap_err().kind(), "parse");
        assert_eq!(attempts, 1);
    }

    #[test]
    fn backoff_grows_within_jitter_bounds_and_caps() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 0xFEED);
        for attempt in 0..12u32 {
            let nominal = Duration::from_millis(10 * (1u64 << attempt.min(10)))
                .min(Duration::from_secs(1));
            let d = b.delay(attempt);
            assert!(d >= nominal.mul_f64(0.75), "attempt {attempt}: {d:?} < 75% of {nominal:?}");
            assert!(d <= nominal.mul_f64(1.25), "attempt {attempt}: {d:?} > 125% of {nominal:?}");
        }
        // Deterministic: same (seed, attempt) → same delay.
        assert_eq!(b.delay(3), b.delay(3));
        // Different seeds decorrelate.
        let other = Backoff::new(Duration::from_millis(10), Duration::from_secs(1), 0xBEEF);
        assert_ne!(b.delay(3), other.delay(3));
        // No jitter → exact exponential.
        let flat = Backoff { jitter: 0.0, ..b };
        assert_eq!(flat.delay(2), Duration::from_millis(40));
    }

    #[test]
    fn with_retry_paced_pauses_between_attempts_only() {
        let mut paused = Vec::new();
        let mut attempts = 0;
        let result: Result<()> =
            with_retry_paced(&ExecLimits::evaluation(), 2, |a| paused.push(a), |_| {
                attempts += 1;
                Err(Error::BudgetExceeded { resource: Resource::Time, spent: 2, limit: 1 })
            });
        assert!(result.is_err());
        assert_eq!(attempts, 3);
        assert_eq!(paused, vec![0, 1], "no pause before the first or after the last attempt");
    }

    #[test]
    fn with_retry_exhausts_attempts() {
        let mut attempts = 0;
        let result: Result<()> = with_retry(&ExecLimits::evaluation(), 2, |_| {
            attempts += 1;
            Err(Error::BudgetExceeded { resource: Resource::Memory, spent: 9, limit: 8 })
        });
        assert!(result.unwrap_err().is_transient());
        assert_eq!(attempts, 3); // initial + 2 retries
    }
}
