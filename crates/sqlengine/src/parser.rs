//! Recursive-descent parser producing the AST of [`crate::ast`].

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token};
use crate::value::Value;

/// Parse a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a query (SELECT-only entry point used by the text-to-SQL pipeline).
pub fn parse_query(sql: &str) -> Result<Query> {
    match parse_statement(sql)? {
        Statement::Query(q) => Ok(q),
        other => Err(Error::Parse(format!("expected a SELECT query, got {other:?}"))),
    }
}

/// Parse a semicolon-separated script into statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat_symbol(";") {}
        if p.at_end() {
            break;
        }
        stmts.push(p.statement()?);
        if !p.eat_symbol(";") && !p.at_end() {
            return Err(p.unexpected("';' or end of script"));
        }
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0 })
    }

    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn peek_at(&self, offset: usize) -> &Token {
        self.tokens.get(self.pos + offset).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn unexpected(&self, expected: &str) -> Error {
        Error::Parse(format!("expected {expected}, found {}", self.peek().describe()))
    }

    fn expect_end(&mut self) -> Result<()> {
        self.eat_symbol(";");
        if self.at_end() {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Keyword(k) if k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Symbol(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{sym}'")))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s),
            // Allow a handful of non-reserved keywords as identifiers.
            Token::Keyword(k) if matches!(k.as_str(), "KEY" | "COMMENT" | "VALUES" | "LEFT" | "RIGHT") => Ok(k),
            other => Err(Error::Parse(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("CREATE") {
            self.create_table().map(Statement::CreateTable)
        } else if self.peek_keyword("INSERT") {
            self.insert().map(Statement::Insert)
        } else if self.peek_keyword("SELECT") || matches!(self.peek(), Token::Symbol("(")) {
            self.query().map(Statement::Query)
        } else {
            Err(self.unexpected("CREATE, INSERT or SELECT"))
        }
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        self.expect_keyword("CREATE")?;
        self.expect_keyword("TABLE")?;
        let name = self.expect_ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        let mut foreign_keys = Vec::new();
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                self.expect_symbol("(")?;
                loop {
                    primary_key.push(self.expect_ident()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
            } else if self.eat_keyword("FOREIGN") {
                self.expect_keyword("KEY")?;
                self.expect_symbol("(")?;
                let column = self.expect_ident()?;
                self.expect_symbol(")")?;
                self.expect_keyword("REFERENCES")?;
                let ref_table = self.expect_ident()?;
                self.expect_symbol("(")?;
                let ref_column = self.expect_ident()?;
                self.expect_symbol(")")?;
                foreign_keys.push(ForeignKeyDef { column, ref_table, ref_column });
            } else if self.eat_keyword("UNIQUE") {
                // Table-level UNIQUE constraint: parsed and ignored.
                self.expect_symbol("(")?;
                loop {
                    self.expect_ident()?;
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
            } else {
                columns.push(self.column_def(&mut foreign_keys)?);
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(")")?;
        Ok(CreateTable { name, columns, primary_key, foreign_keys })
    }

    fn column_def(&mut self, fks: &mut Vec<ForeignKeyDef>) -> Result<ColumnDef> {
        let name = self.expect_ident()?;
        let mut type_name = self.expect_ident()?;
        // Multi-word type names ("double precision") and parameterized
        // types ("varchar(255)").
        if matches!(self.peek(), Token::Ident(w) if w.eq_ignore_ascii_case("precision")) {
            let w = self.expect_ident()?;
            type_name.push(' ');
            type_name.push_str(&w);
        }
        if self.eat_symbol("(") {
            type_name.push('(');
            loop {
                match self.advance() {
                    Token::IntLit(i) => type_name.push_str(&i.to_string()),
                    other => return Err(Error::Parse(format!("bad type parameter: {}", other.describe()))),
                }
                if self.eat_symbol(",") {
                    type_name.push(',');
                } else {
                    break;
                }
            }
            self.expect_symbol(")")?;
            type_name.push(')');
        }
        let mut def = ColumnDef {
            name,
            type_name,
            primary_key: false,
            not_null: false,
            comment: None,
        };
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                def.primary_key = true;
                def.not_null = true;
            } else if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
                def.not_null = true;
            } else if self.eat_keyword("UNIQUE") {
                // ignored
            } else if self.eat_keyword("DEFAULT") {
                // Consume a signed literal default and ignore it.
                self.eat_symbol("-");
                self.advance();
            } else if self.eat_keyword("COMMENT") {
                match self.advance() {
                    Token::StringLit(s) => def.comment = Some(s),
                    other => return Err(Error::Parse(format!("COMMENT expects a string, found {}", other.describe()))),
                }
            } else if self.eat_keyword("REFERENCES") {
                let ref_table = self.expect_ident()?;
                self.expect_symbol("(")?;
                let ref_column = self.expect_ident()?;
                self.expect_symbol(")")?;
                fks.push(ForeignKeyDef { column: def.name.clone(), ref_table, ref_column });
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn insert(&mut self) -> Result<Insert> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.expect_ident()?;
        let columns = if self.eat_symbol("(") {
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Insert { table, columns, rows })
    }

    // -- queries ------------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_keyword("LIMIT") {
            limit = Some(self.expr()?);
            if self.eat_keyword("OFFSET") {
                offset = Some(self.expr()?);
            } else if self.eat_symbol(",") {
                // `LIMIT offset, count` MySQL form.
                offset = limit.take();
                limit = Some(self.expr()?);
            }
        }
        Ok(Query { body, order_by, limit, offset })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_term()?;
        loop {
            let op = if self.eat_keyword("UNION") {
                SetOpKind::Union
            } else if self.eat_keyword("INTERSECT") {
                SetOpKind::Intersect
            } else if self.eat_keyword("EXCEPT") {
                SetOpKind::Except
            } else {
                break;
            };
            let all = self.eat_keyword("ALL");
            let right = self.set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn set_term(&mut self) -> Result<SetExpr> {
        if self.eat_symbol("(") {
            let q = self.query()?;
            self.expect_symbol(")")?;
            return Ok(SetExpr::Nested(Box::new(q)));
        }
        self.select_core().map(|s| SetExpr::Select(Box::new(s)))
    }

    fn select_core(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = if self.eat_keyword("DISTINCT") {
            true
        } else {
            self.eat_keyword("ALL");
            false
        };
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        let from = if self.eat_keyword("FROM") {
            Some(self.parse_from()?)
        } else {
            None
        };
        let selection = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select { distinct, projection, from, selection, group_by, having })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // `table.*`
        if let (Token::Ident(t), Token::Symbol("."), Token::Symbol("*")) =
            (self.peek().clone(), self.peek_at(1).clone(), self.peek_at(2).clone())
        {
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(t));
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(name) = self.peek() {
            let name = name.clone();
            self.pos += 1;
            Some(name)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_from(&mut self) -> Result<FromClause> {
        let base = self.table_factor()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.eat_symbol(",") {
                JoinKind::Cross
            } else if self.eat_keyword("CROSS") {
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let factor = self.table_factor()?;
            let on = if self.eat_keyword("ON") {
                Some(self.expr()?)
            } else {
                None
            };
            joins.push(Join { kind, factor, on });
        }
        Ok(FromClause { base, joins })
    }

    fn table_factor(&mut self) -> Result<TableFactor> {
        if self.eat_symbol("(") {
            let q = self.query()?;
            self.expect_symbol(")")?;
            self.eat_keyword("AS");
            let alias = self.expect_ident()?;
            return Ok(TableFactor::Derived { subquery: Box::new(q), alias });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(a) = self.peek() {
            let a = a.clone();
            self.pos += 1;
            Some(a)
        } else {
            None
        };
        Ok(TableFactor::Table { name, alias })
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            // `NOT EXISTS (...)` folds into the Exists node.
            if self.peek_keyword("EXISTS") {
                let e = self.predicate()?;
                if let Expr::Exists { query, negated } = e {
                    return Ok(Expr::Exists { query, negated: !negated });
                }
                unreachable!("EXISTS predicate expected");
            }
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        if self.eat_keyword("EXISTS") {
            self.expect_symbol("(")?;
            let q = self.query()?;
            self.expect_symbol(")")?;
            return Ok(Expr::Exists { query: Box::new(q), negated: false });
        }
        let left = self.concat_expr()?;
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            if self.peek_keyword("SELECT") {
                let q = self.query()?;
                self.expect_symbol(")")?;
                return Ok(Expr::InSubquery { expr: Box::new(left), query: Box::new(q), negated });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.concat_expr()?;
            self.expect_keyword("AND")?;
            let high = self.concat_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") || self.eat_keyword("GLOB") {
            let pattern = self.concat_expr()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        if negated {
            return Err(self.unexpected("IN, BETWEEN or LIKE after NOT"));
        }
        let op = match self.peek() {
            Token::Symbol("=") => Some(BinaryOp::Eq),
            Token::Symbol("!=") => Some(BinaryOp::NotEq),
            Token::Symbol("<") => Some(BinaryOp::Lt),
            Token::Symbol("<=") => Some(BinaryOp::LtEq),
            Token::Symbol(">") => Some(BinaryOp::Gt),
            Token::Symbol(">=") => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.concat_expr()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn concat_expr(&mut self) -> Result<Expr> {
        let mut left = self.additive()?;
        while self.eat_symbol("||") {
            let right = self.additive()?;
            left = Expr::binary(left, BinaryOp::Concat, right);
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("+") => BinaryOp::Add,
                Token::Symbol("-") => BinaryOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol("*") => BinaryOp::Mul,
                Token::Symbol("/") => BinaryOp::Div,
                Token::Symbol("%") => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            // Fold negation into numeric literals.
            return Ok(match inner {
                Expr::Literal(Value::Integer(i)) => Expr::Literal(Value::Integer(-i)),
                Expr::Literal(Value::Real(r)) => Expr::Literal(Value::Real(-r)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_symbol("+") {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::IntLit(i) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Integer(i)))
            }
            Token::FloatLit(f) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Real(f)))
            }
            Token::StringLit(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::Keyword(k) if k == "NULL" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Token::Keyword(k) if k == "CAST" => {
                self.pos += 1;
                self.expect_symbol("(")?;
                let expr = self.expr()?;
                self.expect_keyword("AS")?;
                let mut type_name = self.expect_ident()?;
                if self.eat_symbol("(") {
                    type_name.push('(');
                    while !self.eat_symbol(")") {
                        match self.advance() {
                            Token::IntLit(i) => type_name.push_str(&i.to_string()),
                            Token::Symbol(",") => type_name.push(','),
                            other => {
                                return Err(Error::Parse(format!(
                                    "bad CAST type parameter: {}",
                                    other.describe()
                                )))
                            }
                        }
                    }
                    type_name.push(')');
                }
                self.expect_symbol(")")?;
                Ok(Expr::Cast { expr: Box::new(expr), type_name })
            }
            Token::Keyword(k) if k == "CASE" => {
                self.pos += 1;
                let operand = if !self.peek_keyword("WHEN") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                let mut branches = Vec::new();
                while self.eat_keyword("WHEN") {
                    let cond = self.expr()?;
                    self.expect_keyword("THEN")?;
                    let result = self.expr()?;
                    branches.push((cond, result));
                }
                if branches.is_empty() {
                    return Err(self.unexpected("WHEN"));
                }
                let else_expr = if self.eat_keyword("ELSE") {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect_keyword("END")?;
                Ok(Expr::Case { operand, branches, else_expr })
            }
            Token::Symbol("(") => {
                self.pos += 1;
                if self.peek_keyword("SELECT") {
                    let q = self.query()?;
                    self.expect_symbol(")")?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Token::Ident(name) => {
                // Function call?
                if matches!(self.peek_at(1), Token::Symbol("(")) {
                    self.pos += 2;
                    let fname = name.to_uppercase();
                    if self.eat_symbol("*") {
                        self.expect_symbol(")")?;
                        return Ok(Expr::Function { name: fname, args: vec![], distinct: false, star: true });
                    }
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if !self.eat_symbol(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_symbol(",") {
                                break;
                            }
                        }
                        self.expect_symbol(")")?;
                    }
                    return Ok(Expr::Function { name: fname, args, distinct, star: false });
                }
                // Qualified or bare column.
                self.pos += 1;
                if self.eat_symbol(".") {
                    let col = self.expect_ident()?;
                    Ok(Expr::Column { table: Some(name), name: col })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            other => Err(Error::Parse(format!("unexpected {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        parse_query(sql).unwrap()
    }

    fn roundtrip(sql: &str) {
        let first = q(sql);
        let rendered = first.to_string();
        let second = parse_query(&rendered).unwrap_or_else(|e| panic!("re-parse of `{rendered}` failed: {e}"));
        assert_eq!(first, second, "round-trip mismatch for {sql}");
    }

    #[test]
    fn simple_select() {
        let query = q("SELECT name, age FROM users WHERE age >= 21");
        let sel = query.leftmost_select();
        assert_eq!(sel.projection.len(), 2);
        assert!(sel.selection.is_some());
    }

    #[test]
    fn join_with_aliases() {
        let query = q("SELECT T1.name FROM users AS T1 JOIN orders T2 ON T1.id = T2.user_id");
        let sel = query.leftmost_select();
        let from = sel.from.as_ref().unwrap();
        assert_eq!(from.base.binding_name(), "T1");
        assert_eq!(from.joins.len(), 1);
        assert!(from.joins[0].on.is_some());
    }

    #[test]
    fn group_having_order_limit() {
        let query = q(
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 3",
        );
        let sel = query.leftmost_select();
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(query.order_by.len(), 1);
        assert!(query.order_by[0].desc);
        assert_eq!(query.limit, Some(Expr::lit(3)));
    }

    #[test]
    fn set_operations_chain_left_assoc() {
        let query = q("SELECT a FROM t UNION SELECT b FROM u INTERSECT SELECT c FROM v");
        match &query.body {
            SetExpr::SetOp { op, left, .. } => {
                assert_eq!(*op, SetOpKind::Intersect);
                assert!(matches!(**left, SetExpr::SetOp { op: SetOpKind::Union, .. }));
            }
            other => panic!("expected set op, got {other:?}"),
        }
    }

    #[test]
    fn nested_ordered_term() {
        let query = q("(SELECT a FROM t ORDER BY a LIMIT 1) UNION SELECT b FROM u");
        assert!(matches!(
            &query.body,
            SetExpr::SetOp { left, .. } if matches!(**left, SetExpr::Nested(_))
        ));
    }

    #[test]
    fn subqueries() {
        let query = q("SELECT name FROM t WHERE id IN (SELECT tid FROM u WHERE x = 1)");
        let sel = query.leftmost_select();
        assert!(matches!(sel.selection, Some(Expr::InSubquery { .. })));
        let query = q("SELECT name FROM t WHERE sal > (SELECT AVG(sal) FROM t)");
        assert!(matches!(
            query.leftmost_select().selection,
            Some(Expr::Binary { .. })
        ));
        let query = q("SELECT 1 WHERE EXISTS (SELECT 1 FROM t)");
        assert!(matches!(query.leftmost_select().selection, Some(Expr::Exists { negated: false, .. })));
        let query = q("SELECT 1 WHERE NOT EXISTS (SELECT 1 FROM t)");
        assert!(matches!(query.leftmost_select().selection, Some(Expr::Exists { negated: true, .. })));
    }

    #[test]
    fn derived_table() {
        let query = q("SELECT s.n FROM (SELECT COUNT(*) AS n FROM t) AS s");
        let sel = query.leftmost_select();
        assert!(matches!(sel.from.as_ref().unwrap().base, TableFactor::Derived { .. }));
    }

    #[test]
    fn predicates() {
        assert!(matches!(
            q("SELECT 1 FROM t WHERE a BETWEEN 1 AND 5").leftmost_select().selection,
            Some(Expr::Between { negated: false, .. })
        ));
        assert!(matches!(
            q("SELECT 1 FROM t WHERE a NOT LIKE '%x%'").leftmost_select().selection,
            Some(Expr::Like { negated: true, .. })
        ));
        assert!(matches!(
            q("SELECT 1 FROM t WHERE a IS NOT NULL").leftmost_select().selection,
            Some(Expr::IsNull { negated: true, .. })
        ));
        assert!(matches!(
            q("SELECT 1 FROM t WHERE a IN (1, 2, 3)").leftmost_select().selection,
            Some(Expr::InList { .. })
        ));
    }

    #[test]
    fn operator_precedence() {
        // a = 1 OR b = 2 AND c = 3  parses as  a = 1 OR (b = 2 AND c = 3)
        let query = q("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match query.leftmost_select().selection.as_ref().unwrap() {
            Expr::Binary { op: BinaryOp::Or, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::And, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
        // 1 + 2 * 3 parses multiplication first.
        let query = q("SELECT 1 + 2 * 3");
        match &query.leftmost_select().projection[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinaryOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinaryOp::Mul, .. }));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        let query = q("SELECT -5, -2.5");
        let items = &query.leftmost_select().projection;
        assert!(matches!(items[0], SelectItem::Expr { expr: Expr::Literal(Value::Integer(-5)), .. }));
        assert!(matches!(items[1], SelectItem::Expr { expr: Expr::Literal(Value::Real(r)), .. } if r == -2.5));
    }

    #[test]
    fn create_table_full() {
        let stmt = parse_statement(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name VARCHAR(30) NOT NULL COMMENT 'person name', \
             score REAL DEFAULT 0, dept_id INT REFERENCES dept(id), \
             FOREIGN KEY (name) REFERENCES people(name))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!() };
        assert_eq!(ct.columns.len(), 4);
        assert!(ct.columns[0].primary_key);
        assert_eq!(ct.columns[1].comment.as_deref(), Some("person name"));
        assert_eq!(ct.foreign_keys.len(), 2); // inline + table-level
    }

    #[test]
    fn insert_rows() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        let Statement::Insert(ins) = stmt else { panic!() };
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.columns.as_ref().unwrap().len(), 2);
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;").unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn roundtrips() {
        for sql in [
            "SELECT DISTINCT name FROM users WHERE age > 18",
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5",
            "SELECT T1.a FROM t AS T1 JOIN u AS T2 ON T1.id = T2.tid WHERE T2.x BETWEEN 1 AND 3",
            "SELECT a FROM t WHERE b IN (SELECT c FROM u) AND d IS NOT NULL",
            "SELECT a FROM t UNION SELECT b FROM u",
            "SELECT CAST(a AS REAL) FROM t WHERE name LIKE '%smith%'",
            "SELECT MAX(x), MIN(y) FROM t WHERE z = 'O''Brien'",
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
            "SELECT a FROM (SELECT a FROM t LIMIT 3) AS s ORDER BY a ASC",
            "SELECT COUNT(DISTINCT a) FROM t",
        ] {
            roundtrip(sql);
        }
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT FROM t").is_err());
        assert!(parse_query("SELECT a FROM").is_err());
        assert!(parse_query("SELECT a t WHERE").is_err());
        assert!(parse_statement("DELETE FROM t").is_err());
        assert!(parse_query("SELECT a FROM t WHERE a NOT > 3").is_err());
    }
}
