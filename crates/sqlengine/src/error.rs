//! Error types shared across the engine.

use std::fmt;

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// The resource whose budget was exhausted during governed execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock deadline.
    Time,
    /// Output rows of the statement.
    Rows,
    /// Rows materialized by intermediate operators (joins, groups, sorts).
    IntermediateRows,
    /// Approximate bytes materialized by intermediate operators.
    Memory,
    /// Nested query depth (subqueries, derived tables, set operands).
    Depth,
}

impl Resource {
    /// Lower-case label used in messages and failure buckets.
    pub fn label(&self) -> &'static str {
        match self {
            Resource::Time => "time",
            Resource::Rows => "rows",
            Resource::IntermediateRows => "intermediate_rows",
            Resource::Memory => "memory",
            Resource::Depth => "depth",
        }
    }
}

/// Whether a failure is worth retrying.
///
/// Transient failures come from resource budgets — the same statement can
/// succeed under a different budget (or on less loaded hardware). Permanent
/// failures are properties of the statement or schema and will recur on
/// every retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Retryable: a budget ran out before the statement finished.
    Transient,
    /// Not retryable: the statement itself is invalid or defective.
    Permanent,
}

/// All the ways a statement can fail, from tokenization to execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The raw SQL text could not be tokenized.
    Lex(String),
    /// The token stream did not form a valid statement.
    Parse(String),
    /// Name resolution failed (unknown table/column, ambiguous reference...).
    Bind(String),
    /// A schema operation was invalid (duplicate table, arity mismatch...).
    Catalog(String),
    /// A type error surfaced while evaluating an expression.
    Type(String),
    /// Runtime failure while executing a bound plan.
    Exec(String),
    /// The statement is valid SQL but uses a feature the engine does not support.
    Unsupported(String),
    /// A DML statement referenced a table that does not exist.
    UnknownTable(String),
    /// A resource budget ran out before the statement finished. `spent` is
    /// the observed consumption when the governor fired (for [`Resource::Time`],
    /// milliseconds elapsed vs. the deadline in milliseconds).
    BudgetExceeded {
        /// Which budget fired.
        resource: Resource,
        /// Consumption observed at the check.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The cost-based planner estimated the statement's intermediate-row
    /// footprint far beyond the governor budget and shed it before
    /// execution started. Transient like [`Error::BudgetExceeded`]: the
    /// same statement can run under a larger budget.
    CostShed {
        /// Estimated intermediate rows for the chosen plan.
        estimated_rows: u64,
        /// The governor's intermediate-row budget at pricing time.
        budget_rows: u64,
    },
    /// An engine invariant broke (including a caught panic from a fault
    /// boundary). Reported instead of unwinding through callers.
    Internal(String),
}

impl Error {
    /// Short machine-readable category, used by tests and the evaluation
    /// harness to bucket failures.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Lex(_) => "lex",
            Error::Parse(_) => "parse",
            Error::Bind(_) => "bind",
            Error::Catalog(_) => "catalog",
            Error::Type(_) => "type",
            Error::Exec(_) => "exec",
            Error::Unsupported(_) => "unsupported",
            Error::UnknownTable(_) => "unknown_table",
            Error::BudgetExceeded { .. } => "budget",
            Error::CostShed { .. } => "cost_shed",
            Error::Internal(_) => "internal",
        }
    }

    /// Whether this failure could succeed on retry (under a fresh budget).
    ///
    /// Only budget exhaustion is transient: parse/bind/type/catalog errors
    /// are properties of the statement, and [`Error::Internal`] marks a bug
    /// (retrying a panic with a smaller budget cannot help).
    pub fn class(&self) -> FailureClass {
        match self {
            Error::BudgetExceeded { .. } | Error::CostShed { .. } => FailureClass::Transient,
            _ => FailureClass::Permanent,
        }
    }

    /// Convenience for `class() == FailureClass::Transient`.
    pub fn is_transient(&self) -> bool {
        self.class() == FailureClass::Transient
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(m) => write!(f, "lex error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::UnknownTable(t) => write!(f, "unknown table: {t}"),
            Error::BudgetExceeded { resource, spent, limit } => {
                write!(f, "budget exceeded: {} ({spent} spent, limit {limit})", resource.label())
            }
            Error::CostShed { estimated_rows, budget_rows } => write!(
                f,
                "cost shed: plan estimated {estimated_rows} intermediate rows against a budget of {budget_rows}"
            ),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("expected FROM".into());
        assert_eq!(e.to_string(), "parse error: expected FROM");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Error::Lex(String::new()).kind(),
            Error::Parse(String::new()).kind(),
            Error::Bind(String::new()).kind(),
            Error::Catalog(String::new()).kind(),
            Error::Type(String::new()).kind(),
            Error::Exec(String::new()).kind(),
            Error::Unsupported(String::new()).kind(),
            Error::UnknownTable(String::new()).kind(),
            Error::BudgetExceeded { resource: Resource::Time, spent: 0, limit: 0 }.kind(),
            Error::CostShed { estimated_rows: 0, budget_rows: 0 }.kind(),
            Error::Internal(String::new()).kind(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }

    #[test]
    fn only_budget_failures_are_transient() {
        let budget = Error::BudgetExceeded { resource: Resource::Rows, spent: 11, limit: 10 };
        assert_eq!(budget.class(), FailureClass::Transient);
        assert!(budget.is_transient());
        assert!(budget.to_string().contains("rows"));
        let shed = Error::CostShed { estimated_rows: 1_000_000, budget_rows: 10_000 };
        assert_eq!(shed.class(), FailureClass::Transient);
        assert!(shed.is_transient());
        assert_eq!(shed.kind(), "cost_shed");
        for permanent in [
            Error::Parse("p".into()),
            Error::Bind("b".into()),
            Error::UnknownTable("t".into()),
            Error::Internal("panic".into()),
        ] {
            assert_eq!(permanent.class(), FailureClass::Permanent, "{permanent}");
        }
    }
}
