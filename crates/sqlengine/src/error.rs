//! Error types shared across the engine.

use std::fmt;

/// Convenient result alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;

/// All the ways a statement can fail, from tokenization to execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The raw SQL text could not be tokenized.
    Lex(String),
    /// The token stream did not form a valid statement.
    Parse(String),
    /// Name resolution failed (unknown table/column, ambiguous reference...).
    Bind(String),
    /// A schema operation was invalid (duplicate table, arity mismatch...).
    Catalog(String),
    /// A type error surfaced while evaluating an expression.
    Type(String),
    /// Runtime failure while executing a bound plan.
    Exec(String),
    /// The statement is valid SQL but uses a feature the engine does not support.
    Unsupported(String),
}

impl Error {
    /// Short machine-readable category, used by tests and the evaluation
    /// harness to bucket failures.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Lex(_) => "lex",
            Error::Parse(_) => "parse",
            Error::Bind(_) => "bind",
            Error::Catalog(_) => "catalog",
            Error::Type(_) => "type",
            Error::Exec(_) => "exec",
            Error::Unsupported(_) => "unsupported",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(m) => write!(f, "lex error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Exec(m) => write!(f, "execution error: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = Error::Parse("expected FROM".into());
        assert_eq!(e.to_string(), "parse error: expected FROM");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Error::Lex(String::new()).kind(),
            Error::Parse(String::new()).kind(),
            Error::Bind(String::new()).kind(),
            Error::Catalog(String::new()).kind(),
            Error::Type(String::new()).kind(),
            Error::Exec(String::new()).kind(),
            Error::Unsupported(String::new()).kind(),
        ];
        let unique: std::collections::HashSet<_> = kinds.iter().collect();
        assert_eq!(unique.len(), kinds.len());
    }
}
