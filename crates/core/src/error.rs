//! The unified error surface of the CodeS stack.
//!
//! The engine ([`sqlengine::Error`]) classifies failures as transient vs
//! permanent; the serving runtime adds its own taxonomy (overload sheds,
//! breaker rejections, worker deaths). Callers used to match on both
//! crate-specific enums; [`Error`] bridges them behind two questions every
//! caller actually asks: *can a retry help?* ([`Error::is_transient`]) and
//! *was this load shedding rather than a real failure?*
//! ([`Error::is_overload`]). The serving crate converts its `ServeError`
//! into this type (`From<ServeError> for codes::Error` lives there); the
//! full mapping is documented in DESIGN.md §4g.

use std::fmt;
use std::time::Duration;

/// Why an inference request failed, across every layer of the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The engine/model pipeline itself failed (parse error, budget
    /// exhaustion after retries, caught panic, unknown table…).
    Engine(sqlengine::Error),
    /// Load shed at admission: the serving queue is full.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The target database's circuit breaker is open.
    CircuitOpen {
        /// Database whose breaker rejected the request.
        db_id: String,
        /// How long until the breaker will admit a probe.
        retry_after: Duration,
    },
    /// The request's deadline expired before it could run.
    DeadlineExceeded {
        /// Time spent queued.
        queued: Duration,
        /// The request's total time budget.
        budget: Duration,
    },
    /// The worker running the request panicked (and was replaced).
    WorkerPanic(String),
    /// The worker running the request stopped heartbeating (and was
    /// replaced).
    WorkerWedged {
        /// How long the worker had been silent when declared wedged.
        stalled: Duration,
    },
    /// The serving runtime is shutting down.
    ShuttingDown,
    /// The request addressed a database the serving runtime does not know
    /// (e.g. a cache invalidation routed to the wrong pool).
    UnknownDatabase {
        /// The database id nobody serves.
        db_id: String,
    },
    /// The storage layer failed before the request reached the engine:
    /// the backend refused or dropped a connection, introspection could
    /// not assemble a catalog, or the connection pool was exhausted.
    /// Engine/catalog failures surfaced *through* a connection arrive as
    /// [`Error::Engine`]/[`Error::UnknownDatabase`] instead (see
    /// `From<codes_storage::StorageError>`).
    Storage(codes_storage::StorageError),
}

impl Error {
    /// Short machine-readable category, stable across layers.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Engine(e) => e.kind(),
            Error::Overloaded { .. } => "overloaded",
            Error::CircuitOpen { .. } => "circuit_open",
            Error::DeadlineExceeded { .. } => "deadline",
            Error::WorkerPanic(_) => "worker_panic",
            Error::WorkerWedged { .. } => "worker_wedged",
            Error::ShuttingDown => "shutting_down",
            Error::UnknownDatabase { .. } => "unknown_database",
            Error::Storage(e) => e.kind(),
        }
    }

    /// True when retrying the same request later may succeed: every
    /// overload shed (the load will pass), engine budget exhaustion (the
    /// engine's own transient class), and worker deaths (a property of the
    /// worker, not the statement — the replacement may serve it fine).
    /// Permanent statement/schema failures and shutdown are not transient.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Engine(e) => e.is_transient(),
            Error::Overloaded { .. }
            | Error::CircuitOpen { .. }
            | Error::DeadlineExceeded { .. }
            | Error::WorkerPanic(_)
            | Error::WorkerWedged { .. } => true,
            Error::ShuttingDown | Error::UnknownDatabase { .. } => false,
            Error::Storage(e) => e.is_transient(),
        }
    }

    /// True when the request was never really attempted — it was shed by
    /// admission control to protect the service (queue full, breaker open,
    /// deadline already blown). Mirrors the serving runtime's load-shed
    /// classification.
    pub fn is_overload(&self) -> bool {
        matches!(
            self,
            Error::Overloaded { .. }
                | Error::CircuitOpen { .. }
                | Error::DeadlineExceeded { .. }
                // Pool exhaustion is load shedding at the storage layer:
                // every connection was busy for the whole checkout window.
                | Error::Storage(codes_storage::StorageError::Exhausted { .. })
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "inference failed: {e}"),
            Error::Overloaded { queue_depth, capacity } => {
                write!(f, "overloaded: admission queue full ({queue_depth}/{capacity})")
            }
            Error::CircuitOpen { db_id, retry_after } => {
                write!(f, "circuit open for '{db_id}': retry in {retry_after:?}")
            }
            Error::DeadlineExceeded { queued, budget } => {
                write!(f, "deadline exceeded while queued ({queued:?} of a {budget:?} budget)")
            }
            Error::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            Error::WorkerWedged { stalled } => {
                write!(f, "worker wedged (no heartbeat for {stalled:?})")
            }
            Error::ShuttingDown => write!(f, "pool shutting down"),
            Error::UnknownDatabase { db_id } => {
                write!(f, "unknown database '{db_id}': not served by this pool")
            }
            Error::Storage(e) => write!(f, "storage failed: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<sqlengine::Error> for Error {
    fn from(e: sqlengine::Error) -> Error {
        Error::Engine(e)
    }
}

/// Collapse storage failures into the stack's taxonomy. Failures that are
/// really *engine* or *addressing* failures surfaced through a connection
/// keep their established variants (and HTTP mappings); only the failure
/// modes storage introduces — refused connects, introspection faults, pool
/// exhaustion — ride the new [`Error::Storage`] variant.
impl From<codes_storage::StorageError> for Error {
    fn from(e: codes_storage::StorageError) -> Error {
        match e {
            codes_storage::StorageError::Engine(inner) => Error::Engine(inner),
            codes_storage::StorageError::UnknownDatabase(db_id) => {
                Error::UnknownDatabase { db_id }
            }
            codes_storage::StorageError::Closed => Error::ShuttingDown,
            other => Error::Storage(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_and_overload_classification() {
        let overloads = [
            Error::Overloaded { queue_depth: 8, capacity: 8 },
            Error::CircuitOpen { db_id: "bank".into(), retry_after: Duration::from_millis(10) },
            Error::DeadlineExceeded {
                queued: Duration::from_millis(120),
                budget: Duration::from_millis(100),
            },
        ];
        for e in &overloads {
            assert!(e.is_overload(), "{e}");
            assert!(e.is_transient(), "overload sheds pass: {e}");
        }
        // Worker deaths: transient (infrastructure fault) but not overload.
        let panic = Error::WorkerPanic("boom".into());
        assert!(panic.is_transient() && !panic.is_overload());
        // Engine taxonomy flows through unchanged.
        let budget = Error::Engine(sqlengine::Error::BudgetExceeded {
            resource: sqlengine::Resource::Time,
            spent: 1,
            limit: 1,
        });
        assert!(budget.is_transient() && !budget.is_overload());
        let parse = Error::Engine(sqlengine::Error::Parse("bad".into()));
        assert!(!parse.is_transient() && !parse.is_overload());
        assert!(!Error::ShuttingDown.is_transient());
        // A misaddressed database is a caller bug, not a passing storm.
        let unknown = Error::UnknownDatabase { db_id: "nowhere".into() };
        assert!(!unknown.is_transient() && !unknown.is_overload());
        assert_eq!(unknown.kind(), "unknown_database");
    }

    #[test]
    fn storage_errors_bridge_into_the_stack_taxonomy() {
        use codes_storage::StorageError;

        // Storage-native failure modes keep their own kinds on the new
        // variant; connects and exhaustion are retryable, and exhaustion
        // alone counts as load shedding.
        let connect = Error::from(StorageError::Connect("refused".into()));
        assert_eq!(connect.kind(), "storage_connect");
        assert!(connect.is_transient() && !connect.is_overload());
        let introspect = Error::from(StorageError::Introspect("no schema".into()));
        assert_eq!(introspect.kind(), "storage_introspect");
        let exhausted = Error::from(StorageError::Exhausted { capacity: 4, waited_ms: 100 });
        assert_eq!(exhausted.kind(), "storage_exhausted");
        assert!(exhausted.is_transient() && exhausted.is_overload());

        // Failures merely surfaced *through* storage collapse into the
        // established variants, so existing HTTP mappings keep working.
        let engine =
            Error::from(StorageError::Engine(sqlengine::Error::Parse("bad".into())));
        assert!(matches!(engine, Error::Engine(_)));
        let unknown = Error::from(StorageError::UnknownDatabase("nowhere".into()));
        assert!(matches!(unknown, Error::UnknownDatabase { ref db_id } if db_id == "nowhere"));
        assert!(matches!(Error::from(StorageError::Closed), Error::ShuttingDown));
    }
}
