//! The end-to-end text-to-SQL system: schema classifier + value indexes +
//! demonstration retriever + model, wired per Figure 3 (d)/(e).
//!
//! Inference degrades gracefully instead of failing: a missing classifier
//! means an unfiltered schema (noted, not fatal), a missing value index is
//! built lazily while the inference deadline allows it, and a nearly-blown
//! deadline shrinks the beam to greedy. Every degradation taken is recorded
//! on the [`Inference`] so callers can audit quality loss.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use codes_datasets::{Benchmark, Sample};
use codes_linker::{FilteredSchema, SchemaClassifier};
use codes_obs::{
    Span, StageTimings, STAGE_METADATA, STAGE_PROMPT_BUILD, STAGE_SCHEMA_FILTER,
    STAGE_VALUE_RETRIEVAL,
};
use codes_retrieval::{shared_value_index, DemoRetriever, DemoStrategy, ValueIndex, ValueMatch};
use parking_lot::RwLock;
use sqlengine::Database;

use crate::cache::{normalize_question, CacheHits, SystemCache};
use crate::config::Config;
use crate::model::{finetune, CodesModel, Generation, GenerationBatchItem};
use crate::prompt::{
    stage_assemble, stage_metadata, stage_schema_filter, stage_value_retrieval, DbPrompt,
    PromptOptions,
};
use crate::request::InferenceRequest;

/// Few-shot configuration.
#[derive(Debug, Clone, Copy)]
pub struct FewShot {
    /// Number of demonstrations per question.
    pub k: usize,
    /// Retrieval strategy (Eq. 4 / ablations).
    pub strategy: DemoStrategy,
}

/// A ready-to-serve text-to-SQL system.
pub struct CodesSystem {
    /// The generation model.
    pub model: CodesModel,
    /// Schema-item classifier powering the schema filter.
    pub classifier: Option<SchemaClassifier>,
    /// Prompt-construction options (incl. ablation switches).
    pub options: PromptOptions,
    /// Runtime robustness configuration (execution budgets, inference
    /// deadline, retry policy, lazy-index permission).
    pub config: Config,
    /// Pre-built BM25 value indexes keyed by database id (shared between
    /// systems — building them is the offline cost of §6.2). Behind a lock
    /// so `infer(&self)` can fill a missing index lazily.
    value_indexes: RwLock<HashMap<String, Arc<ValueIndex>>>,
    /// Demonstration pool + retriever (ICL mode).
    demo_pool: Arc<Vec<Sample>>,
    demo_retriever: Option<Arc<DemoRetriever>>,
    /// Few-shot configuration (None = SFT/zero-shot mode).
    pub few_shot: Option<FewShot>,
    /// Optional multi-tier cache: T1 (schema filter) and T2 (value
    /// retrieval) are consulted inside [`CodesSystem::infer`]; the serving
    /// pool holds the same `Arc` for T3 admission lookups.
    cache: Option<Arc<SystemCache>>,
}

/// One inference outcome.
#[derive(Debug, Clone)]
pub struct Inference {
    /// The chosen SQL.
    pub sql: String,
    /// Full generation output (beam with scores).
    pub generation: Generation,
    /// Wall-clock latency of the full online pipeline (prompt construction
    /// + generation), in seconds.
    pub latency_seconds: f64,
    /// Prompt length in whitespace tokens.
    pub prompt_tokens: usize,
    /// Graceful degradations taken during this inference (unfiltered
    /// schema, lazy/skipped value index, beam shrunk to greedy). Empty on
    /// a fully-resourced inference.
    pub degradations: Vec<String>,
    /// Wall-clock seconds per Algorithm-1 stage. The same durations feed
    /// the global `codes_stage_duration_seconds` histogram via spans.
    pub stages: StageTimings,
    /// Which stages were served from the system cache (always false when
    /// no cache is attached).
    pub cache_hits: CacheHits,
}

impl CodesSystem {
    /// A system with no classifier, indexes or demonstrations yet.
    pub fn new(model: CodesModel, options: PromptOptions) -> CodesSystem {
        CodesSystem {
            model,
            classifier: None,
            options,
            config: Config::default(),
            value_indexes: RwLock::new(HashMap::new()),
            demo_pool: Arc::new(Vec::new()),
            demo_retriever: None,
            few_shot: None,
            cache: None,
        }
    }

    /// Attach a trained schema-item classifier (enables the schema filter).
    pub fn with_classifier(mut self, clf: SchemaClassifier) -> CodesSystem {
        self.classifier = Some(clf);
        self
    }

    /// Attach a multi-tier cache. Shares the `Arc` with the serving pool so
    /// stage-level (T1/T2) and admission-level (T3) tiers agree on
    /// generations. A cache must not be shared between systems with
    /// different weights or classifiers — keys embed neither.
    pub fn with_cache(mut self, cache: Arc<SystemCache>) -> CodesSystem {
        self.cache = Some(cache);
        self
    }

    /// The attached cache, if any.
    pub fn cache(&self) -> Option<&Arc<SystemCache>> {
        self.cache.as_ref()
    }

    /// Replace the runtime robustness configuration.
    pub fn with_config(mut self, config: Config) -> CodesSystem {
        self.config = config;
        self
    }

    /// Pre-build the BM25 value index of every database (the offline part
    /// of §6.2; `prepare_database` can be called lazily too). Runtime
    /// method: takes `&self` like every other post-construction operation.
    pub fn prepare_databases<'a>(&self, dbs: impl Iterator<Item = &'a Database>) {
        for db in dbs {
            self.prepare_database(db);
        }
    }

    /// Build (or reuse) the BM25 value index of one database. Reuse is
    /// revision-aware: an index built for an earlier catalog state is
    /// replaced, an index current for `db.revision()` is kept as-is.
    pub fn prepare_database(&self, db: &Database) {
        let mut indexes = self.value_indexes.write();
        match indexes.get(&db.name) {
            Some(idx) if idx.built_revision() == db.revision() => {}
            _ => {
                indexes.insert(db.name.clone(), shared_value_index(db));
            }
        }
    }

    /// Prepare an introspected [`codes_storage::Catalog`]: build (or
    /// revision-aware reuse) the BM25 value index over its executable
    /// mirror and reconcile the attached cache with the backend's revision
    /// stamp. One call makes a freshly attached live database fully
    /// servable — value retrieval works and the cache generation reflects
    /// the backend state the catalog was read from.
    pub fn prepare_catalog(&self, catalog: &codes_storage::Catalog) {
        self.prepare_database(&catalog.database);
        if let Some(cache) = self.cache.as_ref() {
            cache.observe_revision(&catalog.database);
        }
    }

    /// Install already-built value indexes (shared across systems).
    pub fn install_value_indexes(&self, indexes: &HashMap<String, Arc<ValueIndex>>) {
        let mut mine = self.value_indexes.write();
        for (k, v) in indexes {
            mine.insert(k.clone(), Arc::clone(v));
        }
    }

    /// A snapshot of the currently-built value indexes (for sharing with
    /// another system via [`CodesSystem::install_value_indexes`]).
    pub fn value_index_snapshot(&self) -> HashMap<String, Arc<ValueIndex>> {
        self.value_indexes.read().clone()
    }

    /// Install a demonstration pool for few-shot in-context learning.
    pub fn with_demonstrations(mut self, pool: Vec<Sample>, few_shot: FewShot) -> CodesSystem {
        let questions: Vec<String> = pool.iter().map(|s| s.question.clone()).collect();
        self.demo_retriever = Some(Arc::new(DemoRetriever::new(
            self.model.pretrained.embedder.clone(),
            &questions,
        )));
        self.demo_pool = Arc::new(pool);
        self.few_shot = Some(few_shot);
        self
    }

    /// Install an already-built retriever + pool (shared across systems).
    pub fn with_shared_demonstrations(
        mut self,
        pool: Arc<Vec<Sample>>,
        retriever: Arc<DemoRetriever>,
        few_shot: FewShot,
    ) -> CodesSystem {
        self.demo_retriever = Some(retriever);
        self.demo_pool = pool;
        self.few_shot = Some(few_shot);
        self
    }

    /// Fine-tune the model on a benchmark's training split (Figure 3(d)).
    /// Build-time operation: consumes and returns the system like the other
    /// `with_*` builders, so fully-constructed systems can be immutable.
    pub fn finetune_on(mut self, benchmark: &Benchmark) -> CodesSystem {
        let pairs = benchmark
            .train
            .iter()
            .filter_map(|s| benchmark.database(&s.db_id).map(|db| (s, db)));
        finetune(&mut self.model, pairs);
        self
    }

    /// Fine-tune on explicit (sample, database) pairs (e.g. augmented or
    /// merged data, Table 10). Consuming builder, like
    /// [`CodesSystem::finetune_on`].
    pub fn finetune_pairs<'a>(
        mut self,
        pairs: impl Iterator<Item = (&'a Sample, &'a Database)>,
    ) -> CodesSystem {
        finetune(&mut self.model, pairs);
        self
    }

    /// Answer a request over a database.
    ///
    /// The [`InferenceRequest`] carries the question, optional external
    /// knowledge, and optional per-request [`Config`]/deadline overrides
    /// (resolved via [`InferenceRequest::resolved_config`]); the same type
    /// feeds [`CodesSystem::infer_batch`] and the serving pool's `submit`.
    ///
    /// Degrades gracefully instead of failing (each degradation is recorded
    /// on the returned [`Inference`]):
    ///
    /// * classifier missing while the schema filter is on → unfiltered
    ///   schema in the prompt;
    /// * value index missing → built lazily if the inference deadline still
    ///   allows it, otherwise value retrieval is skipped;
    /// * inference deadline nearly spent → beam truncated to greedy.
    pub fn infer(&self, db: &Database, request: &InferenceRequest) -> Inference {
        let config = request.resolved_config(&self.config);
        self.infer_one(db, &request.question, request.knowledge(), &config)
    }

    fn infer_one(
        &self,
        db: &Database,
        question: &str,
        external_knowledge: Option<&str>,
        config: &Config,
    ) -> Inference {
        let start = Instant::now();
        let mut degradations = Vec::new();
        let mut stages = StageTimings::zero();
        let mut cache_hits = CacheHits::default();
        // Reconcile the catalog revision with the cache *before* any tier
        // lookup: a mutated database bumps its generation here, so nothing
        // below can be served a pre-mutation entry.
        let cache = self.cache.as_ref().map(|c| (c, c.observe_revision(db)));
        let question_key =
            cache.as_ref().map(|_| normalize_question(question, external_knowledge));

        if self.options.use_schema_filter && self.classifier.is_none() {
            degradations.push("classifier missing: unfiltered schema in prompt".to_string());
        }

        // Algorithm 1, one span per stage. Spans feed the global
        // `codes_stage_duration_seconds` histogram and the trace ring;
        // their durations also ride along on the returned Inference.
        //
        // T1: cache the filter output only when a classifier actually runs
        // — the unfiltered fallback is too cheap to be worth entries.
        let span = Span::enter(STAGE_SCHEMA_FILTER);
        let run_filter = || {
            stage_schema_filter(
                db,
                question,
                external_knowledge,
                self.classifier.as_ref(),
                &self.options,
            )
        };
        let filtered: Arc<FilteredSchema> = match (&cache, &question_key) {
            (Some((cache, generation)), Some(key))
                if self.options.use_schema_filter && self.classifier.is_some() =>
            {
                let mut computed = false;
                let out = cache.schema_filter(&db.name, *generation, key, &self.options, || {
                    computed = true;
                    run_filter()
                });
                cache_hits.schema_filter = !computed;
                out
            }
            _ => Arc::new(run_filter()),
        };
        stages.schema_filter = span.finish().as_secs_f64();

        // Lazy index resolution is part of the retrieval stage: when the
        // index must be built on demand, that cost IS value retrieval.
        //
        // T2: cache only over a cleanly resolved index — a lazily built or
        // skipped index is itself a degradation, and degraded outputs must
        // never populate the cache.
        let span = Span::enter(STAGE_VALUE_RETRIEVAL);
        let degradations_before = degradations.len();
        let value_index = self.resolve_value_index(db, start, config, &mut degradations);
        let index_clean = value_index.is_some() && degradations.len() == degradations_before;
        let run_retrieval = |index: Option<&ValueIndex>| {
            stage_value_retrieval(&filtered, question, external_knowledge, index, &self.options)
        };
        let matched_values: Vec<ValueMatch> = match (&cache, &question_key) {
            (Some((cache, generation)), Some(key))
                if self.options.use_value_retriever && index_clean =>
            {
                let mut computed = false;
                let out = cache.value_matches(&db.name, *generation, key, &self.options, || {
                    computed = true;
                    run_retrieval(value_index.as_deref())
                });
                cache_hits.value_retrieval = !computed;
                (*out).clone()
            }
            _ => run_retrieval(value_index.as_deref()),
        };
        stages.value_retrieval = span.finish().as_secs_f64();

        let span = Span::enter(STAGE_METADATA);
        let tables = stage_metadata(db, &filtered, &self.options);
        stages.metadata = span.finish().as_secs_f64();

        let span = Span::enter(STAGE_PROMPT_BUILD);
        let prompt = stage_assemble(db, tables, matched_values, &self.options);
        let demo_refs: Vec<&Sample> = match (&self.demo_retriever, self.few_shot) {
            (Some(retriever), Some(fs)) => retriever
                .retrieve(question, fs.k, fs.strategy)
                .into_iter()
                .map(|i| &self.demo_pool[i])
                .collect(),
            _ => Vec::new(),
        };
        stages.prompt_build = span.finish().as_secs_f64();

        if config.nearly_spent(start.elapsed()) {
            degradations.push("inference deadline nearly spent: beam truncated to greedy".to_string());
        }
        // Generation and execution selection record their own spans (see
        // `CodesModel::generate_with`) and report the durations back.
        let generation = self.model.generate_governed(
            db,
            &prompt,
            question,
            external_knowledge,
            &demo_refs,
            config,
            start,
        );
        stages.generation = generation.generation_seconds;
        stages.execution_selection = generation.selection_seconds;
        Inference {
            sql: generation.sql.clone(),
            generation,
            latency_seconds: start.elapsed().as_secs_f64(),
            prompt_tokens: prompt.token_len(),
            degradations,
            stages,
            cache_hits,
        }
    }

    /// Answer a batch of requests over one database in a single batched
    /// model pass ([`CodesModel::generate_governed_batch`]).
    ///
    /// Prompt-side stages (schema filter, value retrieval, metadata,
    /// prompt assembly) still run per member, so `StageTimings`,
    /// degradations and cache hits stay per-member; the value index is
    /// resolved once for the whole batch (the members share the database,
    /// so they share the index — and any degradation taken resolving it).
    /// Generation and execution selection run batched, sharing LM scores
    /// and execution verdicts across members with per-member early exit.
    /// Each member's chosen SQL is identical to what a solo
    /// [`CodesSystem::infer`] of the same request would produce.
    pub fn infer_batch(&self, db: &Database, requests: &[InferenceRequest]) -> Vec<Inference> {
        if requests.len() <= 1 {
            return requests.iter().map(|r| self.infer(db, r)).collect();
        }
        let start = Instant::now();
        let configs: Vec<Config> =
            requests.iter().map(|r| r.resolved_config(&self.config)).collect();
        let cache = self.cache.as_ref().map(|c| (c, c.observe_revision(db)));

        // One index resolution (and at most one lazy build) per batch,
        // charged to a single value-retrieval span instead of every
        // member's. Resolved under the first member's budget — the pool
        // only batches requests with compatible configs and deadline
        // classes, so the members agree on whether a lazy build is
        // affordable. The degradations it takes belong to every member.
        let span = Span::enter(STAGE_VALUE_RETRIEVAL);
        let mut shared_degradations: Vec<String> = Vec::new();
        let value_index = self.resolve_value_index(db, start, &configs[0], &mut shared_degradations);
        let index_clean = value_index.is_some() && shared_degradations.is_empty();
        span.finish();

        struct Member<'a> {
            prompt: DbPrompt,
            prompt_tokens: usize,
            demos: Vec<&'a Sample>,
            degradations: Vec<String>,
            stages: StageTimings,
            cache_hits: CacheHits,
        }

        let mut members: Vec<Member<'_>> = Vec::with_capacity(requests.len());
        for (request, config) in requests.iter().zip(&configs) {
            let question = request.question.as_str();
            let external_knowledge = request.knowledge();
            let mut degradations = Vec::new();
            let mut stages = StageTimings::zero();
            let mut cache_hits = CacheHits::default();
            let question_key =
                cache.as_ref().map(|_| normalize_question(question, external_knowledge));

            if self.options.use_schema_filter && self.classifier.is_none() {
                degradations.push("classifier missing: unfiltered schema in prompt".to_string());
            }
            degradations.extend(shared_degradations.iter().cloned());

            let span = Span::enter(STAGE_SCHEMA_FILTER);
            let run_filter = || {
                stage_schema_filter(
                    db,
                    question,
                    external_knowledge,
                    self.classifier.as_ref(),
                    &self.options,
                )
            };
            let filtered: Arc<FilteredSchema> = match (&cache, &question_key) {
                (Some((cache, generation)), Some(key))
                    if self.options.use_schema_filter && self.classifier.is_some() =>
                {
                    let mut computed = false;
                    let out =
                        cache.schema_filter(&db.name, *generation, key, &self.options, || {
                            computed = true;
                            run_filter()
                        });
                    cache_hits.schema_filter = !computed;
                    out
                }
                _ => Arc::new(run_filter()),
            };
            stages.schema_filter = span.finish().as_secs_f64();

            let span = Span::enter(STAGE_VALUE_RETRIEVAL);
            let run_retrieval = |index: Option<&ValueIndex>| {
                stage_value_retrieval(&filtered, question, external_knowledge, index, &self.options)
            };
            let matched_values: Vec<ValueMatch> = match (&cache, &question_key) {
                (Some((cache, generation)), Some(key))
                    if self.options.use_value_retriever && index_clean =>
                {
                    let mut computed = false;
                    let out =
                        cache.value_matches(&db.name, *generation, key, &self.options, || {
                            computed = true;
                            run_retrieval(value_index.as_deref())
                        });
                    cache_hits.value_retrieval = !computed;
                    (*out).clone()
                }
                _ => run_retrieval(value_index.as_deref()),
            };
            stages.value_retrieval = span.finish().as_secs_f64();

            let span = Span::enter(STAGE_METADATA);
            let tables = stage_metadata(db, &filtered, &self.options);
            stages.metadata = span.finish().as_secs_f64();

            let span = Span::enter(STAGE_PROMPT_BUILD);
            let prompt = stage_assemble(db, tables, matched_values, &self.options);
            let demos: Vec<&Sample> = match (&self.demo_retriever, self.few_shot) {
                (Some(retriever), Some(fs)) => retriever
                    .retrieve(question, fs.k, fs.strategy)
                    .into_iter()
                    .map(|i| &self.demo_pool[i])
                    .collect(),
                _ => Vec::new(),
            };
            stages.prompt_build = span.finish().as_secs_f64();

            if config.nearly_spent(start.elapsed()) {
                degradations
                    .push("inference deadline nearly spent: beam truncated to greedy".to_string());
            }

            let prompt_tokens = prompt.token_len();
            members.push(Member { prompt, prompt_tokens, demos, degradations, stages, cache_hits });
        }

        let items: Vec<GenerationBatchItem<'_>> = members
            .iter()
            .zip(requests)
            .zip(&configs)
            .map(|((member, request), config)| GenerationBatchItem {
                prompt: &member.prompt,
                question: &request.question,
                external_knowledge: request.knowledge(),
                demos: &member.demos,
                config,
                started: start,
            })
            .collect();
        let generations = self.model.generate_governed_batch(db, &items);
        drop(items);

        members
            .into_iter()
            .zip(generations)
            .map(|(member, generation)| {
                let mut stages = member.stages;
                stages.generation = generation.generation_seconds;
                stages.execution_selection = generation.selection_seconds;
                Inference {
                    sql: generation.sql.clone(),
                    generation,
                    latency_seconds: start.elapsed().as_secs_f64(),
                    prompt_tokens: member.prompt_tokens,
                    degradations: member.degradations,
                    stages,
                    cache_hits: member.cache_hits,
                }
            })
            .collect()
    }

    /// Look up the value index for `db`, building it lazily when allowed.
    ///
    /// Returns `None` (value retrieval skipped) when the index is absent and
    /// either lazy builds are disabled or the inference deadline no longer
    /// leaves room for one. No-op when value retrieval is off entirely.
    fn resolve_value_index(
        &self,
        db: &Database,
        started: Instant,
        config: &Config,
        degradations: &mut Vec<String>,
    ) -> Option<Arc<ValueIndex>> {
        if !self.options.use_value_retriever {
            return None;
        }
        let stale = match self.value_indexes.read().get(&db.name) {
            // Current index: the fast path, no degradation.
            Some(idx) if idx.built_revision() == db.revision() => {
                return Some(Arc::clone(idx));
            }
            Some(_) => true,
            None => false,
        };
        if config.allow_lazy_index_build(started.elapsed()) {
            // The shared, revision-keyed index cache single-flights the
            // build across threads and systems.
            let built = shared_value_index(db);
            self.value_indexes.write().insert(db.name.clone(), Arc::clone(&built));
            degradations.push(if stale {
                format!("value index for '{}' rebuilt after database change", db.name)
            } else {
                format!("value index for '{}' built lazily", db.name)
            });
            Some(built)
        } else {
            degradations.push(format!(
                "value index for '{}' unavailable: value retrieval skipped",
                db.name
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table4_models;
    use crate::pretrain::{pretrain, PretrainConfig};
    use crate::sketch::SketchCatalog;
    use std::sync::Arc;
    use std::time::Duration;

    fn mini_benchmark() -> Benchmark {
        let mut cfg = codes_datasets::BenchmarkConfig::spider(51);
        cfg.train_samples_per_db = 10;
        cfg.dev_samples_per_db = 4;
        codes_datasets::build_benchmark("mini", &cfg)
    }

    fn system(name: &str) -> CodesSystem {
        let catalog = Arc::new(SketchCatalog::build());
        let spec = table4_models().into_iter().find(|m| m.name == name).unwrap();
        let lm = pretrain(&catalog, &spec, &PretrainConfig { scale: 10, seed: 3 });
        CodesSystem::new(CodesModel::new(lm, catalog), PromptOptions::sft())
    }

    fn req(s: &Sample) -> InferenceRequest {
        InferenceRequest::new(&s.db_id, &s.question)
    }

    #[test]
    fn end_to_end_sft_inference() {
        let bench = mini_benchmark();
        let clf = SchemaClassifier::train(&bench, false, 7);
        let sys = system("CodeS-7B").with_classifier(clf).finetune_on(&bench);
        sys.prepare_databases(bench.databases.iter());
        let mut executable = 0usize;
        let n = bench.dev.len().min(20);
        for s in bench.dev.iter().take(n) {
            let db = bench.database(&s.db_id).unwrap();
            let out = sys.infer(db, &req(s));
            if sqlengine::execute_query(db, &out.sql).is_ok() {
                executable += 1;
            }
            assert!(out.latency_seconds < 5.0);
            assert!(out.prompt_tokens > 0);
        }
        assert!(
            executable as f64 / n as f64 > 0.8,
            "only {executable}/{n} outputs executable"
        );
    }

    #[test]
    fn sft_beats_zero_shot_on_dev_accuracy() {
        let bench = mini_benchmark();
        let clf = SchemaClassifier::train(&bench, false, 7);
        let sft = system("CodeS-7B").with_classifier(clf.clone()).finetune_on(&bench);
        sft.prepare_databases(bench.databases.iter());
        let zero = system("CodeS-7B").with_classifier(clf);
        zero.prepare_databases(bench.databases.iter());

        let n = bench.dev.len().min(30);
        let acc = |sys: &CodesSystem| {
            let mut correct = 0usize;
            for s in bench.dev.iter().take(n) {
                let db = bench.database(&s.db_id).unwrap();
                let out = sys.infer(db, &req(s));
                let gold = sqlengine::execute_query(db, &s.sql).unwrap();
                if let Ok(pred) = sqlengine::execute_query(db, &out.sql) {
                    if pred.same_result(&gold) {
                        correct += 1;
                    }
                }
            }
            correct as f64 / n as f64
        };
        let a_sft = acc(&sft);
        let a_zero = acc(&zero);
        assert!(
            a_sft >= a_zero,
            "SFT ({a_sft:.2}) should not be worse than zero-shot ({a_zero:.2})"
        );
        assert!(a_sft > 0.3, "SFT accuracy suspiciously low: {a_sft:.2}");
    }

    #[test]
    fn request_deadline_propagates_to_inference() {
        let bench = mini_benchmark();
        let sys = system("CodeS-1B");
        sys.prepare_databases(bench.databases.iter());
        let s = &bench.dev[0];
        let db = bench.database(&s.db_id).unwrap();
        // A request admitted with (effectively) no time left must degrade
        // to greedy rather than fail — and still answer.
        let starved =
            req(s).with_config(Config::serving()).with_deadline(Duration::from_nanos(1));
        let out = sys.infer(db, &starved);
        assert!(!out.sql.is_empty());
        assert!(
            out.degradations.iter().any(|d| d.contains("greedy")),
            "starved deadline must truncate the beam: {:?}",
            out.degradations
        );
        // The override is per-request: the system's own config still applies.
        let relaxed = sys.infer(db, &req(s));
        assert!(!relaxed.degradations.iter().any(|d| d.contains("greedy")));
    }

    #[test]
    fn inference_reports_all_six_stage_timings() {
        let bench = mini_benchmark();
        let clf = SchemaClassifier::train(&bench, false, 7);
        let sys = system("CodeS-1B").with_classifier(clf);
        sys.prepare_databases(bench.databases.iter());
        let s = &bench.dev[0];
        let db = bench.database(&s.db_id).unwrap();
        let out = sys.infer(db, &req(s));
        for (stage, seconds) in out.stages.entries() {
            assert!(seconds > 0.0, "stage {stage} reported zero seconds");
        }
        // Stage work happens inside the measured pipeline: the stage sum
        // cannot exceed the end-to-end latency.
        assert!(out.stages.total() <= out.latency_seconds);
    }

    #[test]
    fn cached_inference_hits_t1_t2_and_respects_catalog_mutations() {
        use crate::cache::CacheSettings;

        let bench = mini_benchmark();
        let clf = SchemaClassifier::train(&bench, false, 7);
        let registry = codes_obs::Registry::new();
        let cache = Arc::new(SystemCache::with_registry(&registry, CacheSettings::default()));
        let sys = system("CodeS-1B").with_classifier(clf).with_cache(Arc::clone(&cache));
        sys.prepare_databases(bench.databases.iter());
        let s = &bench.dev[0];
        let db = bench.database(&s.db_id).unwrap();

        let cold = sys.infer(db, &req(s));
        assert_eq!(cold.cache_hits, CacheHits::default(), "first pass computes everything");
        let warm = sys.infer(db, &req(s));
        assert!(warm.cache_hits.schema_filter, "second pass hits T1");
        assert!(warm.cache_hits.value_retrieval, "second pass hits T2");
        assert_eq!(warm.sql, cold.sql, "cached stages change nothing about the answer");
        let stats = cache.stats();
        assert!(stats.schema.hits >= 1 && stats.values.hits >= 1);

        // Mutating the catalog bumps the generation: the same question must
        // recompute rather than reuse pre-mutation entries.
        let mut mutated = db.clone();
        let table = mutated.tables[0].schema.name.clone();
        mutated.table_mut(&table).expect("table exists");
        let after = sys.infer(&mutated, &req(s));
        assert!(
            !after.cache_hits.schema_filter && !after.cache_hits.value_retrieval,
            "generation bump makes old entries unreachable: {:?}",
            after.cache_hits
        );
        assert!(cache.stats().invalidations >= 1);
    }

    #[test]
    fn few_shot_retrieval_feeds_demonstrations() {
        let bench = mini_benchmark();
        let sys = system("CodeS-3B").with_demonstrations(
            bench.train.clone(),
            FewShot { k: 3, strategy: DemoStrategy::PatternAware },
        );
        sys.prepare_databases(bench.databases.iter());
        let s = &bench.dev[0];
        let db = bench.database(&s.db_id).unwrap();
        let out = sys.infer(db, &req(s));
        assert!(!out.sql.is_empty());
    }

    #[test]
    fn batched_inference_matches_solo_sql() {
        let bench = mini_benchmark();
        let clf = SchemaClassifier::train(&bench, false, 7);
        let sys = system("CodeS-7B").with_classifier(clf).finetune_on(&bench);
        sys.prepare_databases(bench.databases.iter());
        let db = bench.database(&bench.dev[0].db_id).unwrap();
        let mut requests: Vec<InferenceRequest> = bench
            .dev
            .iter()
            .filter(|s| s.db_id == db.name)
            .take(8)
            .map(req)
            .collect();
        assert!(requests.len() >= 2, "need a real batch to test");
        // Duplicate members exercise the duplicate-decode collapse: the
        // clones must still answer identically to their solo inference.
        requests.push(requests[0].clone());
        requests.push(requests[1].clone());
        let batched = sys.infer_batch(db, &requests);
        assert_eq!(batched.len(), requests.len());
        for (request, out) in requests.iter().zip(&batched) {
            let solo = sys.infer(db, request);
            assert_eq!(
                out.sql, solo.sql,
                "batched SQL diverged from solo for {:?}",
                request.question
            );
            assert!(out.degradations.is_empty(), "{:?}", out.degradations);
        }
    }
}
