//! The three concrete cache tiers over [`codes_cache::ShardedCache`].
//!
//! Production question streams are repetitive per database, so each stage
//! of Algorithm 1 that is a pure function of (database state, question,
//! knobs) is cached:
//!
//! * **T1 — schema filter** (`tier="schema_filter"`): the
//!   [`FilteredSchema`] for a question, keyed by (db generation, normalized
//!   question, top-k1/top-k2). Cached only when a classifier actually ran —
//!   the unfiltered fallback is too cheap to be worth an entry.
//! * **T2 — value retrieval** (`tier="value_retrieval"`): the
//!   [`ValueMatch`] list, keyed by (db generation, normalized question,
//!   retriever knobs + filter knobs — the matches are filtered against the
//!   T1 output, so its keying is a prefix of T2's).
//! * **T3 — full results** (`tier="full_result"`): the final SQL for a
//!   request, keyed by (db generation, normalized question, [`Config`]
//!   fingerprint). Checked at pool admission in `codes-serve`, so a hit
//!   bypasses the worker queue entirely. Degraded or deadline-clamped
//!   inferences are never admitted.
//!
//! Invalidation is generation-based: every key embeds the database's
//! generation token, [`SystemCache::observe_revision`] auto-bumps it when
//! the `sqlengine` catalog revision changes, and
//! [`SystemCache::invalidate_database`] bumps it explicitly. Old-generation
//! entries become unreachable immediately and are reclaimed lazily by LRU
//! pressure.
//!
//! One [`SystemCache`] belongs to one trained system: keys do not embed the
//! model or classifier weights, so sharing a cache between systems with
//! different weights would serve one system the other's answers.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use codes_cache::{
    CacheConfig, CacheStats, GenerationMap, RevisionMap, ShardedCache, INVALIDATIONS_TOTAL,
};
use codes_linker::FilteredSchema;
use codes_obs::{Counter, Registry};
use codes_retrieval::ValueMatch;
use sqlengine::Database;

use crate::config::Config;
use crate::prompt::PromptOptions;

/// Which pipeline stages of one inference were served from cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheHits {
    /// T1: the schema filter output came from cache.
    pub schema_filter: bool,
    /// T2: the value-retriever matches came from cache.
    pub value_retrieval: bool,
}

/// A cached end-to-end answer (T3). Holds what a served response needs —
/// not the full [`crate::Inference`], whose generation beam is heavyweight
/// and irrelevant once a winning SQL exists.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedAnswer {
    /// The winning SQL.
    pub sql: String,
    /// Prompt length of the original computation, in whitespace tokens.
    pub prompt_tokens: usize,
    /// Wall-clock latency of the original computation, in seconds.
    pub compute_latency_seconds: f64,
}

/// Capacity/TTL policy for the three tiers.
#[derive(Debug, Clone, Copy)]
pub struct CacheSettings {
    /// T1 entries (filtered schemas are small: table/column name lists).
    pub schema_capacity: usize,
    /// T2 entries (a handful of value matches each).
    pub value_capacity: usize,
    /// T3 entries (one SQL string each).
    pub full_capacity: usize,
    /// Shards per tier.
    pub shards: usize,
    /// Optional TTL applied to every tier; `None` relies on LRU pressure
    /// and generation bumps alone.
    pub ttl: Option<Duration>,
}

impl Default for CacheSettings {
    fn default() -> CacheSettings {
        CacheSettings {
            schema_capacity: 4096,
            value_capacity: 4096,
            full_capacity: 8192,
            shards: 8,
            ttl: None,
        }
    }
}

/// Per-tier counter snapshots plus the invalidation count, as surfaced in
/// `HealthSnapshot` and the cache bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SystemCacheStats {
    /// T1 (schema filter) counters.
    pub schema: CacheStats,
    /// T2 (value retrieval) counters.
    pub values: CacheStats,
    /// T3 (full results) counters.
    pub full: CacheStats,
    /// Explicit + revision-triggered generation bumps.
    pub invalidations: u64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct SchemaKey {
    db: String,
    generation: u64,
    question: String,
    top_k1: usize,
    top_k2: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ValueKey {
    db: String,
    generation: u64,
    question: String,
    coarse_k: usize,
    fine_k: usize,
    /// `f64` bit pattern — the knob is a constant, not arithmetic output,
    /// so bit equality is the right notion.
    min_degree_bits: u64,
    top_k1: usize,
    top_k2: usize,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct FullKey {
    db: String,
    generation: u64,
    question: String,
    config_fingerprint: u64,
}

/// The multi-tier cache one serving stack shares: `CodesSystem` consults
/// T1/T2 inside `infer`, the serve pool consults T3 at admission.
pub struct SystemCache {
    generations: GenerationMap,
    /// Last-seen `sqlengine` catalog revision per database, so any mutation
    /// observed at inference time auto-bumps the generation.
    revisions: RevisionMap,
    schema: ShardedCache<SchemaKey, Arc<FilteredSchema>>,
    values: ShardedCache<ValueKey, Arc<Vec<ValueMatch>>>,
    full: ShardedCache<FullKey, CachedAnswer>,
    invalidations: Arc<Counter>,
}

impl SystemCache {
    /// Default-sized cache registering its metrics in the global registry
    /// (the one `codes_obs::render_prometheus` scrapes).
    pub fn new() -> SystemCache {
        SystemCache::with_registry(&codes_obs::global(), CacheSettings::default())
    }

    /// Cache with explicit sizing, registering metrics in `registry` —
    /// tests use a private registry for isolation.
    pub fn with_registry(registry: &Registry, settings: CacheSettings) -> SystemCache {
        fn tier<K: std::hash::Hash + Eq + Clone, V: Clone>(
            settings: &CacheSettings,
            registry: &Registry,
            capacity: usize,
            name: &str,
        ) -> ShardedCache<K, V> {
            ShardedCache::with_metrics(
                CacheConfig { capacity, shards: settings.shards, ttl: settings.ttl },
                registry,
                name,
            )
        }
        SystemCache {
            generations: GenerationMap::new(),
            revisions: RevisionMap::new(),
            schema: tier(&settings, registry, settings.schema_capacity, "schema_filter"),
            values: tier(&settings, registry, settings.value_capacity, "value_retrieval"),
            full: tier(&settings, registry, settings.full_capacity, "full_result"),
            invalidations: registry.counter(INVALIDATIONS_TOTAL, &[]),
        }
    }

    /// Current generation token for a database id.
    pub fn generation(&self, db_id: &str) -> u64 {
        self.generations.generation(db_id)
    }

    /// Explicitly invalidate everything cached for `db_id` (all tiers);
    /// returns the new generation.
    pub fn invalidate_database(&self, db_id: &str) -> u64 {
        self.invalidations.inc();
        self.generations.bump(db_id)
    }

    /// Reconcile the cache with the database's catalog revision and return
    /// the current generation. The first sighting of a database records its
    /// revision; any later revision change (DDL, row mutations) bumps the
    /// generation so pre-mutation entries can no longer be served.
    pub fn observe_revision(&self, db: &Database) -> u64 {
        self.observe_revision_token(&db.name, db.revision())
    }

    /// [`SystemCache::observe_revision`] for callers that hold a revision
    /// token without the catalog itself — e.g. a storage layer that read
    /// the token over a live connection.
    pub fn observe_revision_token(&self, db_id: &str, revision: u64) -> u64 {
        if self.revisions.observe(db_id, revision).is_changed() {
            self.invalidate_database(db_id)
        } else {
            self.generations.generation(db_id)
        }
    }

    /// T1 lookup/compute. `computed` distinguishes a hit from a miss for
    /// the caller's [`CacheHits`] bookkeeping (the closure runs on miss).
    pub fn schema_filter(
        &self,
        db_id: &str,
        generation: u64,
        question_key: &str,
        options: &PromptOptions,
        compute: impl FnOnce() -> FilteredSchema,
    ) -> Arc<FilteredSchema> {
        let key = SchemaKey {
            db: db_id.to_string(),
            generation,
            question: question_key.to_string(),
            top_k1: options.filter.top_k1,
            top_k2: options.filter.top_k2,
        };
        self.schema.get_or_compute(key, || Arc::new(compute()))
    }

    /// T2 lookup/compute. Keyed by both retriever and filter knobs: the
    /// match list is filtered against the T1 output, so everything that
    /// shapes T1 shapes T2.
    pub fn value_matches(
        &self,
        db_id: &str,
        generation: u64,
        question_key: &str,
        options: &PromptOptions,
        compute: impl FnOnce() -> Vec<ValueMatch>,
    ) -> Arc<Vec<ValueMatch>> {
        let key = ValueKey {
            db: db_id.to_string(),
            generation,
            question: question_key.to_string(),
            coarse_k: options.coarse_k,
            fine_k: options.fine_k,
            min_degree_bits: options.min_match_degree.to_bits(),
            top_k1: options.filter.top_k1,
            top_k2: options.filter.top_k2,
        };
        self.values.get_or_compute(key, || Arc::new(compute()))
    }

    /// T3 admission-path lookup.
    pub fn lookup_full(
        &self,
        db_id: &str,
        generation: u64,
        question_key: &str,
        config_fingerprint: u64,
    ) -> Option<CachedAnswer> {
        self.full.get(&FullKey {
            db: db_id.to_string(),
            generation,
            question: question_key.to_string(),
            config_fingerprint,
        })
    }

    /// Admit a clean end-to-end result under the generation that was
    /// current when the request was *submitted* — a result computed before
    /// an invalidation must land under the pre-invalidation token, where
    /// post-invalidation lookups can't reach it. Callers must not admit
    /// degraded or deadline-clamped inferences.
    pub fn admit_full(
        &self,
        db_id: &str,
        generation: u64,
        question_key: &str,
        config_fingerprint: u64,
        answer: CachedAnswer,
    ) {
        self.full.insert(
            FullKey {
                db: db_id.to_string(),
                generation,
                question: question_key.to_string(),
                config_fingerprint,
            },
            answer,
        );
    }

    /// Point-in-time counters for all tiers.
    pub fn stats(&self) -> SystemCacheStats {
        SystemCacheStats {
            schema: self.schema.stats(),
            values: self.values.stats(),
            full: self.full.stats(),
            invalidations: self.invalidations.get(),
        }
    }
}

impl Default for SystemCache {
    fn default() -> SystemCache {
        SystemCache::new()
    }
}

impl fmt::Debug for SystemCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SystemCache").field("stats", &self.stats()).finish()
    }
}

/// Canonical question key: lowercased, whitespace-collapsed, with the
/// external knowledge (same treatment) appended under a separator. Trivial
/// reformattings of the same question share cache entries; distinct
/// knowledge never collides with the bare question.
pub fn normalize_question(question: &str, external_knowledge: Option<&str>) -> String {
    let mut key = String::with_capacity(question.len());
    for word in question.split_whitespace() {
        if !key.is_empty() {
            key.push(' ');
        }
        for c in word.chars() {
            key.extend(c.to_lowercase());
        }
    }
    if let Some(ek) = external_knowledge {
        key.push('\u{1f}');
        for word in ek.split_whitespace() {
            key.push(' ');
            for c in word.chars() {
                key.extend(c.to_lowercase());
            }
        }
    }
    key
}

/// FNV-1a fingerprint of every [`Config`] field that can change an answer.
/// Two configs with equal fingerprints produce the same SQL for the same
/// (database state, question), so T3 entries are keyed on it.
pub fn config_fingerprint(config: &Config) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut word = |w: u64| {
        for byte in w.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let duration = |d: Option<Duration>| d.map_or(u64::MAX, |d| d.as_nanos() as u64);
    word(duration(config.inference_deadline));
    word(u64::from(config.retry_attempts));
    word(u64::from(config.lazy_value_index));
    word(duration(config.exec_limits.deadline));
    word(config.exec_limits.max_rows.unwrap_or(u64::MAX));
    word(config.exec_limits.max_intermediate_rows.unwrap_or(u64::MAX));
    word(config.exec_limits.max_memory_bytes.unwrap_or(u64::MAX));
    word(config.exec_limits.max_recursion_depth.map_or(u64::MAX, u64::from));
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_canonicalizes_but_keeps_knowledge_distinct() {
        assert_eq!(
            normalize_question("  How many  CLIENTS? ", None),
            normalize_question("how many clients?", None)
        );
        assert_ne!(
            normalize_question("how many clients?", None),
            normalize_question("how many clients?", Some("F means female")),
        );
        assert_ne!(
            normalize_question("a b", None),
            normalize_question("ab", None),
            "word boundaries survive normalization"
        );
    }

    #[test]
    fn config_fingerprint_tracks_answer_relevant_fields() {
        let base = Config::serving();
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base.clone()));
        let mut tighter = base;
        tighter.inference_deadline = Some(Duration::from_millis(100));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tighter));
        let mut fewer_rows = base;
        fewer_rows.exec_limits.max_rows = Some(7);
        assert_ne!(config_fingerprint(&base), config_fingerprint(&fewer_rows));
    }

    #[test]
    fn observe_revision_bumps_generation_on_catalog_change() {
        let registry = Registry::new();
        let cache = SystemCache::with_registry(&registry, CacheSettings::default());
        let mut db = Database::new("shop");
        db.create_table(sqlengine::TableSchema::new(
            "t",
            vec![sqlengine::Column::new("c", sqlengine::DataType::Text)],
        ))
        .expect("fresh table");

        let g0 = cache.observe_revision(&db);
        assert_eq!(g0, 0, "first sighting records the revision without invalidating");
        assert_eq!(cache.observe_revision(&db), 0, "unchanged catalog keeps the generation");

        db.table_mut("t")
            .expect("t exists")
            .insert(vec!["x".into()])
            .expect("row matches schema");
        let g1 = cache.observe_revision(&db);
        assert_eq!(g1, 1, "catalog mutation bumps the generation");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn full_tier_is_generation_scoped() {
        let registry = Registry::new();
        let cache = SystemCache::with_registry(&registry, CacheSettings::default());
        let fp = config_fingerprint(&Config::serving());
        let answer = CachedAnswer {
            sql: "SELECT 1".into(),
            prompt_tokens: 12,
            compute_latency_seconds: 0.1,
        };
        cache.admit_full("db", 0, "q", fp, answer.clone());
        assert_eq!(cache.lookup_full("db", 0, "q", fp), Some(answer));
        let bumped = cache.invalidate_database("db");
        assert_eq!(bumped, 1);
        assert_eq!(
            cache.lookup_full("db", bumped, "q", fp),
            None,
            "post-invalidation lookups cannot reach pre-invalidation entries"
        );
        // Different config fingerprints never share answers either.
        assert_eq!(cache.lookup_full("db", 0, "q", fp ^ 1), None);
    }
}
