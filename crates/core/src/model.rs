//! The simulated CodeS model: sketch ranking, slot filling, candidate
//! scoring and beam decoding (§8, §9.1.4: "a beam search produces 4 SQL
//! candidates, picking the first executable one as the outcome").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use codes_datasets::Sample;
use codes_obs::{Span, STAGE_EXECUTION_SELECTION, STAGE_GENERATION};
use codes_retrieval::ValueMatch;
use sqlengine::{
    catch_panics, execute_query_governed, preprice_query, with_retry, Database, ExecLimits,
};

use crate::config::{Capacity, Config};
use crate::generator::{fill_ranked, Candidate, SlotContext};
use crate::intent::{extract_intent, template_intent_score, Intent};
use crate::pretrain::PretrainedLm;
use crate::prompt::DbPrompt;
use crate::sketch::SketchCatalog;

/// Scoring weights of the candidate ranker.
const W_TEMPLATE: f64 = 1.0;
const W_SLOT: f64 = 1.1;
const W_LM: f64 = 0.3;
const W_PRIOR: f64 = 0.55;

/// Fine-tuned state: what SFT adds on top of pre-training.
#[derive(Debug, Clone, Default)]
pub struct FineTuned {
    /// intent-bucket -> (template id -> count)
    bucket_counts: HashMap<String, HashMap<usize, u64>>,
    /// marginal template counts
    template_counts: HashMap<usize, u64>,
    total: u64,
    /// Learned NL-alias -> (table, column, stored value) mappings
    /// (domain knowledge absorbed from training data).
    alias_map: HashMap<String, (String, String, String)>,
    /// Template ids newly learned during fine-tuning (within capacity).
    pub learned_templates: Vec<usize>,
}

impl FineTuned {
    /// Smoothed P(template | bucket), backing off to the marginal.
    fn prior(&self, bucket: &str, template_id: usize) -> f64 {
        let n_templates = codes_datasets::TEMPLATE_COUNT as f64;
        let marginal = {
            let c = self.template_counts.get(&template_id).copied().unwrap_or(0) as f64;
            (c + 0.25) / (self.total as f64 + 0.25 * n_templates)
        };
        match self.bucket_counts.get(bucket) {
            Some(counts) => {
                let total: u64 = counts.values().sum();
                let c = counts.get(&template_id).copied().unwrap_or(0) as f64;
                let conditional = (c + 0.25) / (total as f64 + 0.25 * n_templates);
                0.8 * conditional + 0.2 * marginal
            }
            None => marginal,
        }
    }

    /// Whether SFT learned an alias mapping for this question word.
    pub fn knows_alias(&self, word: &str) -> bool {
        self.alias_map.contains_key(word)
    }

    /// Number of learned alias mappings.
    pub fn alias_count(&self) -> usize {
        self.alias_map.len()
    }
}

/// One decoded candidate with its score breakdown.
#[derive(Debug, Clone)]
pub struct ScoredCandidate {
    /// Candidate SQL text.
    pub sql: String,
    /// Producing sketch/template.
    pub template_id: usize,
    /// Final ranking score.
    pub score: f64,
    /// Whether the SQL executed successfully on the database.
    pub executable: bool,
}

/// The output of one generation call.
#[derive(Debug, Clone)]
pub struct Generation {
    /// The chosen SQL (first executable candidate of the beam).
    pub sql: String,
    /// The full beam, ranked.
    pub beam: Vec<ScoredCandidate>,
    /// Wall-clock seconds decoding the beam (template ranking + slot
    /// filling + scoring) — the `generation` pipeline stage.
    pub generation_seconds: f64,
    /// Wall-clock seconds executing candidates to pick the first
    /// executable one — the `execution_selection` pipeline stage.
    pub selection_seconds: f64,
}

/// One member of a batched generation call: the per-member inputs that
/// [`CodesModel::generate_governed_batch`] needs alongside the shared
/// database.
pub struct GenerationBatchItem<'a> {
    /// Assembled prompt for this member.
    pub prompt: &'a DbPrompt,
    /// The member's natural-language question.
    pub question: &'a str,
    /// Optional external knowledge (BIRD-style evidence).
    pub external_knowledge: Option<&'a str>,
    /// Few-shot demonstrations (ICL mode; empty under SFT).
    pub demos: &'a [&'a Sample],
    /// The member's resolved runtime config (budgets, retries, deadline).
    pub config: &'a Config,
    /// When the member's inference started, for deadline accounting.
    pub started: Instant,
}

/// The simulated CodeS model. Pre-trained state is shared (`Arc`) so a
/// sweep over prompt configurations does not repeat pre-training.
pub struct CodesModel {
    /// Shared pre-trained state (tokenizer, LM, sketches, embedder).
    pub pretrained: Arc<PretrainedLm>,
    /// Shared sketch-to-template catalog.
    pub catalog: Arc<SketchCatalog>,
    /// Fine-tuned state (None before SFT).
    pub finetuned: Option<FineTuned>,
}

impl CodesModel {
    /// Wrap a pre-trained LM into a (not yet fine-tuned) model.
    pub fn new(pretrained: impl Into<Arc<PretrainedLm>>, catalog: Arc<SketchCatalog>) -> CodesModel {
        CodesModel { pretrained: pretrained.into(), catalog, finetuned: None }
    }

    /// A fresh (not fine-tuned) model sharing this model's pre-training.
    pub fn fork(&self) -> CodesModel {
        CodesModel {
            pretrained: Arc::clone(&self.pretrained),
            catalog: Arc::clone(&self.catalog),
            finetuned: None,
        }
    }

    /// The model's capacity profile.
    pub fn capacity(&self) -> &Capacity {
        &self.pretrained.capacity
    }

    /// Generate SQL for a question over a prompt. `demos` are few-shot
    /// demonstrations (ICL mode); SFT state is used when present.
    /// Ungoverned: candidate execution runs without budgets (panics are
    /// still isolated). Serving and evaluation paths should prefer
    /// [`CodesModel::generate_governed`].
    pub fn generate(
        &self,
        db: &Database,
        prompt: &DbPrompt,
        question: &str,
        external_knowledge: Option<&str>,
        demos: &[&Sample],
    ) -> Generation {
        self.generate_with(db, prompt, question, external_knowledge, demos, &ExecLimits::unlimited(), 0, None)
    }

    /// Generate SQL under a runtime [`Config`]. Candidate execution is
    /// budgeted (`config.exec_limits`) with transient-failure retries, and
    /// when three quarters of the inference deadline are already gone by
    /// the time candidates are scored, the beam degrades to greedy — only
    /// the top candidate is executed, bounding the tail latency of a
    /// nearly-blown inference.
    pub fn generate_governed(
        &self,
        db: &Database,
        prompt: &DbPrompt,
        question: &str,
        external_knowledge: Option<&str>,
        demos: &[&Sample],
        config: &Config,
        started: Instant,
    ) -> Generation {
        let beam_cap = if config.nearly_spent(started.elapsed()) { Some(1) } else { None };
        self.generate_with(
            db,
            prompt,
            question,
            external_knowledge,
            demos,
            &config.exec_limits,
            config.retry_attempts,
            beam_cap,
        )
    }

    /// Generate for a whole batch of members over one database in a
    /// single pass, with three batch economies the solo path cannot have.
    /// The scoring phase shares an LM-likelihood memo across members
    /// (candidate SQL repeats heavily under real traffic, and the
    /// likelihood is a pure function of the SQL); duplicate members —
    /// identical question, external knowledge, and beam cap, which under a
    /// deterministic pipeline means identical decode inputs — reuse the
    /// first copy's beam instead of re-decoding (a burst of one hot query
    /// is in flight together, so the full-result cache cannot catch it
    /// yet); and first-executable selection runs batched via
    /// [`select_first_executable_batch`]:
    /// round-robin across members with per-member early exit and shared
    /// execution verdicts. Each member's chosen SQL is identical to what a
    /// solo [`CodesModel::generate_governed`] of the same inputs picks;
    /// the only observable difference is that beam candidates ranked after
    /// a member's chosen one keep `executable: false` (they are never run).
    ///
    /// One generation span and one selection span cover the whole batch;
    /// the per-member `generation_seconds`/`selection_seconds` on each
    /// returned [`Generation`] carry the member's own share.
    pub fn generate_governed_batch(
        &self,
        db: &Database,
        items: &[GenerationBatchItem<'_>],
    ) -> Vec<Generation> {
        let gen_span = Span::enter(STAGE_GENERATION);
        let mut lm_memo: HashMap<String, f64> = HashMap::new();
        let mut beams: Vec<Vec<ScoredCandidate>> = Vec::with_capacity(items.len());
        let mut enriched_prompts: Vec<DbPrompt> = Vec::with_capacity(items.len());
        let mut generation_seconds: Vec<f64> = Vec::with_capacity(items.len());
        let mut budgets: Vec<(ExecLimits, u32)> = Vec::with_capacity(items.len());
        // Duplicate-member collapse: decode output is a pure function of
        // (question, external knowledge, beam cap) — the prompt and demos
        // are themselves derived deterministically from the question on
        // one database — so the first member of each equivalence class
        // decodes and the rest clone its beam.
        let mut decoded: HashMap<(String, Option<String>, Option<usize>), usize> = HashMap::new();
        for (i, item) in items.iter().enumerate() {
            let member_started = Instant::now();
            let beam_cap =
                if item.config.nearly_spent(item.started.elapsed()) { Some(1) } else { None };
            let key = (
                item.question.to_string(),
                item.external_knowledge.map(str::to_string),
                beam_cap,
            );
            match decoded.get(&key) {
                Some(&first) => {
                    beams.push(beams[first].clone());
                    enriched_prompts.push(enriched_prompts[first].clone());
                }
                None => {
                    let (scored, enriched) = self.decode_beam(
                        item.prompt,
                        item.question,
                        item.external_knowledge,
                        item.demos,
                        beam_cap,
                        Some(&mut lm_memo),
                    );
                    beams.push(scored);
                    enriched_prompts.push(enriched);
                    decoded.insert(key, i);
                }
            }
            generation_seconds.push(member_started.elapsed().as_secs_f64());
            budgets.push((item.config.exec_limits, item.config.retry_attempts));
        }
        gen_span.finish();

        let sel_span = Span::enter(STAGE_EXECUTION_SELECTION);
        let selections = select_first_executable_batch(db, &mut beams, &budgets);
        sel_span.finish();

        beams
            .into_iter()
            .zip(selections)
            .zip(enriched_prompts)
            .zip(generation_seconds)
            .map(|(((beam, selection), enriched), gen_secs)| {
                let sql = selection
                    .chosen
                    .and_then(|i| beam.get(i).map(|c| c.sql.clone()))
                    .or_else(|| beam.first().map(|c| c.sql.clone()))
                    .unwrap_or_else(|| fallback_sql(&enriched));
                Generation {
                    sql,
                    beam,
                    generation_seconds: gen_secs,
                    selection_seconds: selection.selection_seconds,
                }
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn generate_with(
        &self,
        db: &Database,
        prompt: &DbPrompt,
        question: &str,
        external_knowledge: Option<&str>,
        demos: &[&Sample],
        limits: &ExecLimits,
        retries: u32,
        beam_cap: Option<usize>,
    ) -> Generation {
        let gen_span = Span::enter(STAGE_GENERATION);
        let (mut scored, enriched) =
            self.decode_beam(prompt, question, external_knowledge, demos, beam_cap, None);
        let generation_seconds = gen_span.finish().as_secs_f64();

        // Pick the first executable candidate.
        let sel_span = Span::enter(STAGE_EXECUTION_SELECTION);
        let chosen = select_first_executable(db, &mut scored, limits, retries)
            .map(|i| scored[i].sql.clone())
            .or_else(|| scored.first().map(|c| c.sql.clone()))
            .unwrap_or_else(|| fallback_sql(&enriched));
        let selection_seconds = sel_span.finish().as_secs_f64();
        Generation { sql: chosen, beam: scored, generation_seconds, selection_seconds }
    }

    /// The beam-decoding core shared by the solo and batched paths:
    /// template ranking, slot filling and candidate scoring — everything
    /// up to (but excluding) execution selection. `lm_memo` (batched path
    /// only) memoizes `sql_log_likelihood` by candidate SQL across the
    /// batch; the likelihood is deterministic in the SQL, so memoized
    /// scores are identical to freshly computed ones.
    fn decode_beam(
        &self,
        prompt: &DbPrompt,
        question: &str,
        external_knowledge: Option<&str>,
        demos: &[&Sample],
        beam_cap: Option<usize>,
        mut lm_memo: Option<&mut HashMap<String, f64>>,
    ) -> (Vec<ScoredCandidate>, DbPrompt) {
        let mut intent = extract_intent(question);
        let bucket = intent_bucket(&intent);
        // Domain knowledge: extend the matched values with alias-derived
        // hits from EK text and from SFT-learned alias mappings.
        let mut enriched = prompt.clone();
        self.enrich_values(&mut enriched, question, external_knowledge);
        // Retrieved/aliased values anchor the question to the database even
        // when nothing is quoted verbatim.
        intent.value_hints = enriched.matched_values.len();

        // Which templates can the model even consider? Fine-tuned models
        // use their re-allocated sketch set; otherwise the pre-trained one.
        let mut known: Vec<usize> = match &self.finetuned {
            Some(ft) if !ft.learned_templates.is_empty() => ft.learned_templates.clone(),
            _ => self.pretrained.sketches.known_templates(),
        };

        // Demo-derived boosts (ICL): demonstrations vote for their sketch.
        let mut demo_boost: HashMap<usize, f64> = HashMap::new();
        for demo in demos {
            if let Some(id) = self.catalog.template_of_sql(&demo.sql) {
                let e = demo_boost.entry(id).or_insert(0.0);
                *e += 0.12 * (1.0 - *e); // diminishing returns per extra demo
                if !known.contains(&id) {
                    // A demonstration can surface a shape the model's corpus
                    // lacked — but only a model already fluent in SQL can
                    // absorb structure from a demonstration, and only within
                    // its capacity headroom.
                    let fluent = self.pretrained.sql_log_likelihood(&demo.sql) > -8.5;
                    if fluent && known.len() < self.capacity().sketch_capacity + demos.len() {
                        known.push(id);
                    }
                }
            }
        }

        // Rank templates by intent compatibility + priors + demo votes.
        let mut ranked: Vec<(usize, f64)> = known
            .iter()
            .map(|&id| {
                let mut s = W_TEMPLATE * template_intent_score(id, &intent);
                // Priors disambiguate between intent-compatible sketches but
                // saturate well below a clear intent signal.
                s += W_PRIOR
                    * match &self.finetuned {
                        Some(ft) => {
                            let p = ft.prior(&bucket, id);
                            p / (p + 0.08)
                        }
                        None => {
                            let p = self.pretrained.sketches.prior(id);
                            0.6 * p / (p + 0.08)
                        }
                    };
                if let Some(b) = demo_boost.get(&id) {
                    s += b;
                }
                (id, s)
            })
            .collect();
        // total_cmp: scores come from model arithmetic over untrusted data;
        // a NaN must produce an arbitrary-but-stable order, not a panic.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        // Fill slots for the most promising templates. External knowledge
        // reaches generation through the enriched value matches and the
        // schema filter; appending its raw text to the linking surface
        // would pollute column scores (it names related columns).
        let capacity = self.capacity();
        let ctx = SlotContext::new(&enriched, question, &intent, capacity);
        let mut scored: Vec<ScoredCandidate> = Vec::new();
        // Decision reliability: SQL exposure steadies the ranking (a model
        // that barely saw SQL judges candidates erratically), and task
        // alignment through fine-tuning shrinks the whole variance.
        // Fine-tuning data counts toward exposure only at a steep discount:
        // a few thousand task samples cannot substitute for SQL-centric
        // pre-training (the paper's Table 5/6: SFT Llama2 < SFT CodeS).
        let exposure = self.pretrained.sql_statements_seen
            + self.finetuned.as_ref().map(|ft| ft.total / 10).unwrap_or(0);
        let unfamiliarity = 0.55 / (1.0 + exposure as f64 / 60.0).sqrt();
        let alignment = if self.finetuned.is_some() { 0.6 } else { 1.0 };
        let noise_scale = alignment * (capacity.decision_noise + unfamiliarity);
        for (Candidate { sql, template_id, slot_score }, template_score) in
            fill_ranked(&ctx, &ranked, 12)
        {
            let raw_ll = match lm_memo.as_deref_mut() {
                Some(memo) => match memo.get(&sql) {
                    Some(&ll) => ll,
                    None => {
                        let ll = self.pretrained.sql_log_likelihood(&sql);
                        memo.insert(sql.clone(), ll);
                        ll
                    }
                },
                None => self.pretrained.sql_log_likelihood(&sql),
            };
            let lm = normalize_ll(raw_ll);
            let noise = noise_scale * deterministic_noise(question, &sql);
            let score = template_score + W_SLOT * slot_score + W_LM * lm + noise;
            scored.push(ScoredCandidate { sql, template_id, score, executable: false });
        }
        scored.sort_by(|a, b| b.score.total_cmp(&a.score));
        scored.truncate(capacity.beam_width);
        if let Some(cap) = beam_cap {
            // Deadline degradation: execute only the greedy choice.
            scored.truncate(cap.max(1));
        }
        (scored, enriched)
    }

    /// Add alias-derived value matches: EK text like
    /// `"women refers to client.gender = 'F'"` and SFT-learned mappings.
    fn enrich_values(&self, prompt: &mut DbPrompt, question: &str, ek: Option<&str>) {
        let lower_q = question.to_lowercase();
        let add = |table: String, column: String, value: String, degree: f64, prompt: &mut DbPrompt| {
            let exists = prompt
                .matched_values
                .iter()
                .any(|m| m.table.eq_ignore_ascii_case(&table) && m.column.eq_ignore_ascii_case(&column));
            if !exists && prompt.table(&table).and_then(|t| t.column(&column)).is_some() {
                // Alias matches outrank fuzzy LCS hits: prepend.
                prompt.matched_values.insert(0, ValueMatch { table, column, value, degree });
            }
        };
        if let Some(ek) = ek {
            for (alias, table, column, value) in parse_knowledge(ek) {
                if lower_q.contains(&alias.to_lowercase()) {
                    add(table, column, value, 1.0, prompt);
                }
            }
        }
        if let Some(ft) = &self.finetuned {
            for w in codes_nlp::words(&lower_q) {
                if let Some((t, c, v)) = ft.alias_map.get(&w) {
                    add(t.clone(), c.clone(), v.clone(), 0.95, prompt);
                }
            }
        }
    }
}

/// Execute each beam candidate and mark its `executable` flag, returning
/// the index of the first executable one.
///
/// This is the fault boundary of §9.1.4's "pick the first executable
/// candidate": each candidate runs under `limits` with panic isolation, so
/// a candidate that panics the engine or exhausts its budget is simply
/// marked non-executable and selection moves on to the next — one bad
/// statement can never abort the whole generation.
pub fn select_first_executable(
    db: &Database,
    beam: &mut [ScoredCandidate],
    limits: &ExecLimits,
    retries: u32,
) -> Option<usize> {
    let mut first = None;
    for (i, c) in beam.iter_mut().enumerate() {
        // Pre-price before spending any retry/governor budget: a candidate
        // whose cheapest plan is estimated far beyond the intermediate-row
        // budget is shed with a typed transient error instead of being run
        // (and re-run on retry) to its inevitable budget kill.
        if preprice_query(db, &c.sql, limits).is_err() {
            c.executable = false;
            continue;
        }
        let outcome = with_retry(limits, retries, |attempt_limits| {
            catch_panics(|| execute_query_governed(db, &c.sql, attempt_limits).map(|_| ()))
        });
        c.executable = outcome.is_ok();
        if c.executable && first.is_none() {
            first = Some(i);
        }
    }
    first
}

/// The verdict of [`select_first_executable_batch`] for one member.
#[derive(Debug, Clone)]
pub struct BatchSelection {
    /// Index of the member's first executable candidate, when any.
    pub chosen: Option<usize>,
    /// Wall-clock seconds of candidate execution attributed to this
    /// member (memo hits cost effectively nothing).
    pub selection_seconds: f64,
}

/// Batched first-executable selection: §9.1.4's "pick the first
/// executable candidate" across a whole batch of beams over one database.
///
/// Candidates are walked in rank order, round-robin across members, with
/// two batch economies the solo path cannot have:
///
/// * **per-member early exit** — once a member's first executable
///   candidate is found, its remaining candidates are never executed
///   (their `executable` flags stay `false`), so one member with an
///   expensive tail cannot starve the rest of the batch;
/// * **shared execution verdicts** — members running under the same
///   `(ExecLimits, retries)` budget share a verdict memo keyed by SQL.
///   Execution is deterministic, so a statement one member already tried
///   is not re-executed for another; budgets must match exactly because a
///   budget kill under tight limits says nothing about looser ones.
///
/// Each member's chosen index is identical to what a per-member
/// [`select_first_executable`] would return. The same panic-isolation /
/// budget fault boundary applies per candidate execution.
pub fn select_first_executable_batch(
    db: &Database,
    beams: &mut [Vec<ScoredCandidate>],
    budgets: &[(ExecLimits, u32)],
) -> Vec<BatchSelection> {
    let mut out: Vec<BatchSelection> = beams
        .iter()
        .map(|_| BatchSelection { chosen: None, selection_seconds: 0.0 })
        .collect();
    // One verdict memo per distinct budget; batches are small, so a linear
    // scan beats hashing the limits.
    let mut memos: Vec<(ExecLimits, u32, HashMap<String, bool>)> = Vec::new();
    let width = beams.iter().map(Vec::len).max().unwrap_or(0);
    for pos in 0..width {
        for (m, beam) in beams.iter_mut().enumerate() {
            if out[m].chosen.is_some() || pos >= beam.len() {
                continue;
            }
            let (limits, retries) = budgets[m];
            let started = Instant::now();
            let memo_idx = match memos.iter().position(|(l, r, _)| *l == limits && *r == retries) {
                Some(i) => i,
                None => {
                    memos.push((limits, retries, HashMap::new()));
                    memos.len() - 1
                }
            };
            let c = &mut beam[pos];
            let verdict = match memos[memo_idx].2.get(&c.sql) {
                Some(&v) => v,
                None => {
                    // Pre-pricing is deterministic, so its shed verdict is
                    // memoized exactly like an execution verdict.
                    let ok = preprice_query(db, &c.sql, &limits).is_ok()
                        && with_retry(&limits, retries, |attempt_limits| {
                            catch_panics(|| {
                                execute_query_governed(db, &c.sql, attempt_limits).map(|_| ())
                            })
                        })
                        .is_ok();
                    memos[memo_idx].2.insert(c.sql.clone(), ok);
                    ok
                }
            };
            c.executable = verdict;
            out[m].selection_seconds += started.elapsed().as_secs_f64();
            if verdict {
                out[m].chosen = Some(pos);
            }
        }
    }
    out
}

/// Parse external-knowledge statements of the forms the benchmarks emit:
/// `"<alias> refers to <table>.<column> = '<value>'"`.
pub fn parse_knowledge(ek: &str) -> Vec<(String, String, String, String)> {
    let mut out = Vec::new();
    for clause in ek.split(';') {
        let Some((alias_part, rest)) = clause.split_once(" refers to ") else {
            continue;
        };
        let Some((target, value_part)) = rest.split_once('=') else {
            continue;
        };
        let Some((table, column)) = target.trim().split_once('.') else {
            continue;
        };
        let value = value_part.trim().trim_matches('\'').to_string();
        out.push((
            alias_part.trim().to_string(),
            table.trim().to_string(),
            column.trim().to_string(),
            value,
        ));
    }
    out
}

/// Map an average per-token log2-likelihood (~[-12, -2]) into [0, 1].
fn normalize_ll(ll: f64) -> f64 {
    ((ll + 12.0) / 10.0).clamp(0.0, 1.0)
}

/// Deterministic pseudo-noise in [-1, 1] keyed by (question, sql).
fn deterministic_noise(question: &str, sql: &str) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in question.bytes().chain(sql.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    (h as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Last-resort output when no template fills.
fn fallback_sql(prompt: &DbPrompt) -> String {
    match prompt.tables.first() {
        Some(t) => format!("SELECT COUNT(*) FROM {}", t.name),
        None => "SELECT 1".to_string(),
    }
}

/// Discretize an intent into a bucket key for SFT priors.
pub fn intent_bucket(intent: &Intent) -> String {
    format!(
        "c{}a{}o{}n{}q{}g{}s{}d{}x{}b{}l{}u{}r{}v{}m{}",
        u8::from(intent.wants_count),
        match intent.agg {
            None => 0,
            Some(crate::intent::AggHint::Avg) => 1,
            Some(crate::intent::AggHint::Sum) => 2,
            Some(crate::intent::AggHint::Max) => 3,
            Some(crate::intent::AggHint::Min) => 4,
        },
        u8::from(intent.op.is_some()),
        intent.numbers.len().min(2),
        intent.quoted.len().min(2),
        u8::from(intent.group_by),
        u8::from(intent.superlative_desc || intent.superlative_asc),
        u8::from(intent.distinct),
        u8::from(intent.negation),
        u8::from(intent.between),
        u8::from(intent.contains_like),
        u8::from(intent.null_check),
        u8::from(intent.sorted_listing),
        u8::from(intent.above_average),
        u8::from(intent.most_common),
    )
}

// ---------------------------------------------------------------------------
// Supervised fine-tuning
// ---------------------------------------------------------------------------

/// Fine-tune the model on (question, SQL) pairs over their databases
/// (Eq. 3's SFT objective, realized as learned sketch priors conditioned
/// on intent buckets plus absorbed domain aliases).
pub fn finetune<'a>(
    model: &mut CodesModel,
    samples: impl Iterator<Item = (&'a Sample, &'a Database)>,
) {
    let mut ft = model.finetuned.take().unwrap_or_default();
    let mut alias_votes: HashMap<String, HashMap<(String, String, String), u32>> = HashMap::new();
    let capacity = model.pretrained.capacity;
    for (sample, db) in samples {
        let Some(template_id) = model.catalog.template_of_sql(&sample.sql) else {
            continue;
        };
        let intent = extract_intent(&sample.question);
        let bucket = intent_bucket(&intent);
        *ft.bucket_counts.entry(bucket).or_default().entry(template_id).or_insert(0) += 1;
        *ft.template_counts.entry(template_id).or_insert(0) += 1;
        ft.total += 1;
        // Alias learning: gold predicates whose value the question never
        // mentions must be referenced through some other question word.
        collect_alias_votes(sample, db, &mut alias_votes);
    }
    // Fine-tuning re-allocates sketch capacity toward the training
    // distribution: the most frequent training shapes are learned first,
    // pretraining shapes fill whatever capacity remains. Specializing the
    // whole model to one task stretches the budget by 25% relative to
    // pre-training (where SQL shares capacity with other domains), yet
    // small models still cannot hold every shape — the source of their
    // hard/extra errors after SFT.
    let budget = capacity.sketch_capacity + capacity.sketch_capacity / 4;
    let mut ranked: Vec<(usize, u64)> = ft.template_counts.iter().map(|(id, c)| (*id, *c)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut learned: Vec<usize> = ranked.into_iter().take(budget).map(|(id, _)| id).collect();
    for id in model.pretrained.sketches.known_templates() {
        if learned.len() >= budget {
            break;
        }
        if !learned.contains(&id) {
            learned.push(id);
        }
    }
    ft.learned_templates = learned;
    // Keep alias mappings with at least 2 agreeing votes and a clear winner.
    for (word, votes) in alias_votes {
        let mut ranked: Vec<((String, String, String), u32)> = votes.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1));
        if let Some((mapping, count)) = ranked.first() {
            let runner_up = ranked.get(1).map(|(_, c)| *c).unwrap_or(0);
            if *count >= 2 && *count >= runner_up * 2 {
                ft.alias_map.insert(word, mapping.clone());
            }
        }
    }
    model.finetuned = Some(ft);
}

/// English words too generic to be value aliases.
const STOPWORDS: &[&str] = &[
    "what", "which", "show", "list", "find", "give", "the", "of", "all", "are", "is", "with",
    "whose", "that", "have", "has", "and", "or", "in", "for", "how", "many", "much", "count",
    "number", "average", "total", "maximum", "minimum", "per", "each", "every", "from", "their",
    "there", "between", "than", "more", "less", "least", "most", "highest", "lowest", "sorted",
    "descending", "ascending", "order", "containing", "either", "were", "was", "did", "does",
];

fn collect_alias_votes(
    sample: &Sample,
    db: &Database,
    votes: &mut HashMap<String, HashMap<(String, String, String), u32>>,
) {
    let Ok(query) = sqlengine::parse_query(&sample.sql) else {
        return;
    };
    let lower_q = sample.question.to_lowercase();
    let qwords: Vec<String> = codes_nlp::words(&lower_q)
        .into_iter()
        .filter(|w| w.len() >= 4 && !STOPWORDS.contains(&w.as_str()))
        .collect();
    // Schema words are column references, not value aliases.
    let schema_words: std::collections::HashSet<String> = db
        .tables
        .iter()
        .flat_map(|t| {
            std::iter::once(t.schema.name.clone())
                .chain(t.schema.columns.iter().map(|c| c.name.clone()))
                .chain(t.schema.columns.iter().filter_map(|c| c.comment.clone()))
        })
        .flat_map(|s| codes_nlp::words(&s))
        .collect();
    for (table, column, value) in eq_text_predicates(&query, db) {
        if lower_q.contains(&value.to_lowercase()) {
            continue; // verbatim mention: no alias involved
        }
        for w in &qwords {
            if schema_words.contains(w) {
                continue;
            }
            *votes
                .entry(w.clone())
                .or_default()
                .entry((table.clone(), column.clone(), value.clone()))
                .or_insert(0) += 1;
        }
    }
}

/// `(table, column, value)` for every `col = 'text'` predicate of a query.
fn eq_text_predicates(query: &sqlengine::ast::Query, db: &Database) -> Vec<(String, String, String)> {
    use sqlengine::ast::{Expr, SetExpr};
    let mut out = Vec::new();
    fn walk_set(se: &SetExpr, db: &Database, out: &mut Vec<(String, String, String)>) {
        match se {
            SetExpr::Select(s) => {
                if let Some(sel) = &s.selection {
                    walk(sel, db, out);
                }
                if let Some(h) = &s.having {
                    walk(h, db, out);
                }
            }
            SetExpr::Nested(q) => walk_set(&q.body, db, out),
            SetExpr::SetOp { left, right, .. } => {
                walk_set(left, db, out);
                walk_set(right, db, out);
            }
        }
    }
    fn walk(e: &Expr, db: &Database, out: &mut Vec<(String, String, String)>) {
        match e {
            Expr::Binary { left, op: sqlengine::ast::BinaryOp::Eq, right } => {
                if let (Expr::Column { name, .. }, Expr::Literal(sqlengine::Value::Text(v))) =
                    (left.as_ref(), right.as_ref())
                {
                    // Resolve the column's table by name search.
                    if let Some(t) = db.tables.iter().find(|t| t.schema.column(name).is_some()) {
                        out.push((t.schema.name.clone(), name.clone(), v.clone()));
                    }
                }
            }
            Expr::Binary { left, right, .. } => {
                walk(left, db, out);
                walk(right, db, out);
            }
            Expr::InSubquery { query, .. } => walk_set(&query.body, db, out),
            Expr::Unary { expr, .. } => walk(expr, db, out),
            _ => {}
        }
    }
    walk_set(&query.body, db, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{table4_models, ModelSize};
    use crate::pretrain::{pretrain, PretrainConfig};
    use crate::prompt::{build_prompt, PromptOptions};
    use codes_datasets::finance::bank_financials_db;
    use codes_retrieval::ValueIndex;

    fn model(name: &str) -> CodesModel {
        let catalog = Arc::new(SketchCatalog::build());
        let spec = table4_models().into_iter().find(|m| m.name == name).unwrap();
        let lm = pretrain(&catalog, &spec, &PretrainConfig { scale: 10, seed: 3 });
        CodesModel::new(lm, catalog)
    }

    #[test]
    fn generates_executable_sql_for_simple_question() {
        let m = model("CodeS-7B");
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let q = "How many clients do we have?";
        let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
        let g = m.generate(&db, &prompt, q, None, &[]);
        assert!(sqlengine::execute_query(&db, &g.sql).is_ok(), "{}", g.sql);
        assert!(g.beam.len() <= ModelSize::B7.capacity().beam_width);
        assert!(g.sql.to_uppercase().contains("COUNT"));
    }

    #[test]
    fn ek_aliases_supply_missing_values() {
        let m = model("CodeS-7B");
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let q = "How many clients are women?";
        let ek = "women refers to client.gender = 'F'";
        let prompt = build_prompt(&db, q, Some(ek), None, Some(&idx), &PromptOptions::sft());
        let g = m.generate(&db, &prompt, q, Some(ek), &[]);
        assert!(g.sql.contains("'F'"), "EK should surface the code: {}", g.sql);
    }

    #[test]
    fn parse_knowledge_extracts_mappings() {
        let parsed = parse_knowledge("women refers to client.gender = 'F'; canine refers to pet.pet_type = 'dog'");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("women".into(), "client".into(), "gender".into(), "F".into()));
    }

    #[test]
    fn finetuning_sharpens_priors() {
        let mut m = model("CodeS-3B");
        let db = bank_financials_db(1);
        let train = codes_datasets::finance::test_samples(&db, 60, 77);
        finetune(&mut m, train.iter().map(|s| (s, &db)));
        let ft = m.finetuned.as_ref().unwrap();
        assert!(ft.total > 40);
        // Counting questions should strongly prefer counting templates.
        let intent = extract_intent("How many clients do we have?");
        let bucket = intent_bucket(&intent);
        let _ = bucket;
        assert!(!ft.template_counts.is_empty());
    }

    #[test]
    fn alias_learning_from_training_data() {
        let mut m = model("CodeS-7B");
        let db = bank_financials_db(1);
        // Build a tiny training set where "women" consistently maps to 'F'.
        let mk = |q: &str, sql: &str| codes_datasets::finance::manual_sample(&db, q, sql);
        let train = [mk("How many clients are women?", "SELECT COUNT(*) FROM client WHERE gender = 'F'"),
            mk("List the cities of women clients?", "SELECT city FROM client WHERE gender = 'F'"),
            mk("Count the women with accounts?", "SELECT COUNT(*) FROM client WHERE gender = 'F'")];
        finetune(&mut m, train.iter().map(|s| (s, &db)));
        let ft = m.finetuned.as_ref().unwrap();
        assert!(ft.knows_alias("women"), "alias map: {:?}", ft.alias_map);
        // And generation now uses it without EK.
        let idx = ValueIndex::build(&db);
        let q = "How many clients are women?";
        let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
        let g = m.generate(&db, &prompt, q, None, &[]);
        assert!(g.sql.contains("'F'"), "{}", g.sql);
    }

    #[test]
    fn demos_boost_their_sketch() {
        let m = model("CodeS-7B");
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        // An ambiguous question; a distinct-count demo should pull the model
        // toward COUNT(DISTINCT ...).
        let q = "How many different cities do clients live in?";
        let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::few_shot());
        let demo = codes_datasets::finance::manual_sample(
            &db,
            "How many different branches are there?",
            "SELECT COUNT(DISTINCT branch) FROM account",
        );
        let g = m.generate(&db, &prompt, q, None, &[&demo]);
        assert!(
            g.sql.to_uppercase().contains("DISTINCT"),
            "demo should steer toward COUNT(DISTINCT): {}",
            g.sql
        );
    }

    #[test]
    fn noise_is_deterministic() {
        assert_eq!(deterministic_noise("q", "s"), deterministic_noise("q", "s"));
        assert_ne!(deterministic_noise("q", "s1"), deterministic_noise("q", "s2"));
        let n = deterministic_noise("abc", "def");
        assert!((-1.0..=1.0).contains(&n));
    }

    #[test]
    fn intent_buckets_distinguish_question_kinds() {
        let a = intent_bucket(&extract_intent("How many singers are there?"));
        let b = intent_bucket(&extract_intent("What is the average age of singers?"));
        assert_ne!(a, b);
        let a2 = intent_bucket(&extract_intent("How many stadiums are there?"));
        assert_eq!(a, a2);
    }

    fn candidate(sql: &str, score: f64) -> ScoredCandidate {
        ScoredCandidate { sql: sql.to_string(), template_id: 0, score, executable: false }
    }

    #[test]
    fn budget_killed_candidate_falls_through_to_next() {
        let db = bank_financials_db(1);
        // Candidate 0 cross-joins itself into a budget kill; candidate 1 is
        // cheap and valid. Selection must skip to candidate 1.
        let mut beam = vec![
            candidate("SELECT * FROM client AS a, client AS b, client AS c", 0.9),
            candidate("SELECT COUNT(*) FROM client", 0.8),
        ];
        let limits = sqlengine::ExecLimits {
            max_intermediate_rows: Some(500),
            ..sqlengine::ExecLimits::unlimited()
        };
        let chosen = select_first_executable(&db, &mut beam, &limits, 0);
        assert_eq!(chosen, Some(1));
        assert!(!beam[0].executable, "blowup candidate must be marked non-executable");
        assert!(beam[1].executable);
        // The kill is a budget verdict, not a semantic one: a two-way join
        // of the same shape fits unlimited budgets and stays executable.
        let mut beam2 = vec![candidate("SELECT COUNT(*) FROM client AS a, client AS b", 0.9)];
        assert_eq!(
            select_first_executable(&db, &mut beam2, &ExecLimits::unlimited(), 0),
            Some(0)
        );
    }

    #[test]
    fn panicking_candidate_never_aborts_selection() {
        let db = bank_financials_db(1);
        let mut beam = vec![
            candidate("SELECT __FAULT_PANIC()", 0.9),
            candidate("SELECT COUNT(*) FROM client", 0.8),
        ];
        let chosen = select_first_executable(&db, &mut beam, &ExecLimits::unlimited(), 1);
        assert_eq!(chosen, Some(1), "selection must survive the panicking candidate");
        assert!(!beam[0].executable);
        assert!(beam[1].executable);
    }

    #[test]
    fn batched_selection_agrees_with_solo_and_early_exits() {
        let db = bank_financials_db(1);
        let limits = ExecLimits::unlimited();
        let beam_a = vec![
            candidate("SELECT nonsense FROM nowhere", 0.9),
            candidate("SELECT COUNT(*) FROM client", 0.8),
            candidate("SELECT city FROM client", 0.7),
        ];
        let beam_b = vec![
            candidate("SELECT COUNT(*) FROM client", 0.9),
            candidate("SELECT city FROM client", 0.8),
        ];
        let solo: Vec<Option<usize>> = [&beam_a, &beam_b]
            .into_iter()
            .map(|b| select_first_executable(&db, &mut b.clone(), &limits, 0))
            .collect();

        let mut beams = vec![beam_a, beam_b];
        let batched = select_first_executable_batch(&db, &mut beams, &[(limits, 0), (limits, 0)]);
        for (s, b) in solo.iter().zip(&batched) {
            assert_eq!(*s, b.chosen, "batched choice must agree with solo");
        }
        // Early exit: member A chose index 1, so its index-2 candidate was
        // never executed and keeps executable=false (solo would mark it).
        assert_eq!(batched[0].chosen, Some(1));
        assert!(beams[0][1].executable);
        assert!(!beams[0][2].executable, "post-chosen candidates must not be executed");
        assert!(!beams[0][0].executable);
    }

    #[test]
    fn batched_generation_matches_solo_sql() {
        let mut m = model("CodeS-7B");
        let db = bank_financials_db(1);
        let train = codes_datasets::finance::test_samples(&db, 60, 77);
        finetune(&mut m, train.iter().map(|s| (s, &db)));
        let idx = ValueIndex::build(&db);
        let questions = [
            "How many clients do we have?",
            "What is the average amount of loans?",
            "List the cities of clients?",
            "How many clients do we have?", // duplicate: exercises the memos
        ];
        let cfg = Config::evaluation();
        let started = Instant::now();
        let prompts: Vec<DbPrompt> = questions
            .iter()
            .map(|q| build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft()))
            .collect();
        let items: Vec<GenerationBatchItem> = prompts
            .iter()
            .zip(&questions)
            .map(|(prompt, q)| GenerationBatchItem {
                prompt,
                question: q,
                external_knowledge: None,
                demos: &[],
                config: &cfg,
                started,
            })
            .collect();
        let batched = m.generate_governed_batch(&db, &items);
        assert_eq!(batched.len(), questions.len());
        for (i, (prompt, q)) in prompts.iter().zip(&questions).enumerate() {
            let solo = m.generate_governed(&db, prompt, q, None, &[], &cfg, started);
            assert_eq!(batched[i].sql, solo.sql, "member {i} ({q}) diverged from solo");
        }
    }

    #[test]
    fn spent_deadline_truncates_beam_to_greedy() {
        let m = model("CodeS-7B");
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let q = "How many clients do we have?";
        let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
        // A zero deadline is always nearly spent: generation degrades to
        // the greedy single candidate but still answers.
        let cfg = Config {
            inference_deadline: Some(std::time::Duration::ZERO),
            ..Config::evaluation()
        };
        let g = m.generate_governed(&db, &prompt, q, None, &[], &cfg, Instant::now());
        assert_eq!(g.beam.len(), 1, "beam must degrade to greedy");
        assert!(sqlengine::execute_query(&db, &g.sql).is_ok(), "{}", g.sql);
        // With a generous deadline the beam keeps its width.
        let full = m.generate_governed(
            &db,
            &prompt,
            q,
            None,
            &[],
            &Config::evaluation(),
            Instant::now(),
        );
        assert!(full.beam.len() > 1, "undegraded beam should keep multiple candidates");
    }
}
