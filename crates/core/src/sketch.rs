//! SQL sketches: anonymized query skeletons.
//!
//! The simulated model's "knowledge of SQL shapes" is a sketch library
//! mined from its pre-training corpus. A sketch abstracts a query down to
//! its clause structure (identifiers → `t`/`c`, literals → `v`, aggregates
//! → `agg`, comparisons → `cmp`), so two queries generated from the same
//! template share a sketch. A model can only generate queries whose sketch
//! it has seen, and its capacity caps how many sketches it retains — the
//! mechanism behind the pre-training and scale effects of Table 4.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlengine::ast::{
    BinaryOp, Expr, Query, Select, SelectItem, SetExpr, SetOpKind, TableFactor,
};
use sqlengine::parse_query;

/// Extract the sketch of a SQL query; `None` if it does not parse.
pub fn sketch_of(sql: &str) -> Option<String> {
    let q = parse_query(sql).ok()?;
    Some(sketch_query(&q))
}

fn sketch_query(q: &Query) -> String {
    let mut s = sketch_set(&q.body);
    if !q.order_by.is_empty() {
        s.push_str(" order by ");
        let keys: Vec<String> = q.order_by.iter().map(|o| format!("{} dir", sketch_expr(&o.expr))).collect();
        s.push_str(&keys.join(" , "));
    }
    if q.limit.is_some() {
        s.push_str(" limit v");
    }
    if q.offset.is_some() {
        s.push_str(" offset v");
    }
    s
}

fn sketch_set(se: &SetExpr) -> String {
    match se {
        SetExpr::Select(sel) => sketch_select(sel),
        SetExpr::Nested(q) => format!("( {} )", sketch_query(q)),
        SetExpr::SetOp { op, left, right, .. } => {
            let kw = match op {
                SetOpKind::Union => "union",
                SetOpKind::Intersect => "intersect",
                SetOpKind::Except => "except",
            };
            format!("{} {kw} {}", sketch_set(left), sketch_set(right))
        }
    }
}

fn sketch_select(s: &Select) -> String {
    let mut out = String::from("select ");
    if s.distinct {
        out.push_str("distinct ");
    }
    let proj: Vec<String> = s
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => "*".to_string(),
            SelectItem::Expr { expr, .. } => sketch_expr(expr),
        })
        .collect();
    out.push_str(&proj.join(" , "));
    if let Some(from) = &s.from {
        out.push_str(" from ");
        out.push_str(&sketch_factor(&from.base));
        for j in &from.joins {
            out.push_str(" join ");
            out.push_str(&sketch_factor(&j.factor));
            if let Some(on) = &j.on {
                out.push_str(" on ");
                out.push_str(&sketch_expr(on));
            }
        }
    }
    if let Some(sel) = &s.selection {
        out.push_str(" where ");
        out.push_str(&sketch_expr(sel));
    }
    if !s.group_by.is_empty() {
        out.push_str(" group by ");
        let keys: Vec<String> = s.group_by.iter().map(sketch_expr).collect();
        out.push_str(&keys.join(" , "));
    }
    if let Some(h) = &s.having {
        out.push_str(" having ");
        out.push_str(&sketch_expr(h));
    }
    out
}

fn sketch_factor(f: &TableFactor) -> String {
    match f {
        TableFactor::Table { .. } => "t".to_string(),
        TableFactor::Derived { subquery, .. } => format!("( {} )", sketch_query(subquery)),
    }
}

fn sketch_expr(e: &Expr) -> String {
    match e {
        Expr::Column { .. } => "c".to_string(),
        Expr::Literal(_) => "v".to_string(),
        Expr::Unary { expr, .. } => format!("not {}", sketch_expr(expr)),
        Expr::Binary { left, op, right } => {
            let op_str = match op {
                BinaryOp::Eq => "=",
                BinaryOp::NotEq => "!=",
                BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => "cmp",
                BinaryOp::And => "and",
                BinaryOp::Or => "or",
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => "arith",
                BinaryOp::Concat => "concat",
            };
            format!("{} {op_str} {}", sketch_expr(left), sketch_expr(right))
        }
        Expr::Function { name, args, distinct, star } => {
            if *star {
                return "count ( * )".to_string();
            }
            let fname = match name.as_str() {
                "AVG" | "SUM" | "MAX" | "MIN" | "TOTAL" => "agg",
                "COUNT" => "count",
                _ => "fn",
            };
            let inner: Vec<String> = args.iter().map(sketch_expr).collect();
            format!(
                "{fname} ( {}{} )",
                if *distinct { "distinct " } else { "" },
                inner.join(" , ")
            )
        }
        Expr::Case { .. } => "case".to_string(),
        Expr::InList { expr, negated, .. } => {
            format!("{} {}in ( v )", sketch_expr(expr), if *negated { "not " } else { "" })
        }
        Expr::InSubquery { expr, query, negated } => format!(
            "{} {}in ( {} )",
            sketch_expr(expr),
            if *negated { "not " } else { "" },
            sketch_query(query)
        ),
        Expr::ScalarSubquery(q) => format!("( {} )", sketch_query(q)),
        Expr::Exists { query, negated } => format!(
            "{}exists ( {} )",
            if *negated { "not " } else { "" },
            sketch_query(query)
        ),
        Expr::Between { expr, negated, .. } => {
            format!("{} {}between v and v", sketch_expr(expr), if *negated { "not " } else { "" })
        }
        Expr::Like { expr, negated, .. } => {
            format!("{} {}like v", sketch_expr(expr), if *negated { "not " } else { "" })
        }
        Expr::IsNull { expr, negated } => {
            format!("{} is {}null", sketch_expr(expr), if *negated { "not " } else { "" })
        }
        Expr::Cast { expr, .. } => format!("cast ( {} )", sketch_expr(expr)),
    }
}

/// Maps sketches to the template ids of the generation grammar.
#[derive(Debug, Clone)]
pub struct SketchCatalog {
    by_sketch: HashMap<String, usize>,
}

impl SketchCatalog {
    /// Build the catalog by instantiating every template on reference
    /// databases and recording its sketches. Deterministic.
    pub fn build() -> SketchCatalog {
        let mut by_sketch = HashMap::new();
        let specs = codes_datasets::domains();
        let dbs: Vec<sqlengine::Database> = specs
            .iter()
            .take(6)
            .enumerate()
            .map(|(i, spec)| {
                codes_datasets::generate_database(spec, &codes_datasets::DbGenConfig::spider(), 7_000 + i as u64)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(424_242);
        for id in 0..codes_datasets::TEMPLATE_COUNT {
            for db in &dbs {
                for _ in 0..6 {
                    if let Some(s) = codes_datasets::instantiate(id, db, &mut rng, false) {
                        if let Some(sketch) = sketch_of(&s.sql) {
                            by_sketch.entry(sketch).or_insert(id);
                        }
                    }
                }
            }
        }
        SketchCatalog { by_sketch }
    }

    /// The template id a sketch belongs to (sketches colliding between
    /// templates map to the first-registered template).
    pub fn template_of(&self, sketch: &str) -> Option<usize> {
        self.by_sketch.get(sketch).copied()
    }

    /// Template id of a SQL string.
    pub fn template_of_sql(&self, sql: &str) -> Option<usize> {
        self.template_of(&sketch_of(sql)?)
    }

    /// Number of distinct sketches registered.
    pub fn len(&self) -> usize {
        self.by_sketch.len()
    }

    /// True when no sketches are registered.
    pub fn is_empty(&self) -> bool {
        self.by_sketch.is_empty()
    }
}

/// A model's retained sketch knowledge: template-id frequencies mined from
/// its pre-training corpus, truncated to capacity.
#[derive(Debug, Clone, Default)]
pub struct SketchLibrary {
    /// template id -> observation count
    counts: HashMap<usize, u64>,
    total: u64,
}

impl SketchLibrary {
    /// Mine sketches from corpus documents; keep the `capacity` most
    /// frequent templates.
    pub fn mine(catalog: &SketchCatalog, documents: &[&str], capacity: usize) -> SketchLibrary {
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for doc in documents {
            for sql in extract_sql(doc) {
                if let Some(id) = catalog.template_of_sql(&sql) {
                    *counts.entry(id).or_insert(0) += 1;
                }
            }
        }
        let mut ranked: Vec<(usize, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(capacity);
        let total = ranked.iter().map(|(_, c)| c).sum();
        SketchLibrary { counts: ranked.into_iter().collect(), total }
    }

    /// Whether the library retained this template's sketch.
    pub fn knows(&self, template_id: usize) -> bool {
        self.counts.contains_key(&template_id)
    }

    /// Smoothed prior probability of a template.
    pub fn prior(&self, template_id: usize) -> f64 {
        let c = self.counts.get(&template_id).copied().unwrap_or(0) as f64;
        (c + 0.1) / (self.total as f64 + 0.1 * codes_datasets::TEMPLATE_COUNT as f64)
    }

    /// The retained template ids, ascending.
    pub fn known_templates(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self.counts.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of retained templates.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Merge another library (incremental pre-training) then re-truncate.
    pub fn absorb(&mut self, other: &SketchLibrary, capacity: usize) {
        for (id, c) in &other.counts {
            *self.counts.entry(*id).or_insert(0) += c;
        }
        let mut ranked: Vec<(usize, u64)> = self.counts.drain().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(capacity);
        self.total = ranked.iter().map(|(_, c)| c).sum();
        self.counts = ranked.into_iter().collect();
    }
}

/// Pull SQL statements out of a pre-training document (documents are
/// either bare SQL, `-- question:` + SQL pairs, or non-SQL).
pub fn extract_sql(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in doc.lines() {
        let trimmed = line.trim();
        if trimmed.to_lowercase().starts_with("select") {
            out.push(trimmed.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_template_same_sketch() {
        let a = sketch_of("SELECT name FROM singer WHERE age > 30").unwrap();
        let b = sketch_of("SELECT title FROM movie WHERE rating > 7.5").unwrap();
        assert_eq!(a, b);
        let c = sketch_of("SELECT name FROM singer WHERE country = 'France'").unwrap();
        assert_ne!(a, c); // cmp vs '='
    }

    #[test]
    fn sketches_anonymize_but_keep_structure() {
        let s = sketch_of(
            "SELECT T2.name, COUNT(*) FROM concert AS T1 JOIN stadium AS T2 ON T1.sid = T2.sid GROUP BY T2.name ORDER BY COUNT(*) DESC LIMIT 1",
        )
        .unwrap();
        assert_eq!(
            s,
            "select c , count ( * ) from t join t on c = c group by c order by count ( * ) dir limit v"
        );
    }

    #[test]
    fn catalog_covers_most_templates() {
        let catalog = SketchCatalog::build();
        let covered: std::collections::HashSet<usize> =
            catalog.by_sketch.values().copied().collect();
        assert!(
            covered.len() >= codes_datasets::TEMPLATE_COUNT - 4,
            "only {} templates covered",
            covered.len()
        );
    }

    #[test]
    fn library_mining_respects_capacity() {
        let catalog = SketchCatalog::build();
        let docs = codes_corpus::sql_documents(150, 5);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let big = SketchLibrary::mine(&catalog, &refs, 40);
        let small = SketchLibrary::mine(&catalog, &refs, 8);
        assert!(big.len() > small.len());
        assert!(small.len() <= 8);
        // The small library keeps the most frequent templates.
        for id in small.known_templates() {
            assert!(big.knows(id));
        }
    }

    #[test]
    fn priors_sum_below_one_and_favor_frequent() {
        let catalog = SketchCatalog::build();
        let docs = codes_corpus::sql_documents(200, 6);
        let refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let lib = SketchLibrary::mine(&catalog, &refs, 40);
        let total: f64 = (0..codes_datasets::TEMPLATE_COUNT).map(|id| lib.prior(id)).sum();
        assert!(total <= 1.05);
        let known = lib.known_templates();
        if let Some(&k) = known.first() {
            let unknown = (0..codes_datasets::TEMPLATE_COUNT).find(|id| !lib.knows(*id));
            if let Some(u) = unknown {
                assert!(lib.prior(k) > lib.prior(u));
            }
        }
    }

    #[test]
    fn absorb_models_incremental_pretraining() {
        let catalog = SketchCatalog::build();
        let base_docs = codes_corpus::sql_documents(20, 7);
        let sql_docs = codes_corpus::sql_documents(200, 8);
        let base_refs: Vec<&str> = base_docs.iter().map(String::as_str).collect();
        let sql_refs: Vec<&str> = sql_docs.iter().map(String::as_str).collect();
        let mut base = SketchLibrary::mine(&catalog, &base_refs, 40);
        let before = base.len();
        let increment = SketchLibrary::mine(&catalog, &sql_refs, 40);
        base.absorb(&increment, 40);
        assert!(base.len() >= before);
    }

    #[test]
    fn extract_sql_finds_queries_in_pairs() {
        let doc = "-- question : how many users\nselect count ( * ) from users";
        assert_eq!(extract_sql(doc).len(), 1);
        assert!(extract_sql("def foo(): pass").is_empty());
    }
}
