//! The unified inference request type.
//!
//! [`InferenceRequest`] collapses the three entry points that used to
//! overlap — `CodesSystem::infer(db, question, ek)`, `infer_with(.., config)`
//! and the serving runtime's own `Request` struct — into one builder that
//! [`crate::CodesSystem::infer`], [`crate::CodesSystem::infer_batch`] and
//! the pool's `submit` all consume. A request carries everything that is a
//! property of the *request* (question, knowledge, deadline, config
//! override); the database handle stays a separate argument to the direct
//! inference calls because only the serving layer routes by `db_id`.

use std::time::Duration;

use crate::config::Config;

/// One text-to-SQL request, shared by direct inference and the serving
/// runtime.
#[derive(Debug, Clone)]
pub struct InferenceRequest {
    /// Target database name. Used by the serving pool for routing, breaker
    /// keying and batch formation; informational for direct `infer` calls
    /// (which receive the `Database` handle explicitly).
    pub db_id: String,
    /// Natural-language question.
    pub question: String,
    /// Optional external knowledge / evidence string (BIRD-style).
    pub external_knowledge: Option<String>,
    /// Total time budget for this request. Under the pool this covers
    /// queue wait + inference and defaults to `ServeConfig::default_deadline`;
    /// for direct calls it clamps the resolved [`Config`]'s deadlines.
    pub deadline: Option<Duration>,
    /// Per-request [`Config`] override; `None` uses the system's (or the
    /// pool's) base configuration.
    pub config: Option<Config>,
}

impl InferenceRequest {
    /// A plain request: system/pool default config and deadline.
    pub fn new(db_id: impl Into<String>, question: impl Into<String>) -> InferenceRequest {
        InferenceRequest {
            db_id: db_id.into(),
            question: question.into(),
            external_knowledge: None,
            deadline: None,
            config: None,
        }
    }

    /// Attach an external-knowledge / evidence string.
    pub fn with_knowledge(mut self, knowledge: impl Into<String>) -> InferenceRequest {
        self.external_knowledge = Some(knowledge.into());
        self
    }

    /// Override the runtime [`Config`] for this request only.
    pub fn with_config(mut self, config: Config) -> InferenceRequest {
        self.config = Some(config);
        self
    }

    /// Set a total time budget for this request.
    pub fn with_deadline(mut self, deadline: Duration) -> InferenceRequest {
        self.deadline = Some(deadline);
        self
    }

    /// The external knowledge as a borrowed `Option<&str>`.
    pub fn knowledge(&self) -> Option<&str> {
        self.external_knowledge.as_deref()
    }

    /// The effective [`Config`] for this request: the request's own
    /// override when present, otherwise `default`, with the request
    /// deadline (when set) clamped in via [`Config::clamped_to_deadline`].
    pub fn resolved_config(&self, default: &Config) -> Config {
        let base = self.config.unwrap_or(*default);
        match self.deadline {
            Some(deadline) => base.clamped_to_deadline(deadline),
            None => base,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_every_field() {
        let req = InferenceRequest::new("bank", "How many clients?")
            .with_knowledge("women refers to client.gender = 'F'")
            .with_config(Config::serving())
            .with_deadline(Duration::from_millis(750));
        assert_eq!(req.db_id, "bank");
        assert_eq!(req.question, "How many clients?");
        assert_eq!(req.knowledge(), Some("women refers to client.gender = 'F'"));
        assert_eq!(req.config, Some(Config::serving()));
        assert_eq!(req.deadline, Some(Duration::from_millis(750)));
    }

    #[test]
    fn resolved_config_prefers_override_and_clamps_deadline() {
        let system_default = Config::evaluation();
        let plain = InferenceRequest::new("db", "q");
        assert_eq!(plain.resolved_config(&system_default), system_default);

        let overridden = InferenceRequest::new("db", "q").with_config(Config::serving());
        assert_eq!(overridden.resolved_config(&system_default), Config::serving());

        let tight = InferenceRequest::new("db", "q").with_deadline(Duration::from_millis(100));
        let resolved = tight.resolved_config(&system_default);
        assert_eq!(resolved.inference_deadline, Some(Duration::from_millis(100)));
        assert_eq!(resolved.exec_limits.deadline, Some(Duration::from_millis(100)));
    }
}
