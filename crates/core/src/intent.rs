//! Question-intent extraction: the cues the generation grammar consults
//! when ranking SQL sketches and filling slots.

use codes_nlp::words;

/// Aggregate hint detected in the question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggHint {
    /// "average"/"mean".
    Avg,
    /// "total"/"sum".
    Sum,
    /// "maximum"/"highest".
    Max,
    /// "minimum"/"lowest".
    Min,
}

impl AggHint {
    /// The SQL aggregate function name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggHint::Avg => "AVG",
            AggHint::Sum => "SUM",
            AggHint::Max => "MAX",
            AggHint::Min => "MIN",
        }
    }
}

/// Comparison hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpHint {
    /// "more than".
    Gt,
    /// "less than".
    Lt,
    /// "at least".
    Ge,
    /// "at most".
    Le,
}

impl OpHint {
    /// The SQL comparison operator.
    pub fn sql(&self) -> &'static str {
        match self {
            OpHint::Gt => ">",
            OpHint::Lt => "<",
            OpHint::Ge => ">=",
            OpHint::Le => "<=",
        }
    }
}

/// All intent signals mined from a question.
#[derive(Debug, Clone, Default, PartialEq)]
#[allow(missing_docs)] // boolean cue flags named after their trigger phrases
pub struct Intent {
    pub wants_count: bool,
    pub agg: Option<AggHint>,
    pub op: Option<OpHint>,
    /// "highest"/"most" — descending superlative.
    pub superlative_desc: bool,
    /// "lowest"/"least" — ascending superlative.
    pub superlative_asc: bool,
    pub group_by: bool,
    pub distinct: bool,
    pub negation: bool,
    pub disjunction: bool,
    pub between: bool,
    pub contains_like: bool,
    pub null_check: bool,
    pub sorted_listing: bool,
    pub above_average: bool,
    /// Numbers verbalized in the question (as written).
    pub numbers: Vec<String>,
    /// Quoted spans in the question.
    pub quoted: Vec<String>,
    /// Multiple entities joined by "and" in the selection ("X and Y of").
    pub pair_projection: bool,
    pub wants_all_info: bool,
    pub most_common: bool,
    pub per_group_count_phrases: bool,
    /// "with the highest X" — asks for a row at an extremum.
    pub argmax_phrase: bool,
    /// "equals the minimum" / "equal to the maximum" — extremum subquery.
    pub extremum_equality: bool,
    /// "values appear in ..." — group-frequency phrasing.
    pub appears: bool,
    /// "belong to" — child-of-parent counting.
    pub belongs: bool,
    /// "that have" — parents filtered by child properties.
    pub that_have: bool,
    /// "has the most" — join argmax phrasing.
    pub has_the_most: bool,
    /// "do not appear" — anti-join phrasing.
    pub not_appear: bool,
    /// "and also" — conjunctive double condition (intersect phrasing).
    pub also: bool,
    /// "linked through" — explicit two-hop phrasing.
    pub linked_through: bool,
    /// Value hints available outside the question text (retrieved values,
    /// EK aliases) — set by the model after prompt enrichment.
    pub value_hints: usize,
}

impl Intent {
    /// Whether the question is anchored to a concrete database value.
    pub fn has_value(&self) -> bool {
        !self.quoted.is_empty() || self.value_hints > 0
    }

    /// A "plain listing" question: no aggregation/filter/sort signals.
    pub fn plain(&self) -> bool {
        !self.wants_count
            && self.agg.is_none()
            && self.op.is_none()
            && !self.has_value()
            && self.numbers.is_empty()
            && !self.group_by
            && !self.distinct
            && !self.negation
            && !self.between
            && !self.contains_like
            && !self.null_check
            && !self.sorted_listing
            && !self.above_average
            && !self.most_common
            && !self.superlative_desc
            && !self.superlative_asc
            && !self.wants_all_info
            && !self.argmax_phrase
    }
}

/// Extract intent signals from a question (and optional EK text).
pub fn extract_intent(question: &str) -> Intent {
    let lower = question.to_lowercase();
    let ws = words(&lower);
    let has = |needle: &str| lower.contains(needle);
    let word = |w: &str| ws.iter().any(|x| x == w);

    let mut intent = Intent {
        // Word-level where substrings would misfire ("count" in "country").
        wants_count: has("how many")
            || word("count")
            || word("counts")
            || has("number of")
            || has("what number of"),
        ..Intent::default()
    };

    intent.agg = if word("average") || word("mean") || word("typical") {
        Some(AggHint::Avg)
    } else if word("total") || word("sum") || word("overall") {
        Some(AggHint::Sum)
    } else if word("maximum") || word("highest") || word("greatest") || word("top") || word("largest") {
        Some(AggHint::Max)
    } else if word("minimum") || word("lowest") || word("smallest") || word("least") {
        Some(AggHint::Min)
    } else {
        None
    };

    intent.op = if has("more than")
        || has("greater than")
        || word("over")
        || word("above")
        || word("exceeding")
    {
        Some(OpHint::Gt)
    } else if has("less than") || word("below") || word("under") || word("beneath") || has("lower than") {
        Some(OpHint::Lt)
    } else if has("at least") || has("no less than") || has("a minimum of") {
        Some(OpHint::Ge)
    } else if has("at most") || has("no more than") || has("a maximum of") {
        Some(OpHint::Le)
    } else if word("after") || word("since") {
        // Temporal comparisons over year-like columns.
        Some(OpHint::Gt)
    } else if word("before") {
        Some(OpHint::Lt)
    } else {
        None
    };

    intent.superlative_desc = word("highest") || has("the most") || word("largest") || word("greatest") || word("top");
    intent.superlative_asc = has("lowest") || has("the least") || has("smallest") || has("fewest");
    // "per" signals grouping, except in unit phrases ("miles per gallon").
    let per_unit = has("per gallon") || has("per share") || has("percent") || has("per cent") || has("per capita");
    intent.group_by = has("for each") || (has("per ") && !per_unit) || has(" each ") || has("groups of") || has("per,");
    intent.distinct = word("distinct") || word("different") || word("unique");
    intent.negation = has(" no ") || has("not ") || has("without") || has("do not") || has(" missing");
    intent.disjunction = has(" either ") || has(" or ");
    intent.between = word("between");
    intent.contains_like = word("containing") || word("contains") || has("include");
    intent.null_check = has("missing a") || has("have a known") || has("unknown");
    intent.sorted_listing = word("sorted") || has("descending order") || has("ascending order")
        || has("most to least") || has("most numerous first") || has("most recent first");
    intent.above_average = has("above-average") || has("above average") || has("below average");
    intent.most_common = has("most common") || has("most numerous");
    intent.per_group_count_phrases = has("how many") && intent.group_by;
    intent.wants_all_info = has("all information") || has("every detail");
    intent.pair_projection = has(" and ");
    intent.argmax_phrase = has("with the highest")
        || has("with the lowest")
        || has("that has the")
        || has("has the highest")
        || has("has the lowest")
        || has("with the largest")
        || has("with the smallest");
    intent.extremum_equality = has("equals the minimum") || has("equal to the maximum");
    intent.appears = word("appear") || word("appears");
    intent.belongs = has("belong to");
    intent.that_have = has("that have");
    intent.has_the_most = has("has the most") || has("have the most") || has("has written the most") || has("has published the most");
    intent.not_appear = has("do not appear") || has("not appear");
    intent.also = has("also");
    intent.linked_through = has("linked through");

    // Numbers: bare numeric tokens (with decimals).
    let mut chars = lower.chars().peekable();
    let mut current = String::new();
    while let Some(c) = chars.next() {
        if c.is_ascii_digit() || (c == '.' && !current.is_empty() && chars.peek().is_some_and(|n| n.is_ascii_digit())) {
            current.push(c);
        } else if !current.is_empty() {
            intent.numbers.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        intent.numbers.push(current);
    }

    // Quoted spans.
    let mut rest = question;
    while let Some(start) = rest.find('\'') {
        let after = &rest[start + 1..];
        match after.find('\'') {
            Some(end) => {
                intent.quoted.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }

    intent
}

/// How compatible each generation template is with the intent. The base
/// compatibility is the simulated model's "pre-trained reasoning": learned
/// priors (SFT) and demonstrations (ICL) are layered on top by the model.
///
/// Design: each template scores through a *characteristic conjunction* of
/// signals, so templates compete on distinguishing cues rather than on
/// accumulated generic bonuses. Near-miss templates score in the same
/// range; slot quality, LM fluency and (for small models) noise decide
/// between them — which is where the benchmark error rates come from.
pub fn template_intent_score(template_id: usize, intent: &Intent) -> f64 {
    let val = intent.has_value();
    let num = !intent.numbers.is_empty();
    let two_nums = intent.numbers.len() >= 2;
    let agg = intent.agg.is_some();
    let op = intent.op.is_some();
    let cnt = intent.wants_count;
    let sup = intent.superlative_desc || intent.superlative_asc;
    let b = |cond: bool| if cond { 1.0 } else { 0.0 };
    let raw: f64 = match template_id {
        // -- easy
        0 => 2.2 * b(cnt && !val && !agg && !intent.group_by && !intent.distinct && !intent.null_check && !intent.negation && !op && !num),
        1 => 1.3 * b(intent.plain() && !intent.pair_projection),
        2 => 1.6 * b(intent.plain() && intent.pair_projection),
        3 => 2.5 * b(intent.wants_all_info),
        4 => 2.0 * b(intent.distinct && !cnt),
        5 => 1.7 * b(val && !cnt && !agg && !num && !intent.disjunction && !intent.group_by && !intent.contains_like && !sup),
        6 => 1.7 * b(op && num && !val && !cnt && !agg && !intent.group_by && !intent.between && !intent.appears && !intent.that_have && !intent.sorted_listing),
        7 => 1.9 * b(cnt && val && !intent.belongs && !intent.group_by && !intent.distinct && !intent.null_check),
        8 => 1.8 * b(agg && !val && !cnt && !num && !intent.group_by && !intent.argmax_phrase && !intent.above_average && !intent.extremum_equality),
        9 => 2.0 * b(intent.argmax_phrase && !num && !cnt && !intent.group_by && !intent.extremum_equality),
        // -- medium
        10 => 1.9 * b(agg && val && !cnt && !intent.group_by),
        11 => 1.9 * b(val && op && num && !cnt && !agg && !intent.disjunction),
        12 => 1.9 * b(cnt && intent.group_by && !intent.sorted_listing && !val && !num),
        13 => 1.9 * b(agg && intent.group_by && !cnt && !num),
        14 => 2.0 * b(intent.appears && op && num),
        15 => 2.2 * b(intent.most_common),
        16 => 2.0 * b(intent.argmax_phrase && num && !cnt),
        17 => 2.2 * b(cnt && intent.distinct),
        18 => 2.1 * b(intent.between && num),
        19 => 2.1 * b(intent.contains_like),
        20 => 2.1 * b(intent.null_check && cnt),
        21 => 1.5 * b(val && !cnt && !agg && !intent.group_by && !intent.disjunction && !num),
        22 => 1.6 * b(cnt && val) + 0.8 * b(intent.belongs),
        // -- hard
        23 => 1.7 * b(cnt && intent.group_by && !intent.sorted_listing),
        24 => 2.1 * b(intent.has_the_most && !intent.most_common),
        25 => 1.7 * b(agg && val && !cnt),
        26 => 2.4 * b(intent.above_average),
        27 => 1.9 * b(intent.that_have && op && num),
        28 => 2.0 * b(intent.negation && !val && !intent.not_appear && !op),
        29 => 2.1 * b(intent.disjunction && val && !op),
        30 => 1.9 * b(intent.sorted_listing && !cnt && !intent.group_by),
        31 => 1.9 * b(intent.group_by && agg && op && num),
        32 => 2.0 * b(cnt && intent.group_by && intent.sorted_listing && !op),
        // -- extra
        33 => 1.9 * b(intent.disjunction && val && op && num),
        34 => 1.9 * b(op && two_nums && !intent.between && intent.also),
        35 => 2.2 * b(intent.not_appear),
        36 => 1.5 * b(op && num && !val && !intent.that_have && !intent.appears && !cnt && !agg && !intent.group_by),
        37 => 2.0 * b(intent.linked_through) + 0.2 * b(val),
        38 => 2.3 * b(intent.extremum_equality),
        39 => 2.1 * b(cnt && intent.sorted_listing && op && num),
        40 => 2.0 * b(cnt && op && num && !val && !intent.group_by && !intent.distinct && !intent.appears && !intent.sorted_listing),
        _ => 0.0,
    };
    raw / 2.5 // squash into [0, 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_questions() {
        let i = extract_intent("How many singers are there?");
        assert!(i.wants_count);
        assert!(i.agg.is_none());
        assert!(template_intent_score(0, &i) > template_intent_score(1, &i));
    }

    #[test]
    fn aggregate_detection() {
        assert_eq!(extract_intent("What is the average age of singers?").agg, Some(AggHint::Avg));
        assert_eq!(extract_intent("What is the total capacity?").agg, Some(AggHint::Sum));
        assert_eq!(extract_intent("the maximum salary").agg, Some(AggHint::Max));
        assert_eq!(extract_intent("the lowest price").agg, Some(AggHint::Min));
    }

    #[test]
    fn operator_detection() {
        assert_eq!(extract_intent("singers with age more than 30").op, Some(OpHint::Gt));
        assert_eq!(extract_intent("price less than 10").op, Some(OpHint::Lt));
        assert_eq!(extract_intent("at least 3 concerts").op, Some(OpHint::Ge));
        assert_eq!(extract_intent("at most 5 pets").op, Some(OpHint::Le));
    }

    #[test]
    fn numbers_and_quotes_extracted() {
        let i = extract_intent("Singers born in 1948 or 1949 named 'Joe Sharp'");
        assert_eq!(i.numbers, vec!["1948", "1949"]);
        assert_eq!(i.quoted, vec!["Joe Sharp"]);
        assert!(i.disjunction);
    }

    #[test]
    fn decimal_numbers() {
        let i = extract_intent("rated above 7.5 stars");
        assert_eq!(i.numbers, vec!["7.5"]);
    }

    #[test]
    fn superlative_and_group() {
        let i = extract_intent("Which country is most common among singers?");
        assert!(i.most_common);
        assert!(template_intent_score(15, &i) > template_intent_score(9, &i));
        let i2 = extract_intent("For each country, how many singers are there?");
        assert!(i2.group_by && i2.wants_count);
        assert!(template_intent_score(12, &i2) > template_intent_score(0, &i2));
    }

    #[test]
    fn between_and_like() {
        assert!(extract_intent("ages between 20 and 30").between);
        assert!(extract_intent("names containing 'smith'").contains_like);
    }

    #[test]
    fn above_average_routes_to_template_26() {
        let i = extract_intent("Show singers with above-average age");
        assert!(i.above_average);
        let best = (0..codes_datasets::TEMPLATE_COUNT)
            .max_by(|&a, &b| {
                template_intent_score(a, &i)
                    .partial_cmp(&template_intent_score(b, &i))
                    .unwrap()
            })
            .unwrap();
        assert_eq!(best, 26);
    }

    #[test]
    fn scores_are_bounded() {
        let i = extract_intent("show the names of all singers sorted by age in descending order");
        for id in 0..codes_datasets::TEMPLATE_COUNT {
            let s = template_intent_score(id, &i);
            assert!((0.0..=1.0).contains(&s), "template {id}: {s}");
        }
    }
}
