//! Incremental pre-training (§5).
//!
//! A [`PretrainedLm`] bundles everything a simulated language model learns
//! from its corpus: a BPE tokenizer, an n-gram token LM, a sketch library
//! (which SQL shapes it has seen) and a sentence embedder. CodeS models
//! start from the StarCoder corpus and *absorb* the SQL-centric corpus —
//! SQL-related documents are seen twice, NL and NL-to-code once, matching
//! the epoch schedule of §5.2.

use codes_corpus::{build_corpus, normalize_sql, Corpus, CorpusConfig, Slice};
use codes_nlp::{Bpe, Embedder, EmbedderBuilder, NgramLm};

use crate::config::{Capacity, CorpusLineage, LmSpec, ModelSize};
use crate::sketch::{extract_sql, SketchCatalog, SketchLibrary};

/// A pre-trained simulated language model.
pub struct PretrainedLm {
    /// Display name (e.g. "CodeS-7B").
    pub name: String,
    /// Capacity tier.
    pub size: ModelSize,
    /// Corpus lineage the model was trained on.
    pub lineage: CorpusLineage,
    /// The capacity knobs in effect.
    pub capacity: Capacity,
    /// Trained BPE tokenizer.
    pub bpe: Bpe,
    /// N-gram token language model.
    pub lm: NgramLm,
    /// Retained SQL sketch knowledge.
    pub sketches: SketchLibrary,
    /// Fitted sentence embedder (demonstration retrieval).
    pub embedder: Embedder,
    /// Number of corpus documents consumed.
    pub documents_seen: usize,
    /// SQL statements observed during pre-training — the model's domain
    /// exposure, which controls how reliable its SQL judgments are.
    pub sql_statements_seen: u64,
}

/// Pre-training scale: document budget multiplier (the paper's GB counts
/// scaled down to document counts).
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Document-budget multiplier.
    pub scale: usize,
    /// Corpus generation seed.
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig { scale: 24, seed: 0xC0DE5 }
    }
}

/// Pre-train a model according to its corpus lineage.
pub fn pretrain(catalog: &SketchCatalog, spec: &LmSpec, cfg: &PretrainConfig) -> PretrainedLm {
    pretrain_with_capacity(catalog, spec, spec.size.capacity(), cfg)
}

/// Pre-train with an explicit capacity override — used by the bench
/// harness to simulate closed-source frontier models (ChatGPT/GPT-4) whose
/// capacity exceeds the 15B tier.
pub fn pretrain_with_capacity(
    catalog: &SketchCatalog,
    spec: &LmSpec,
    capacity: crate::config::Capacity,
    cfg: &PretrainConfig,
) -> PretrainedLm {
    let base = base_corpus(spec.lineage, cfg);
    match spec.lineage {
        CorpusLineage::Codes => {
            // Incremental pre-training: start from StarCoder's corpus, then
            // continue on the SQL-centric corpus (SQL slice seen twice).
            let increment = build_corpus(&CorpusConfig::codes(cfg.scale, cfg.seed ^ 0xC0DE));
            let mut merged = base;
            merged.merge(increment.clone());
            // Second epoch over the SQL-related slice.
            let second_epoch: Vec<codes_corpus::Document> = increment
                .documents
                .iter()
                .filter(|d| d.slice == Slice::SqlRelated)
                .cloned()
                .collect();
            merged.documents.extend(second_epoch);
            train_on(catalog, spec, capacity, &merged)
        }
        _ => train_on(catalog, spec, capacity, &base),
    }
}

fn base_corpus(lineage: CorpusLineage, cfg: &PretrainConfig) -> Corpus {
    match lineage {
        CorpusLineage::StarCoder | CorpusLineage::Codes => {
            build_corpus(&CorpusConfig::starcoder(cfg.scale, cfg.seed))
        }
        CorpusLineage::StarCoderPlus => {
            // StarCoderPlus = StarCoder + extra natural language.
            let mut c = build_corpus(&CorpusConfig::starcoder(cfg.scale, cfg.seed));
            let extra = codes_corpus::nl_documents(6 * cfg.scale, cfg.seed ^ 0x9999);
            c.documents.extend(
                extra
                    .into_iter()
                    .map(|text| codes_corpus::Document { slice: Slice::NlRelated, text }),
            );
            c
        }
        CorpusLineage::CodeGen => build_corpus(&CorpusConfig::codegen(cfg.scale, cfg.seed)),
        CorpusLineage::Llama => build_corpus(&CorpusConfig::llama(cfg.scale, cfg.seed)),
    }
}

fn train_on(catalog: &SketchCatalog, spec: &LmSpec, capacity: Capacity, corpus: &Corpus) -> PretrainedLm {
    let texts = corpus.texts();
    // 1. Tokenizer: trained on a bounded sample of the corpus.
    let bpe_sample: Vec<&str> = texts.iter().take(600).copied().collect();
    let bpe = Bpe::train(&bpe_sample, capacity.bpe_vocab);

    // 2. Language model over BPE tokens.
    let mut lm = NgramLm::new(capacity.ngram_order, bpe.vocab_size());
    for text in &texts {
        let normalized = normalize_sql(text);
        lm.observe(&bpe.encode(&normalized));
    }

    // 3. Sketch library mined from the SQL content.
    let sketches = SketchLibrary::mine(catalog, &texts, capacity.sketch_capacity);
    let sql_statements_seen: u64 = texts.iter().map(|t| extract_sql(t).len() as u64).sum();

    // 4. Sentence embedder fitted on the NL-bearing documents.
    let mut builder = EmbedderBuilder::new();
    for doc in &corpus.documents {
        if matches!(doc.slice, Slice::NlRelated | Slice::NlToCode) {
            builder.observe(&doc.text);
        }
    }
    let embedder = builder.build(capacity.embed_dim);

    PretrainedLm {
        name: spec.name.to_string(),
        size: spec.size,
        lineage: spec.lineage,
        capacity,
        bpe,
        lm,
        sketches,
        embedder,
        documents_seen: corpus.len(),
        sql_statements_seen,
    }
}

impl PretrainedLm {
    /// Average per-token log2-probability of a SQL string under the model
    /// — the LM component of candidate scoring. Higher is more fluent.
    pub fn sql_log_likelihood(&self, sql: &str) -> f64 {
        let tokens = self.bpe.encode(&normalize_sql(sql));
        if tokens.is_empty() {
            return f64::NEG_INFINITY;
        }
        self.lm.log2_prob(&tokens) / tokens.len() as f64
    }

    /// Perplexity on a held-out document set (used by pre-training tests
    /// and the corpus-mix diagnostics).
    pub fn perplexity(&self, texts: &[&str]) -> f64 {
        let mut total_lp = 0.0;
        let mut total_tokens = 0usize;
        for t in texts {
            let toks = self.bpe.encode(&normalize_sql(t));
            total_lp += self.lm.log2_prob(&toks);
            total_tokens += toks.len();
        }
        if total_tokens == 0 {
            return f64::INFINITY;
        }
        2f64.powf(-total_lp / total_tokens as f64)
    }
}

/// Count how many SQL statements a corpus contains (diagnostics).
pub fn count_sql_statements(corpus: &Corpus) -> usize {
    corpus.texts().iter().map(|t| extract_sql(t).len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table4_models;

    fn catalog() -> SketchCatalog {
        SketchCatalog::build()
    }

    fn spec(name: &str) -> LmSpec {
        table4_models().into_iter().find(|m| m.name == name).unwrap()
    }

    fn small_cfg() -> PretrainConfig {
        PretrainConfig { scale: 10, seed: 7 }
    }

    #[test]
    fn incremental_pretraining_expands_sketch_library() {
        let cat = catalog();
        let cfg = small_cfg();
        let star = pretrain(&cat, &spec("StarCoderBase-15B"), &cfg);
        let codes = pretrain(&cat, &spec("CodeS-15B"), &cfg);
        assert!(
            codes.sketches.len() >= star.sketches.len(),
            "codes {} vs starcoder {}",
            codes.sketches.len(),
            star.sketches.len()
        );
    }

    #[test]
    fn sql_centric_pretraining_lowers_sql_perplexity() {
        let cat = catalog();
        let cfg = small_cfg();
        let llama = pretrain(&cat, &spec("Llama2-13B"), &cfg);
        let codes = pretrain(&cat, &spec("CodeS-15B"), &cfg);
        let held_out = codes_corpus::sql_documents(30, 999);
        let refs: Vec<&str> = held_out.iter().map(String::as_str).collect();
        let p_llama = llama.perplexity(&refs);
        let p_codes = codes.perplexity(&refs);
        assert!(
            p_codes < p_llama,
            "codes ppl {p_codes:.1} should beat llama ppl {p_llama:.1}"
        );
    }

    #[test]
    fn small_models_hold_fewer_sketches() {
        let cat = catalog();
        let cfg = small_cfg();
        let small = pretrain(&cat, &spec("CodeS-1B"), &cfg);
        let large = pretrain(&cat, &spec("CodeS-15B"), &cfg);
        assert!(small.sketches.len() <= large.sketches.len());
        assert!(small.sketches.len() <= ModelSize::B1.capacity().sketch_capacity);
    }

    #[test]
    fn fluent_sql_scores_above_garbled_sql() {
        let cat = catalog();
        let model = pretrain(&cat, &spec("CodeS-7B"), &small_cfg());
        let good = model.sql_log_likelihood("SELECT COUNT(*) FROM singer WHERE age > 30");
        let bad = model.sql_log_likelihood("WHERE singer SELECT FROM > ( COUNT age");
        assert!(good > bad, "good {good} bad {bad}");
    }

    #[test]
    fn codegen_lineage_has_sparse_sql_knowledge() {
        let cat = catalog();
        let cfg = small_cfg();
        let codegen = pretrain(&cat, &spec("CodeGen2-16B"), &cfg);
        let codes = pretrain(&cat, &spec("CodeS-15B"), &cfg);
        assert!(codegen.sketches.len() < codes.sketches.len());
    }
}
