//! Model sizes, capacity profiles, and the runtime robustness [`Config`].
//!
//! Table 1 of the paper fixes the transformer architecture of each CodeS
//! size; §9.7 reports deployment footprints. Our simulated model maps each
//! size to a [`Capacity`]: the knobs that make a bigger simulated model
//! measurably stronger (higher n-gram order, larger BPE vocabulary and
//! sketch library, wider beam, finer similarity resolution, less decision
//! noise). The architecture numbers are carried verbatim for reporting.
//!
//! [`Config`] is orthogonal to capacity: it bounds what one inference may
//! *consume* (execution budgets, an inference deadline, retry policy)
//! rather than how strong the model is.

use std::fmt;
use std::time::Duration;

use sqlengine::ExecLimits;

/// Runtime robustness configuration of a [`crate::CodesSystem`].
///
/// Every knob bounds failure, not quality: what a candidate statement may
/// consume during beam selection, how long one inference may take before
/// the system degrades, and how transient failures are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Budgets for executing candidate SQL during generation and for any
    /// lazy index work charged to the inference.
    pub exec_limits: ExecLimits,
    /// Wall-clock budget for one full inference (prompt construction +
    /// generation). When three quarters of it are spent before candidate
    /// selection, the beam degrades to greedy (first candidate only).
    pub inference_deadline: Option<Duration>,
    /// Extra attempts for transient (budget) failures during candidate
    /// execution; each retry runs under halved budgets.
    pub retry_attempts: u32,
    /// Build a missing value index on first use at inference time (within
    /// the inference deadline) instead of skipping value retrieval.
    pub lazy_value_index: bool,
}

impl Config {
    /// No budgets, no deadline, no retries: the pre-governor behaviour.
    /// Tests and offline experiments that want raw model behaviour use
    /// this; serving and evaluation should not.
    pub fn unlimited() -> Config {
        Config {
            exec_limits: ExecLimits::unlimited(),
            inference_deadline: None,
            retry_attempts: 0,
            lazy_value_index: true,
        }
    }

    /// Generous bounds for evaluation runs: budgets deterministic enough
    /// that EX/TS/VES verdicts are reproducible, a deadline loose enough
    /// that only pathological statements hit it.
    pub fn evaluation() -> Config {
        Config {
            exec_limits: ExecLimits::evaluation(),
            inference_deadline: Some(Duration::from_secs(30)),
            retry_attempts: 0,
            lazy_value_index: true,
        }
    }

    /// Tight bounds for interactive serving.
    pub fn serving() -> Config {
        Config {
            exec_limits: ExecLimits::serving(),
            inference_deadline: Some(Duration::from_secs(2)),
            retry_attempts: 1,
            lazy_value_index: true,
        }
    }

    /// Propagate a caller deadline into this configuration: the inference
    /// deadline and the per-statement execution deadline are both clamped
    /// to `remaining` (budgets that were already tighter stay tighter).
    ///
    /// This is how the serving runtime flows a request's remaining time
    /// into the whole stack: a request admitted with little time left gets
    /// a proportionally small inference deadline, so [`Config::nearly_spent`]
    /// fires early and the beam degrades to greedy instead of the request
    /// timing out with nothing to show.
    pub fn clamped_to_deadline(mut self, remaining: Duration) -> Config {
        let clamp = |d: Option<Duration>| Some(d.map_or(remaining, |x| x.min(remaining)));
        self.inference_deadline = clamp(self.inference_deadline);
        self.exec_limits.deadline = clamp(self.exec_limits.deadline);
        self
    }

    /// True when at least three quarters of the inference deadline are
    /// gone — the trigger for degrading beam selection to greedy.
    pub fn nearly_spent(&self, elapsed: Duration) -> bool {
        match self.inference_deadline {
            Some(deadline) => elapsed >= deadline.mul_f64(0.75),
            None => false,
        }
    }

    /// Whether a lazy value-index build may still start `elapsed` into the
    /// inference: allowed only while under half the deadline, so the build
    /// cannot eat the whole budget before generation runs.
    pub fn allow_lazy_index_build(&self, elapsed: Duration) -> bool {
        self.lazy_value_index
            && match self.inference_deadline {
                Some(deadline) => elapsed < deadline.mul_f64(0.5),
                None => true,
            }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::evaluation()
    }
}

/// The four CodeS sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelSize {
    /// CodeS-1B tier.
    B1,
    /// CodeS-3B tier.
    B3,
    /// CodeS-7B tier.
    B7,
    /// CodeS-15B tier.
    B15,
}

impl ModelSize {
    /// The four sizes, smallest first.
    pub fn all() -> [ModelSize; 4] {
        [ModelSize::B1, ModelSize::B3, ModelSize::B7, ModelSize::B15]
    }

    /// Human-readable size label ("7B").
    pub fn label(&self) -> &'static str {
        match self {
            ModelSize::B1 => "1B",
            ModelSize::B3 => "3B",
            ModelSize::B7 => "7B",
            ModelSize::B15 => "15B",
        }
    }

    /// Nominal parameter count.
    pub fn parameters(&self) -> u64 {
        match self {
            ModelSize::B1 => 1_000_000_000,
            ModelSize::B3 => 3_000_000_000,
            ModelSize::B7 => 7_000_000_000,
            ModelSize::B15 => 15_000_000_000,
        }
    }

    /// Table 1: the transformer architecture of each size.
    pub fn architecture(&self) -> Architecture {
        let (hidden, ffn, heads, blocks, context) = match self {
            ModelSize::B1 => (2_048, 8_192, 16, 24, 8_192),
            ModelSize::B3 => (2_816, 11_264, 22, 36, 8_192),
            ModelSize::B7 => (4_096, 16_384, 32, 42, 8_192),
            ModelSize::B15 => (6_144, 24_576, 48, 40, 6_144),
        };
        Architecture {
            hidden_size: hidden,
            ffn_hidden_size: ffn,
            attention_heads: heads,
            transformer_blocks: blocks,
            max_context_length: context,
            vocabulary_size: 49_152,
        }
    }

    /// §9.7: GPU memory needed to serve the SFT model in float16 (GB).
    pub fn deployment_memory_gb(&self) -> u32 {
        match self {
            ModelSize::B1 => 10,
            ModelSize::B3 => 13,
            ModelSize::B7 => 20,
            ModelSize::B15 => 35,
        }
    }

    /// §9.7: reported per-sample inference latency on Spider (seconds).
    pub fn paper_latency_seconds(&self) -> f64 {
        match self {
            ModelSize::B1 => 0.6,
            ModelSize::B3 => 0.9,
            ModelSize::B7 => 1.1,
            ModelSize::B15 => 1.5,
        }
    }

    /// Capacity profile of the simulated model.
    pub fn capacity(&self) -> Capacity {
        match self {
            ModelSize::B1 => Capacity {
                ngram_order: 2,
                bpe_vocab: 600,
                embed_dim: 64,
                beam_width: 2,
                sketch_capacity: 18,
                similarity_levels: 6,
                decision_noise: 0.22,
            },
            ModelSize::B3 => Capacity {
                ngram_order: 3,
                bpe_vocab: 900,
                embed_dim: 128,
                beam_width: 3,
                sketch_capacity: 26,
                similarity_levels: 10,
                decision_noise: 0.13,
            },
            ModelSize::B7 => Capacity {
                ngram_order: 4,
                bpe_vocab: 1_200,
                embed_dim: 256,
                beam_width: 4,
                sketch_capacity: 34,
                similarity_levels: 16,
                decision_noise: 0.08,
            },
            ModelSize::B15 => Capacity {
                ngram_order: 5,
                bpe_vocab: 1_500,
                embed_dim: 512,
                beam_width: 4,
                sketch_capacity: 40,
                similarity_levels: 24,
                decision_noise: 0.055,
            },
        }
    }
}

impl fmt::Display for ModelSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Table 1's architecture hyper-parameters (shared fields are implicit:
/// decoder-only, learned absolute positions, multi-query attention,
/// FlashAttention-2 enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Architecture {
    /// Transformer hidden size.
    pub hidden_size: u32,
    /// Feed-forward hidden size.
    pub ffn_hidden_size: u32,
    /// Attention head count.
    pub attention_heads: u32,
    /// Number of transformer blocks.
    pub transformer_blocks: u32,
    /// Maximum context length in tokens.
    pub max_context_length: u32,
    /// BPE vocabulary size.
    pub vocabulary_size: u32,
}

/// Simulated-model capacity knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacity {
    /// Order of the n-gram language model.
    pub ngram_order: usize,
    /// BPE vocabulary budget.
    pub bpe_vocab: usize,
    /// Sentence-embedding dimensionality.
    pub embed_dim: usize,
    /// Beam width at generation (the paper decodes 4 candidates).
    pub beam_width: usize,
    /// How many SQL sketches the model can hold.
    pub sketch_capacity: usize,
    /// Resolution when comparing linking similarities (quantization levels;
    /// coarser resolution = more tie-breaking mistakes).
    pub similarity_levels: usize,
    /// Stddev of deterministic scoring noise (reasoning slack).
    pub decision_noise: f64,
}

impl Capacity {
    /// Quantize a similarity in [0,1] to the model's resolution.
    pub fn quantize(&self, sim: f64) -> f64 {
        let levels = self.similarity_levels.max(2) as f64;
        (sim.clamp(0.0, 1.0) * levels).round() / levels
    }
}

/// Which pre-training corpus lineage a model has — the independent
/// variable of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorpusLineage {
    /// StarCoder(-Base): mostly code, some SQL.
    StarCoder,
    /// StarCoderPlus: code plus more natural language.
    StarCoderPlus,
    /// CodeGen mono/2: code with almost no SQL.
    CodeGen,
    /// Llama2: mostly natural language.
    Llama,
    /// CodeS: StarCoder incrementally pre-trained on the SQL-centric corpus.
    Codes,
}

/// A named pre-trained LM entry of Table 4.
#[derive(Debug, Clone)]
pub struct LmSpec {
    /// Display name (Table 4 row label).
    pub name: &'static str,
    /// Capacity tier.
    pub size: ModelSize,
    /// Pre-training corpus lineage.
    pub lineage: CorpusLineage,
}

/// The 12 baseline LMs plus the 4 CodeS models of Table 4.
pub fn table4_models() -> Vec<LmSpec> {
    use CorpusLineage::*;
    use ModelSize::*;
    vec![
        LmSpec { name: "StarCoderBase-1B", size: B1, lineage: StarCoder },
        LmSpec { name: "StarCoderBase-3B", size: B3, lineage: StarCoder },
        LmSpec { name: "CodeGen-mono-6B", size: B7, lineage: CodeGen },
        LmSpec { name: "StarCoderBase-7B", size: B7, lineage: StarCoder },
        LmSpec { name: "CodeGen2-7B", size: B7, lineage: CodeGen },
        LmSpec { name: "Llama2-7B", size: B7, lineage: Llama },
        LmSpec { name: "Llama2-13B", size: B15, lineage: Llama },
        LmSpec { name: "StarCoderBase-15B", size: B15, lineage: StarCoder },
        LmSpec { name: "StarCoder-15B", size: B15, lineage: StarCoder },
        LmSpec { name: "StarCoderPlus-15B", size: B15, lineage: StarCoderPlus },
        LmSpec { name: "CodeGen-mono-16B", size: B15, lineage: CodeGen },
        LmSpec { name: "CodeGen2-16B", size: B15, lineage: CodeGen },
        LmSpec { name: "CodeS-1B", size: B1, lineage: Codes },
        LmSpec { name: "CodeS-3B", size: B3, lineage: Codes },
        LmSpec { name: "CodeS-7B", size: B7, lineage: Codes },
        LmSpec { name: "CodeS-15B", size: B15, lineage: Codes },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_monotone_in_size() {
        let sizes = ModelSize::all();
        for w in sizes.windows(2) {
            let (a, b) = (w[0].capacity(), w[1].capacity());
            assert!(a.ngram_order <= b.ngram_order);
            assert!(a.sketch_capacity < b.sketch_capacity);
            assert!(a.decision_noise > b.decision_noise);
            assert!(a.similarity_levels < b.similarity_levels);
        }
    }

    #[test]
    fn architecture_matches_table1() {
        let a = ModelSize::B15.architecture();
        assert_eq!(a.hidden_size, 6_144);
        assert_eq!(a.attention_heads, 48);
        assert_eq!(a.transformer_blocks, 40);
        assert_eq!(a.max_context_length, 6_144); // 15B has the short context
        assert_eq!(ModelSize::B7.architecture().max_context_length, 8_192);
        assert_eq!(a.vocabulary_size, 49_152);
    }

    #[test]
    fn quantization_is_coarser_for_small_models() {
        let small = ModelSize::B1.capacity();
        let large = ModelSize::B15.capacity();
        // Two nearby similarities that a large model distinguishes but a
        // small one cannot.
        let (x, y) = (0.51, 0.55);
        assert_eq!(small.quantize(x), small.quantize(y));
        assert_ne!(large.quantize(x), large.quantize(y));
    }

    #[test]
    fn table4_has_16_entries_with_unique_names() {
        let models = table4_models();
        assert_eq!(models.len(), 16);
        let names: std::collections::HashSet<_> = models.iter().map(|m| m.name).collect();
        assert_eq!(names.len(), 16);
        assert_eq!(models.iter().filter(|m| m.lineage == CorpusLineage::Codes).count(), 4);
    }

    #[test]
    fn config_deadline_predicates() {
        let cfg = Config {
            inference_deadline: Some(Duration::from_secs(4)),
            ..Config::evaluation()
        };
        assert!(!cfg.nearly_spent(Duration::from_secs(2)));
        assert!(cfg.nearly_spent(Duration::from_secs(3)));
        assert!(cfg.allow_lazy_index_build(Duration::from_secs(1)));
        assert!(!cfg.allow_lazy_index_build(Duration::from_secs(2)));
        let unlimited = Config::unlimited();
        assert!(!unlimited.nearly_spent(Duration::from_secs(3600)));
        assert!(unlimited.allow_lazy_index_build(Duration::from_secs(3600)));
    }

    #[test]
    fn clamping_tightens_but_never_loosens_deadlines() {
        let cfg = Config::evaluation(); // 30s inference, 10s exec
        let clamped = cfg.clamped_to_deadline(Duration::from_secs(1));
        assert_eq!(clamped.inference_deadline, Some(Duration::from_secs(1)));
        assert_eq!(clamped.exec_limits.deadline, Some(Duration::from_secs(1)));
        // A budget already tighter than the caller deadline is kept.
        let loose = cfg.clamped_to_deadline(Duration::from_secs(3600));
        assert_eq!(loose.inference_deadline, Some(Duration::from_secs(30)));
        assert_eq!(loose.exec_limits.deadline, Some(Duration::from_secs(10)));
        // An unlimited config picks up the caller deadline.
        let unlimited = Config::unlimited().clamped_to_deadline(Duration::from_millis(500));
        assert_eq!(unlimited.inference_deadline, Some(Duration::from_millis(500)));
        assert_eq!(unlimited.exec_limits.deadline, Some(Duration::from_millis(500)));
        // Non-deadline budgets are untouched.
        assert_eq!(clamped.exec_limits.max_rows, cfg.exec_limits.max_rows);
    }

    #[test]
    fn deployment_numbers_match_paper() {
        assert_eq!(ModelSize::B1.deployment_memory_gb(), 10);
        assert_eq!(ModelSize::B15.deployment_memory_gb(), 35);
        assert!((ModelSize::B7.paper_latency_seconds() - 1.1).abs() < 1e-12);
    }
}
