//! Database prompt construction — Algorithm 1 and Figure 4 of the paper.
//!
//! A [`DbPrompt`] is the model's entire view of the database: the filtered
//! schema (§6.1), question-matched values (§6.2) and metadata (§6.3:
//! column types, comments, two representative values, primary/foreign
//! keys). Every piece can be switched off individually, which is how the
//! Table 9 ablations are run — the generator reads *only* the prompt, so
//! removing a component genuinely degrades it.

use rand::rngs::StdRng;

use codes_datasets::Sample;
use codes_linker::{filter_schema, filter_schema_gold, FilterConfig, FilteredSchema, SchemaClassifier};
use codes_retrieval::{ValueIndex, ValueMatch};
use sqlengine::{Database, DataType};

/// Which prompt components to include.
#[derive(Debug, Clone, Copy)]
pub struct PromptOptions {
    /// Run the §6.1 schema filter (needs a trained classifier).
    pub use_schema_filter: bool,
    /// Top-k1/top-k2 limits of the filter.
    pub filter: FilterConfig,
    /// Run the §6.2 coarse-to-fine value retriever.
    pub use_value_retriever: bool,
    /// Coarse BM25 candidates examined per question.
    pub coarse_k: usize,
    /// Fine LCS matches kept in the prompt.
    pub fine_k: usize,
    /// Minimum LCS matching degree for a value to survive.
    pub min_match_degree: f64,
    /// Include column data types (§6.3(1)).
    pub include_types: bool,
    /// Include column comments (§6.3(2)).
    pub include_comments: bool,
    /// Include representative values (§6.3(3)).
    pub include_representative_values: bool,
    /// §6.3(3): `SELECT DISTINCT ... LIMIT 2`.
    pub representative_values: usize,
    /// Include primary/foreign keys (§6.3(4)).
    pub include_keys: bool,
    /// Prompt token budget (whitespace tokens), modeling the context
    /// window. Tables beyond the budget are truncated — harmless when the
    /// schema filter ordered them by relevance, harmful without it (§6.1's
    /// motivation).
    pub max_prompt_tokens: usize,
}

impl PromptOptions {
    /// SFT defaults: top-6 tables / top-10 columns (§9.1.4).
    pub fn sft() -> PromptOptions {
        PromptOptions {
            use_schema_filter: true,
            filter: FilterConfig::sft(),
            use_value_retriever: true,
            coarse_k: 100,
            fine_k: 6,
            min_match_degree: 0.75,
            include_types: true,
            include_comments: true,
            include_representative_values: true,
            representative_values: 2,
            include_keys: true,
            max_prompt_tokens: 650,
        }
    }

    /// Few-shot defaults: top-5 / top-6 and a smaller schema budget, since
    /// demonstrations share the context window (§9.1.4).
    pub fn few_shot() -> PromptOptions {
        PromptOptions {
            filter: FilterConfig::few_shot(),
            max_prompt_tokens: 480,
            ..PromptOptions::sft()
        }
    }

    // -- Table 9 ablation arms ------------------------------------------------

    /// Disable the schema filter (`-w/o schema filter`).
    pub fn without_schema_filter(mut self) -> PromptOptions {
        self.use_schema_filter = false;
        self
    }

    /// Disable the value retriever (`-w/o value retriever`).
    pub fn without_value_retriever(mut self) -> PromptOptions {
        self.use_value_retriever = false;
        self
    }

    /// Drop column data types (`-w/o column data types`).
    pub fn without_types(mut self) -> PromptOptions {
        self.include_types = false;
        self
    }

    /// Drop column comments (`-w/o comments`).
    pub fn without_comments(mut self) -> PromptOptions {
        self.include_comments = false;
        self
    }

    /// Drop representative values (`-w/o representative values`).
    pub fn without_representative_values(mut self) -> PromptOptions {
        self.include_representative_values = false;
        self
    }

    /// Drop primary/foreign keys (`-w/o primary and foreign keys`).
    pub fn without_keys(mut self) -> PromptOptions {
        self.include_keys = false;
        self
    }
}

/// One column as the model sees it.
#[derive(Debug, Clone)]
pub struct PromptColumn {
    /// Column name.
    pub name: String,
    /// Storage class (None when types are ablated).
    pub data_type: Option<DataType>,
    /// Comment (None when comments are ablated or absent).
    pub comment: Option<String>,
    /// Representative values (empty when ablated).
    pub representative: Vec<String>,
    /// Primary-key marker (false when keys are ablated).
    pub is_primary_key: bool,
}

impl PromptColumn {
    /// The NL surface the generator links against: comment when present,
    /// normalized identifier otherwise.
    pub fn nl(&self) -> String {
        match &self.comment {
            Some(c) => format!("{} {}", codes_nlp::normalize_identifier(&self.name), c),
            None => codes_nlp::normalize_identifier(&self.name),
        }
    }
}

/// One table as the model sees it.
#[derive(Debug, Clone)]
pub struct PromptTable {
    /// Table name.
    pub name: String,
    /// Retained columns.
    pub columns: Vec<PromptColumn>,
}

impl PromptTable {
    /// The table's natural-language surface.
    pub fn nl(&self) -> String {
        codes_nlp::normalize_identifier(&self.name)
    }

    /// Case-insensitive column access.
    pub fn column(&self, name: &str) -> Option<&PromptColumn> {
        self.columns.iter().find(|c| c.name.eq_ignore_ascii_case(name))
    }
}

/// The full database prompt.
#[derive(Debug, Clone)]
pub struct DbPrompt {
    /// Database id the prompt was built for.
    pub db_id: String,
    /// Retained tables, most relevant first.
    pub tables: Vec<PromptTable>,
    /// `(table, column, ref_table, ref_column)` foreign keys among the
    /// retained tables.
    pub foreign_keys: Vec<(String, String, String, String)>,
    /// Question-matched values from the coarse-to-fine retriever.
    pub matched_values: Vec<ValueMatch>,
}

impl DbPrompt {
    /// Case-insensitive table access.
    pub fn table(&self, name: &str) -> Option<&PromptTable> {
        self.tables.iter().find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Serialize to the Figure 4 textual format.
    pub fn serialize(&self) -> String {
        let mut out = String::from("database schema :\n");
        for t in &self.tables {
            out.push_str(&format!("table {} , columns = [ ", t.name));
            let cols: Vec<String> = t
                .columns
                .iter()
                .map(|c| {
                    let mut parts = vec![format!("{}.{}", t.name, c.name)];
                    if let Some(dt) = c.data_type {
                        parts.push(dt.sql_name().to_lowercase());
                    }
                    if c.is_primary_key {
                        parts.push("primary key".to_string());
                    }
                    if let Some(comment) = &c.comment {
                        parts.push(format!("comment : {comment}"));
                    }
                    if !c.representative.is_empty() {
                        parts.push(format!("examples : {}", c.representative.join(" , ")));
                    }
                    format!("{} ( {} )", parts[0], parts[1..].join(" | "))
                })
                .collect();
            out.push_str(&cols.join(" , "));
            out.push_str(" ]\n");
        }
        if !self.foreign_keys.is_empty() {
            out.push_str("foreign keys :\n");
            for (t, c, rt, rc) in &self.foreign_keys {
                out.push_str(&format!("{t}.{c} = {rt}.{rc}\n"));
            }
        }
        if !self.matched_values.is_empty() {
            out.push_str("matched values : ");
            let vals: Vec<String> = self.matched_values.iter().map(ValueMatch::render).collect();
            out.push_str(&vals.join(" , "));
            out.push('\n');
        }
        out
    }

    /// Prompt length in whitespace tokens (for context-budget checks).
    pub fn token_len(&self) -> usize {
        self.serialize().split_whitespace().count()
    }
}

/// Algorithm 1: build the prompt for a question at inference time.
///
/// Convenience wrapper running all four prompt stages back to back;
/// instrumented callers ([`crate::CodesSystem::infer`]) invoke the
/// `stage_*` functions directly so each stage gets its own span.
pub fn build_prompt(
    db: &Database,
    question: &str,
    external_knowledge: Option<&str>,
    classifier: Option<&SchemaClassifier>,
    value_index: Option<&ValueIndex>,
    opts: &PromptOptions,
) -> DbPrompt {
    let filtered = stage_schema_filter(db, question, external_knowledge, classifier, opts);
    let matched_values =
        stage_value_retrieval(&filtered, question, external_knowledge, value_index, opts);
    let tables = stage_metadata(db, &filtered, opts);
    stage_assemble(db, tables, matched_values, opts)
}

/// Algorithm 1 lines 1-2: rank and prune schema items for the question
/// (falls back to the full schema without a classifier or with the
/// filter ablated).
pub fn stage_schema_filter(
    db: &Database,
    question: &str,
    external_knowledge: Option<&str>,
    classifier: Option<&SchemaClassifier>,
    opts: &PromptOptions,
) -> FilteredSchema {
    match (opts.use_schema_filter, classifier) {
        (true, Some(clf)) => filter_schema(clf, question, external_knowledge, db, opts.filter),
        _ => FilteredSchema::full(db),
    }
}

/// Algorithm 1 lines 3-4: the coarse-to-fine value retriever (BM25 then
/// LCS), restricted to columns that survived the schema filter.
pub fn stage_value_retrieval(
    filtered: &FilteredSchema,
    question: &str,
    external_knowledge: Option<&str>,
    value_index: Option<&ValueIndex>,
    opts: &PromptOptions,
) -> Vec<ValueMatch> {
    match (opts.use_value_retriever, value_index) {
        (true, Some(idx)) => {
            let query = match external_knowledge {
                Some(ek) => format!("{question} {ek}"),
                None => question.to_string(),
            };
            idx.retrieve(&query, opts.coarse_k, opts.fine_k, opts.min_match_degree)
                .into_iter()
                .filter(|m| filtered.contains_column(&m.table, &m.column))
                .collect()
        }
        _ => Vec::new(),
    }
}

/// Training-time prompt: gold schema items plus random padding (§6.1).
pub fn build_training_prompt(
    sample: &Sample,
    db: &Database,
    value_index: Option<&ValueIndex>,
    opts: &PromptOptions,
    rng: &mut StdRng,
) -> DbPrompt {
    let filtered = if opts.use_schema_filter {
        filter_schema_gold(sample, db, opts.filter, rng)
    } else {
        FilteredSchema::full(db)
    };
    let matched_values = match (opts.use_value_retriever, value_index) {
        (true, Some(idx)) => idx
            .retrieve(&sample.question, opts.coarse_k, opts.fine_k, opts.min_match_degree)
            .into_iter()
            .filter(|m| filtered.contains_column(&m.table, &m.column))
            .collect(),
        _ => Vec::new(),
    };
    let tables = stage_metadata(db, &filtered, opts);
    stage_assemble(db, tables, matched_values, opts)
}

/// Algorithm 1 lines 5-6: collect per-column metadata (§6.3 — data
/// types, comments, representative values, key markers) for every
/// schema item that survived the filter.
pub fn stage_metadata(
    db: &Database,
    filtered: &FilteredSchema,
    opts: &PromptOptions,
) -> Vec<PromptTable> {
    filtered
        .tables
        .iter()
        .filter_map(|ft| {
            let table = db.table(&ft.name)?;
            let columns = ft
                .columns
                .iter()
                .filter_map(|cn| {
                    let col = table.schema.column(cn)?;
                    Some(PromptColumn {
                        name: col.name.clone(),
                        data_type: opts.include_types.then_some(col.data_type),
                        comment: if opts.include_comments { col.comment.clone() } else { None },
                        representative: if opts.include_representative_values {
                            table
                                .representative_values(&col.name, opts.representative_values)
                                .iter()
                                .map(|v| v.render())
                                .collect()
                        } else {
                            Vec::new()
                        },
                        is_primary_key: opts.include_keys && col.primary_key,
                    })
                })
                .collect();
            Some(PromptTable { name: table.schema.name.clone(), columns })
        })
        .collect()
}

/// Algorithm 1 line 7: assemble the final prompt — context-window
/// truncation, surviving foreign keys, matched-value retention.
pub fn stage_assemble(
    db: &Database,
    tables: Vec<PromptTable>,
    matched_values: Vec<ValueMatch>,
    opts: &PromptOptions,
) -> DbPrompt {
    // Context-window truncation: keep whole tables (in the given order —
    // relevance order under the filter, schema order without it) until the
    // serialized budget is exhausted. At least one table always survives.
    let mut kept: Vec<PromptTable> = Vec::with_capacity(tables.len());
    let mut used_tokens = 0usize;
    for t in tables {
        let table_tokens = 4 + t
            .columns
            .iter()
            .map(|c| {
                3 + c.comment.as_deref().map(|x| x.split_whitespace().count()).unwrap_or(0)
                    + c.representative.iter().map(|v| v.split_whitespace().count()).sum::<usize>()
            })
            .sum::<usize>();
        if kept.is_empty() || used_tokens + table_tokens <= opts.max_prompt_tokens {
            used_tokens += table_tokens;
            kept.push(t);
        }
    }
    let tables = kept;

    let foreign_keys = if opts.include_keys {
        // Edges must survive both the filter and the context truncation.
        let kept_col = |t: &str, c: &str| {
            tables
                .iter()
                .any(|pt| pt.name.eq_ignore_ascii_case(t) && pt.column(c).is_some())
        };
        db.foreign_keys()
            .into_iter()
            .filter(|(t, fk)| kept_col(t, &fk.column) && kept_col(&fk.ref_table, &fk.ref_column))
            .map(|(t, fk)| (t, fk.column, fk.ref_table, fk.ref_column))
            .collect()
    } else {
        Vec::new()
    };

    let mut matched_values = matched_values;
    matched_values.retain(|m| {
        tables
            .iter()
            .any(|pt| pt.name.eq_ignore_ascii_case(&m.table) && pt.column(&m.column).is_some())
    });
    DbPrompt { db_id: db.name.clone(), tables, foreign_keys, matched_values }
}

#[cfg(test)]
mod tests {
    use super::*;
    use codes_datasets::finance::bank_financials_db;

    fn prompt_for(question: &str, opts: &PromptOptions) -> DbPrompt {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        build_prompt(&db, question, None, None, Some(&idx), opts)
    }

    #[test]
    fn full_prompt_contains_everything() {
        let opts = PromptOptions::sft();
        let p = prompt_for("How many clients opened their accounts in Jesenik branch were women?", &opts);
        let text = p.serialize();
        assert!(text.contains("database schema :"));
        assert!(text.contains("client.gender"));
        assert!(text.contains("comment :"));
        assert!(text.contains("foreign keys :"));
        // The §6.2 running example: Jesenik must be retrieved.
        assert!(text.contains("account.branch = 'Jesenik'"), "{text}");
    }

    #[test]
    fn representative_values_reveal_codes() {
        let opts = PromptOptions::sft();
        let p = prompt_for("How many clients are women?", &opts);
        let gender = p.table("client").and_then(|t| t.column("gender")).unwrap();
        assert!(!gender.representative.is_empty());
        assert!(gender.representative.iter().any(|v| v == "F" || v == "M"));
    }

    #[test]
    fn ablations_remove_their_component() {
        let base = PromptOptions::sft();
        let q = "How many clients opened their accounts in Jesenik branch were women?";
        let without_values = prompt_for(q, &base.without_value_retriever());
        assert!(without_values.matched_values.is_empty());
        let without_keys = prompt_for(q, &base.without_keys());
        assert!(without_keys.foreign_keys.is_empty());
        let without_comments = prompt_for(q, &base.without_comments());
        assert!(!without_comments.serialize().contains("comment :"));
        let without_types = prompt_for(q, &base.without_types());
        assert!(!without_types.serialize().contains(" real"));
        let without_rep = prompt_for(q, &base.without_representative_values());
        assert!(!without_rep.serialize().contains("examples :"));
    }

    #[test]
    fn no_classifier_means_full_schema_up_to_context_budget() {
        let db = bank_financials_db(1);
        let p = build_prompt(&db, "anything", None, None, None, &PromptOptions::sft());
        // The 65-column corp_info table blows the context budget on its
        // own, so later tables are truncated away — exactly the failure
        // §6.1 motivates the schema filter with.
        assert!(p.tables.len() < db.tables.len());
        assert_eq!(p.table("corp_info").unwrap().columns.len(), 65);
        // With an unbounded budget the full schema survives.
        let unbounded = PromptOptions { max_prompt_tokens: usize::MAX, ..PromptOptions::sft() };
        let p = build_prompt(&db, "anything", None, None, None, &unbounded);
        assert_eq!(p.tables.len(), db.tables.len());
    }

    #[test]
    fn training_prompt_keeps_gold_and_pads() {
        use rand::SeedableRng;
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let samples = codes_datasets::finance::test_samples(&db, 10, 3);
        let s = samples.iter().find(|s| !s.used_columns.is_empty()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = build_training_prompt(s, &db, Some(&idx), &PromptOptions::sft(), &mut rng);
        for t in &s.used_tables {
            assert!(p.table(t).is_some(), "gold table {t} missing");
        }
    }

    #[test]
    fn token_len_tracks_filtering() {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let full = build_prompt(&db, "clients in Jesenik", None, None, Some(&idx), &PromptOptions::sft());
        // Without a classifier the schema is unfiltered -> longer prompt
        // than one filtered to 3 columns per table.
        let opts_small = PromptOptions {
            filter: FilterConfig { top_k1: 2, top_k2: 3 },
            ..PromptOptions::sft()
        };
        let _ = opts_small;
        assert!(full.token_len() > 100);
    }
}
