#![warn(missing_docs)]

//! # codes
//!
//! The core of the CodeS reproduction: capacity-profiled simulated language
//! models, incremental pre-training over SQL-centric corpora, database
//! prompt construction (Algorithm 1 / Figure 4), grammar-constrained beam
//! generation, supervised fine-tuning and few-shot in-context learning.
//!
//! The published system fine-tunes billion-parameter transformers; this
//! reproduction substitutes a statistical model whose accuracy depends on
//! the same experimental variables (corpus mix, model capacity, prompt
//! content, SFT vs ICL) through real code paths — see DESIGN.md for the
//! substitution argument.

pub mod cache;
pub mod config;
pub mod error;
pub mod generator;
pub mod intent;
pub mod model;
pub mod pretrain;
pub mod prompt;
pub mod request;
pub mod sketch;
pub mod system;

pub use cache::{
    config_fingerprint, normalize_question, CacheHits, CacheSettings, CachedAnswer, SystemCache,
    SystemCacheStats,
};
pub use config::{table4_models, Architecture, Capacity, Config, CorpusLineage, LmSpec, ModelSize};
pub use error::Error;
pub use intent::{extract_intent, Intent};
pub use model::{
    finetune, intent_bucket, parse_knowledge, select_first_executable,
    select_first_executable_batch, BatchSelection, CodesModel, FineTuned, Generation,
    GenerationBatchItem,
};
pub use request::InferenceRequest;
pub use pretrain::{pretrain, pretrain_with_capacity, PretrainConfig, PretrainedLm};
pub use prompt::{
    build_prompt, build_training_prompt, stage_assemble, stage_metadata, stage_schema_filter,
    stage_value_retrieval, DbPrompt, PromptOptions,
};
pub use sketch::{sketch_of, SketchCatalog, SketchLibrary};
pub use system::{CodesSystem, FewShot, Inference};
