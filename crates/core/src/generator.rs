//! Grammar-constrained SQL candidate generation.
//!
//! The generator reads ONLY the database prompt — the filtered schema with
//! its metadata and the retrieved values — plus the question's intent
//! signals. For each SQL sketch the model knows, it greedily fills slots
//! (tables, columns, values, thresholds) using linking scores quantized to
//! the model's similarity resolution. Prompt ablations therefore degrade
//! generation exactly the way Table 9 describes: no value retriever → no
//! reliable predicates, no comments → ambiguous columns mislink, no keys →
//! guessed join paths, no types → arithmetic on text columns.

use codes_nlp::similarity::{dice_char_bigrams, word_coverage};
use codes_nlp::words;

use crate::config::Capacity;
use crate::intent::{AggHint, Intent, OpHint};
use crate::prompt::{DbPrompt, PromptColumn, PromptTable};

/// A generated candidate query.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The generated SQL text.
    pub sql: String,
    /// The sketch/template that produced it.
    pub template_id: usize,
    /// Mean linking quality of the filled slots, in [0, 1].
    pub slot_score: f64,
}

/// Slot-filling context over one prompt.
pub struct SlotContext<'a> {
    /// The model's view of the database.
    pub prompt: &'a DbPrompt,
    /// The question being answered.
    pub question: &'a str,
    /// Extracted intent signals.
    pub intent: &'a Intent,
    /// Capacity of the generating model (quantization, beam...).
    pub capacity: &'a Capacity,
}

impl<'a> SlotContext<'a> {
    /// Bundle the inputs of one generation call.
    pub fn new(prompt: &'a DbPrompt, question: &'a str, intent: &'a Intent, capacity: &'a Capacity) -> Self {
        SlotContext { prompt, question, intent, capacity }
    }

    /// Linking score of a column NL surface against the question.
    fn link(&self, nl: &str) -> f64 {
        let cov = word_coverage(self.question, nl);
        let mut best_dice = 0.0f64;
        let qwords = words(self.question);
        for nw in words(nl) {
            for qw in &qwords {
                let d = dice_char_bigrams(&nw, qw);
                if d > best_dice {
                    best_dice = d;
                }
            }
        }
        self.capacity.quantize(cov.max(best_dice * 0.9))
    }

    fn column_score(&self, col: &PromptColumn) -> f64 {
        self.link(&col.nl())
    }

    /// Linking score of a table against the question (name or best column).
    pub fn table_score(&self, t: &PromptTable) -> f64 {
        let name_score = self.link(&t.nl());
        let best_col = t
            .columns
            .iter()
            .map(|c| self.column_score(c))
            .fold(0.0f64, f64::max);
        self.capacity.quantize(name_score.max(0.8 * best_col))
    }

    /// Whether a column is numeric, judged from the prompt alone.
    fn is_numeric(&self, col: &PromptColumn) -> Option<bool> {
        if let Some(dt) = col.data_type {
            return Some(dt.is_numeric());
        }
        if !col.representative.is_empty() {
            return Some(col.representative.iter().all(|v| v.parse::<f64>().is_ok()));
        }
        None
    }

    /// Best table for the query, biased toward the table holding the best
    /// value match.
    fn main_table(&self) -> Option<(&PromptTable, f64)> {
        if let Some(m) = self.prompt.matched_values.first() {
            if let Some(t) = self.prompt.table(&m.table) {
                return Some((t, self.capacity.quantize(0.6 + 0.4 * m.degree)));
            }
        }
        self.prompt
            .tables
            .iter()
            .map(|t| (t, self.table_score(t)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap()
                    .then(self.table_mention_position(b.0).cmp(&self.table_mention_position(a.0)))
            })
    }

    /// Best non-PK "content" column of a table (optionally excluding one).
    /// Ties break toward the column mentioned earliest in the question.
    fn content_col<'t>(&self, t: &'t PromptTable, exclude: &[&str]) -> Option<(&'t PromptColumn, f64)> {
        t.columns
            .iter()
            .filter(|c| !c.is_primary_key && !exclude.iter().any(|e| e.eq_ignore_ascii_case(&c.name)))
            .filter(|c| !c.name.to_lowercase().ends_with("_id"))
            .map(|c| (c, self.column_score(c)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap()
                    .then(self.mention_position(b.0).cmp(&self.mention_position(a.0)))
            })
    }

    /// Best numeric column of a table by linking score.
    fn numeric_col<'t>(&self, t: &'t PromptTable, exclude: &[&str]) -> Option<(&'t PromptColumn, f64)> {
        t.columns
            .iter()
            .filter(|c| !c.is_primary_key && !exclude.iter().any(|e| e.eq_ignore_ascii_case(&c.name)))
            .filter(|c| !c.name.to_lowercase().ends_with("_id"))
            .filter_map(|c| match self.is_numeric(c) {
                Some(true) => Some((c, self.column_score(c))),
                Some(false) => None,
                // Type unknown (types + values ablated): usable but risky.
                None => Some((c, self.column_score(c) * 0.5)),
            })
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap()
                    .then(self.mention_position(b.0).cmp(&self.mention_position(a.0)))
            })
    }

    /// Best text-valued filter: (table, column, value literal, score).
    /// Primary source is the value retriever; the fallback pairs a quoted
    /// question span with the best-linked text column (weaker).
    fn text_filter(&self) -> Option<(String, String, String, f64)> {
        if let Some(m) = self.prompt.matched_values.first() {
            return Some((
                m.table.clone(),
                m.column.clone(),
                m.value.clone(),
                self.capacity.quantize(0.55 + 0.45 * m.degree),
            ));
        }
        let quoted = self.intent.quoted.first()?;
        // Guess the column: best text column across the prompt.
        let mut best: Option<(String, String, f64)> = None;
        for t in &self.prompt.tables {
            for c in &t.columns {
                if self.is_numeric(c) == Some(true) || c.is_primary_key {
                    continue;
                }
                let s = self.column_score(c) * 0.55;
                if best.as_ref().map(|(_, _, bs)| s > *bs).unwrap_or(true) {
                    best = Some((t.name.clone(), c.name.clone(), s));
                }
            }
        }
        let (t, c, s) = best?;
        Some((t, c, quoted.clone(), s))
    }

    /// A second value for disjunction templates, from the question text.
    fn second_value(&self, first: &str) -> Option<String> {
        self.intent.quoted.iter().find(|q| *q != first).cloned()
    }

    /// FK edges among prompt tables: (child, fk, parent, pk). When keys are
    /// ablated from the prompt, joins are guessed from identical column
    /// names — the realistic failure mode of `-w/o primary and foreign keys`.
    fn join_edges(&self) -> Vec<(String, String, String, String)> {
        if !self.prompt.foreign_keys.is_empty() {
            return self.prompt.foreign_keys.clone();
        }
        let mut out = Vec::new();
        for (i, a) in self.prompt.tables.iter().enumerate() {
            for b in self.prompt.tables.iter().skip(i + 1) {
                for ca in &a.columns {
                    if ca.name.to_lowercase().ends_with("_id") {
                        if let Some(cb) = b.column(&ca.name) {
                            out.push((a.name.clone(), ca.name.clone(), b.name.clone(), cb.name.clone()));
                        }
                    }
                }
            }
        }
        out
    }

    /// Byte offset of the column's first mention in the question
    /// (usize::MAX when unmentioned) — used to order projections.
    fn mention_position(&self, col: &PromptColumn) -> usize {
        let lower_q = self.question.to_lowercase();
        codes_nlp::words(&col.nl())
            .into_iter()
            .filter_map(|w| lower_q.find(&w))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Byte offset of the table's first mention in the question.
    fn table_mention_position(&self, t: &PromptTable) -> usize {
        let lower_q = self.question.to_lowercase();
        codes_nlp::words(&t.nl())
            .into_iter()
            .filter_map(|w| lower_q.find(&w))
            .min()
            .unwrap_or(usize::MAX)
    }

    /// Join edge whose parent table holds the value filter.
    fn edge_to_value_table(&self, value_table: &str) -> Option<(String, String, String, String)> {
        self.join_edges()
            .into_iter()
            .find(|(child, _, parent, _)| {
                parent.eq_ignore_ascii_case(value_table) && !child.eq_ignore_ascii_case(value_table)
            })
    }

    fn first_number(&self) -> Option<&String> {
        self.intent.numbers.first()
    }

    fn two_numbers(&self) -> Option<(&String, &String)> {
        if self.intent.numbers.len() >= 2 {
            Some((&self.intent.numbers[0], &self.intent.numbers[1]))
        } else {
            None
        }
    }

    fn agg(&self) -> &'static str {
        match self.intent.agg {
            Some(AggHint::Avg) => "AVG",
            Some(AggHint::Sum) => "SUM",
            Some(AggHint::Max) => "MAX",
            Some(AggHint::Min) => "MIN",
            None => "AVG",
        }
    }

    fn op(&self) -> &'static str {
        match self.intent.op {
            Some(OpHint::Gt) | None => ">",
            Some(OpHint::Lt) => "<",
            Some(OpHint::Ge) => ">=",
            Some(OpHint::Le) => "<=",
        }
    }

    fn direction(&self) -> &'static str {
        if self.intent.superlative_asc || self.intent.agg == Some(AggHint::Min) {
            "ASC"
        } else {
            "DESC"
        }
    }
}

fn esc(v: &str) -> String {
    v.replace('\'', "''")
}

/// Fill the top `take` entries of a ranked `(template_id, score)` list in
/// one pass, keeping the candidates that fill. This is the beam step
/// shared by the solo and batched decode paths: one traversal of the
/// ranked list per member, yielding each filled [`Candidate`] alongside
/// its template score for the ranker.
pub fn fill_ranked(
    ctx: &SlotContext,
    ranked: &[(usize, f64)],
    take: usize,
) -> Vec<(Candidate, f64)> {
    let mut out = Vec::with_capacity(take.min(ranked.len()));
    for &(id, template_score) in ranked.iter().take(take) {
        if let Some(candidate) = fill_template(ctx, id) {
            out.push((candidate, template_score));
        }
    }
    out
}

/// Generate the best slot assignment for one template. `None` when the
/// prompt cannot satisfy the template's requirements.
pub fn fill_template(ctx: &SlotContext, template_id: usize) -> Option<Candidate> {
    let mut scores: Vec<f64> = Vec::new();
    let push = |s: f64, scores: &mut Vec<f64>| scores.push(s.clamp(0.0, 1.0));

    let sql = match template_id {
        0 => {
            let (t, s) = ctx.main_table()?;
            push(s, &mut scores);
            format!("SELECT COUNT(*) FROM {}", t.name)
        }
        1 | 30 => {
            let (t, ts) = ctx.main_table()?;
            push(ts, &mut scores);
            if template_id == 30 {
                // Pick the sort column first so a numeric best-linked column
                // is not consumed by the projection slot.
                let (cn, ns) = ctx.numeric_col(t, &[])?;
                let (c, cs) = ctx.content_col(t, &[&cn.name])?;
                push(cs, &mut scores);
                push(ns, &mut scores);
                let (first, second) = if ctx.mention_position(cn) < ctx.mention_position(c) {
                    (cn, c)
                } else {
                    (c, cn)
                };
                format!(
                    "SELECT {}, {} FROM {} ORDER BY {} {}",
                    first.name, second.name, t.name, cn.name, ctx.direction()
                )
            } else {
                let (c, cs) = ctx.content_col(t, &[])?;
                push(cs, &mut scores);
                format!("SELECT {} FROM {}", c.name, t.name)
            }
        }
        2 => {
            let (t, ts) = ctx.main_table()?;
            let (c1, s1) = ctx.content_col(t, &[])?;
            let (c2, s2) = ctx.content_col(t, &[&c1.name])?;
            push(ts, &mut scores);
            push(s1, &mut scores);
            push(s2, &mut scores);
            // Project in the order the question mentions the columns.
            let (first, second) = if ctx.mention_position(c2) < ctx.mention_position(c1) {
                (c2, c1)
            } else {
                (c1, c2)
            };
            format!("SELECT {}, {} FROM {}", first.name, second.name, t.name)
        }
        3 => {
            let (t, s) = ctx.main_table()?;
            push(s, &mut scores);
            format!("SELECT * FROM {}", t.name)
        }
        4 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.content_col(t, &[])?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            format!("SELECT DISTINCT {} FROM {}", c.name, t.name)
        }
        5 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let t = ctx.prompt.table(&vt)?;
            let (c, cs) = ctx.content_col(t, &[&vc])?;
            push(vs, &mut scores);
            push(cs, &mut scores);
            format!("SELECT {} FROM {} WHERE {} = '{}'", c.name, vt, vc, esc(&value))
        }
        6 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!("SELECT {} FROM {} WHERE {} {} {}", c.name, t.name, cn.name, ctx.op(), n)
        }
        7 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            push(vs, &mut scores);
            format!("SELECT COUNT(*) FROM {} WHERE {} = '{}'", vt, vc, esc(&value))
        }
        8 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            format!("SELECT {}({}) FROM {}", ctx.agg(), cn.name, t.name)
        }
        9 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            // Templates 9 and 16 share a sketch; the question's number (if
            // any) parametrizes the LIMIT.
            let limit = ctx.first_number().cloned().unwrap_or_else(|| "1".to_string());
            format!(
                "SELECT {} FROM {} ORDER BY {} {} LIMIT {}",
                c.name, t.name, cn.name, ctx.direction(), limit
            )
        }
        10 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let t = ctx.prompt.table(&vt)?;
            let (cn, ns) = ctx.numeric_col(t, &[&vc])?;
            push(vs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {}({}) FROM {} WHERE {} = '{}'",
                ctx.agg(),
                cn.name,
                vt,
                vc,
                esc(&value)
            )
        }
        11 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let t = ctx.prompt.table(&vt)?;
            let (cn, ns) = ctx.numeric_col(t, &[&vc])?;
            let (c, cs) = ctx.content_col(t, &[])?;
            let n = ctx.first_number()?;
            push(vs, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} = '{}' AND {} {} {}",
                c.name,
                vt,
                vc,
                esc(&value),
                cn.name,
                ctx.op(),
                n
            )
        }
        12 | 32 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            // One-table grouping loses credibility when a second table is
            // strongly mentioned (the join-group templates should win then).
            let other = ctx
                .prompt
                .tables
                .iter()
                .filter(|o| !o.name.eq_ignore_ascii_case(&t.name))
                .map(|o| ctx.table_score(o))
                .fold(0.0f64, f64::max);
            push(1.0 - 0.8 * other, &mut scores);
            let tail = if template_id == 32 { " ORDER BY COUNT(*) DESC" } else { "" };
            format!(
                "SELECT {}, COUNT(*) FROM {} GROUP BY {}{tail}",
                c.name, t.name, c.name
            )
        }
        13 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            let (cn, ns) = ctx.numeric_col(t, &[&c.name])?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {}, {}({}) FROM {} GROUP BY {}",
                c.name,
                ctx.agg(),
                cn.name,
                t.name,
                c.name
            )
        }
        14 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} GROUP BY {} HAVING COUNT(*) >= {}",
                c.name, t.name, c.name, n
            )
        }
        15 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} GROUP BY {} ORDER BY COUNT(*) DESC LIMIT 1",
                c.name, t.name, c.name
            )
        }
        16 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} ORDER BY {} {} LIMIT {}",
                c.name,
                t.name,
                cn.name,
                ctx.direction(),
                n
            )
        }
        17 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.content_col(t, &[])?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            format!("SELECT COUNT(DISTINCT {}) FROM {}", c.name, t.name)
        }
        18 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            let (lo, hi) = ctx.two_numbers()?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} BETWEEN {} AND {}",
                c.name, t.name, cn.name, lo, hi
            )
        }
        19 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let t = ctx.prompt.table(&vt)?;
            let (c, cs) = ctx.content_col(t, &[&vc])?;
            push(vs, &mut scores);
            push(cs, &mut scores);
            // LIKE uses the first word of the matched value as the needle.
            let needle = value.split_whitespace().next().unwrap_or(&value);
            format!(
                "SELECT {} FROM {} WHERE {} LIKE '%{}%'",
                c.name,
                vt,
                vc,
                esc(needle)
            )
        }
        20 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.content_col(t, &[])?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            let negated = ctx.question.to_lowercase().contains("known");
            format!(
                "SELECT COUNT(*) FROM {} WHERE {} IS {}NULL",
                t.name,
                c.name,
                if negated { "NOT " } else { "" }
            )
        }
        21 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let (child, fk, parent, pk) = ctx.edge_to_value_table(&vt)?;
            let child_t = ctx.prompt.table(&child)?;
            let (c, cs) = ctx.content_col(child_t, &[&fk])?;
            push(vs, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT T1.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                c.name,
                child,
                parent,
                fk,
                pk,
                vc,
                esc(&value)
            )
        }
        22 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let (child, fk, parent, pk) = ctx.edge_to_value_table(&vt)?;
            push(vs, &mut scores);
            format!(
                "SELECT COUNT(*) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                child,
                parent,
                fk,
                pk,
                vc,
                esc(&value)
            )
        }
        23 | 24 => {
            // join group (count | argmax) over the best edge by table link.
            let (child, fk, parent, pk) = ctx.best_edge()?;
            let parent_t = ctx.prompt.table(&parent)?;
            let (label, ls) = ctx.content_col(parent_t, &[&pk])?;
            push(ls, &mut scores);
            // The counted noun is the child table: require evidence that
            // the question mentions it, or this is really a one-table group.
            if let Some(child_t) = ctx.prompt.table(&child) {
                push(ctx.table_score(child_t), &mut scores);
            }
            if template_id == 23 {
                format!(
                    "SELECT T2.{}, COUNT(*) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} GROUP BY T2.{}",
                    label.name, child, parent, fk, pk, label.name
                )
            } else {
                format!(
                    "SELECT T2.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} GROUP BY T2.{} ORDER BY COUNT(*) DESC LIMIT 1",
                    label.name, child, parent, fk, pk, label.name
                )
            }
        }
        25 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let (child, fk, parent, pk) = ctx.edge_to_value_table(&vt)?;
            let child_t = ctx.prompt.table(&child)?;
            let (cn, ns) = ctx.numeric_col(child_t, &[&fk])?;
            push(vs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {}(T1.{}) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                ctx.agg(),
                cn.name,
                child,
                parent,
                fk,
                pk,
                vc,
                esc(&value)
            )
        }
        26 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} > (SELECT AVG({}) FROM {})",
                c.name, t.name, cn.name, cn.name, t.name
            )
        }
        27 => {
            let (child, fk, parent, pk) = ctx.best_edge()?;
            let parent_t = ctx.prompt.table(&parent)?;
            let child_t = ctx.prompt.table(&child)?;
            let (label, ls) = ctx.content_col(parent_t, &[&pk])?;
            let (cn, ns) = ctx.numeric_col(child_t, &[&fk])?;
            let n = ctx.first_number()?;
            push(ls, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} WHERE {} {} {})",
                label.name,
                parent,
                pk,
                fk,
                child,
                cn.name,
                ctx.op(),
                n
            )
        }
        28 => {
            let (child, fk, parent, pk) = ctx.best_edge()?;
            let parent_t = ctx.prompt.table(&parent)?;
            let (label, ls) = ctx.content_col(parent_t, &[&pk])?;
            push(ls, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} NOT IN (SELECT {} FROM {} WHERE {} IS NOT NULL)",
                label.name, parent, pk, fk, child, fk
            )
        }
        29 => {
            let (vt, vc, v1, vs) = ctx.text_filter()?;
            let v2 = ctx.second_value(&v1)?;
            let t = ctx.prompt.table(&vt)?;
            let (c, cs) = ctx.content_col(t, &[&vc])?;
            push(vs, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} = '{}' OR {} = '{}'",
                c.name,
                vt,
                vc,
                esc(&v1),
                vc,
                esc(&v2)
            )
        }
        31 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            let (cn, ns) = ctx.numeric_col(t, &[&c.name])?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {} FROM {} GROUP BY {} HAVING AVG({}) {} {}",
                c.name,
                t.name,
                c.name,
                cn.name,
                ctx.op(),
                n
            )
        }
        33 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            let t = ctx.prompt.table(&vt)?;
            let (c, cs) = ctx.content_col(t, &[&vc])?;
            let (cn, ns) = ctx.numeric_col(t, &[&vc, &c.name])?;
            let n = ctx.first_number()?;
            push(vs, &mut scores);
            push(cs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} = '{}' UNION SELECT {} FROM {} WHERE {} {} {}",
                c.name,
                vt,
                vc,
                esc(&value),
                c.name,
                vt,
                cn.name,
                ctx.op(),
                n
            )
        }
        34 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            let (lo, hi) = ctx.two_numbers()?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} > {} INTERSECT SELECT {} FROM {} WHERE {} < {}",
                c.name, t.name, cn.name, lo, c.name, t.name, cn.name, hi
            )
        }
        35 => {
            let (child, fk, parent, pk) = ctx.best_edge()?;
            push(0.6, &mut scores);
            format!("SELECT {} FROM {} EXCEPT SELECT {} FROM {}", pk, parent, fk, child)
        }
        36 => {
            let (child, fk, parent, pk) = ctx.best_edge()?;
            let parent_t = ctx.prompt.table(&parent)?;
            let (label, ls) = ctx.content_col(parent_t, &[&pk])?;
            let n = ctx.first_number()?;
            push(ls, &mut scores);
            format!(
                "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} GROUP BY {} HAVING COUNT(*) > {})",
                label.name,
                parent,
                pk,
                fk,
                child,
                fk,
                n
            )
        }
        37 => {
            let (vt, vc, value, vs) = ctx.text_filter()?;
            // Find a link table with edges to both the value table and a
            // second parent.
            let edges = ctx.join_edges();
            let mut found = None;
            for (c1, fk1, p1, pk1) in &edges {
                if !p1.eq_ignore_ascii_case(&vt) {
                    continue;
                }
                for (c2, fk2, p2, pk2) in &edges {
                    if c2 == c1 && !p2.eq_ignore_ascii_case(&vt) {
                        found = Some((
                            c1.clone(),
                            (fk2.clone(), p2.clone(), pk2.clone()),
                            (fk1.clone(), p1.clone(), pk1.clone()),
                        ));
                    }
                }
            }
            let (link, (fk_a, parent_a, pk_a), (fk_b, parent_b, pk_b)) = found?;
            let pa = ctx.prompt.table(&parent_a)?;
            let (label, ls) = ctx.content_col(pa, &[&pk_a])?;
            push(vs, &mut scores);
            push(ls, &mut scores);
            format!(
                "SELECT DISTINCT T2.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} JOIN {} AS T3 ON T1.{} = T3.{} WHERE T3.{} = '{}'",
                label.name,
                link,
                parent_a,
                fk_a,
                pk_a,
                parent_b,
                fk_b,
                pk_b,
                vc,
                esc(&value)
            )
        }
        38 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let (c, cs) = ctx.content_col(t, &[&cn.name])?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            push(cs, &mut scores);
            let f = if ctx.direction() == "ASC" { "MIN" } else { "MAX" };
            format!(
                "SELECT {} FROM {} WHERE {} = (SELECT {f}({}) FROM {})",
                c.name, t.name, cn.name, cn.name, t.name
            )
        }
        39 => {
            let (t, ts) = ctx.main_table()?;
            let (c, cs) = ctx.group_col(t)?;
            let (cn, ns) = ctx.numeric_col(t, &[&c.name])?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(cs, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT {}, COUNT(*) FROM {} WHERE {} {} {} GROUP BY {} ORDER BY COUNT(*) DESC",
                c.name,
                t.name,
                cn.name,
                ctx.op(),
                n,
                c.name
            )
        }
        40 => {
            let (t, ts) = ctx.main_table()?;
            let (cn, ns) = ctx.numeric_col(t, &[])?;
            let n = ctx.first_number()?;
            push(ts, &mut scores);
            push(ns, &mut scores);
            format!(
                "SELECT COUNT(*) FROM {} WHERE {} {} {}",
                t.name,
                cn.name,
                ctx.op(),
                n
            )
        }
        _ => return None,
    };

    let slot_score = if scores.is_empty() {
        0.4
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    };
    Some(Candidate { sql, template_id, slot_score })
}

impl<'a> SlotContext<'a> {
    /// Grouping column: prefer low-cardinality text columns that the
    /// question links to.
    fn group_col(&self, t: &'a PromptTable) -> Option<(&'a PromptColumn, f64)> {
        t.columns
            .iter()
            .filter(|c| !c.is_primary_key && !c.name.to_lowercase().ends_with("_id"))
            .filter(|c| self.is_numeric(c) != Some(true))
            .map(|c| (c, self.column_score(c)))
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap()
                    .then(self.mention_position(b.0).cmp(&self.mention_position(a.0)))
            })
    }

    /// The join edge whose endpoints the question links to best.
    fn best_edge(&self) -> Option<(String, String, String, String)> {
        self.join_edges()
            .into_iter()
            .map(|e| {
                let child_score = self.prompt.table(&e.0).map(|t| self.table_score(t)).unwrap_or(0.0);
                let parent_score = self.prompt.table(&e.2).map(|t| self.table_score(t)).unwrap_or(0.0);
                (e, child_score + parent_score)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(e, _)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSize;
    use crate::intent::extract_intent;
    use crate::prompt::{build_prompt, PromptOptions};
    use codes_datasets::finance::bank_financials_db;
    use codes_retrieval::ValueIndex;

    fn ctx_fixture(question: &str) -> (DbPrompt, Intent) {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let prompt = build_prompt(&db, question, None, None, Some(&idx), &PromptOptions::sft());
        let intent = extract_intent(question);
        (prompt, intent)
    }

    #[test]
    fn count_template_picks_right_table() {
        let (prompt, intent) = ctx_fixture("How many clients do we have?");
        let cap = ModelSize::B15.capacity();
        let ctx = SlotContext::new(&prompt, "How many clients do we have?", &intent, &cap);
        let c = fill_template(&ctx, 0).unwrap();
        assert_eq!(c.sql, "SELECT COUNT(*) FROM client");
    }

    #[test]
    fn value_filter_uses_retrieved_value() {
        let q = "How many accounts were opened in the Jesenik branch?";
        let (prompt, intent) = ctx_fixture(q);
        let cap = ModelSize::B15.capacity();
        let ctx = SlotContext::new(&prompt, q, &intent, &cap);
        let c = fill_template(&ctx, 7).unwrap();
        assert!(c.sql.contains("'Jesenik'"), "{}", c.sql);
        assert!(c.sql.contains("branch"), "{}", c.sql);
    }

    #[test]
    fn join_template_uses_fk() {
        let q = "How many clients opened their accounts in Jesenik branch were women?";
        let (prompt, intent) = ctx_fixture(q);
        let cap = ModelSize::B15.capacity();
        let ctx = SlotContext::new(&prompt, q, &intent, &cap);
        if let Some(c) = fill_template(&ctx, 22) {
            assert!(c.sql.contains("JOIN"), "{}", c.sql);
            assert!(c.sql.to_lowercase().contains("account"), "{}", c.sql);
        }
    }

    #[test]
    fn all_templates_generate_valid_sql_when_filled() {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let questions = [
            "How many clients are there with balance more than 50000 and 2 accounts between 10 and 20?",
            "Show the average balance of accounts in 'Jesenik' or 'Praha' with at least 3 clients?",
        ];
        let cap = ModelSize::B15.capacity();
        let mut filled = 0;
        for q in questions {
            let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
            let intent = extract_intent(q);
            let ctx = SlotContext::new(&prompt, q, &intent, &cap);
            for id in 0..codes_datasets::TEMPLATE_COUNT {
                if let Some(c) = fill_template(&ctx, id) {
                    filled += 1;
                    sqlengine::parse_query(&c.sql)
                        .unwrap_or_else(|e| panic!("template {id} invalid SQL `{}`: {e}", c.sql));
                    assert!((0.0..=1.0).contains(&c.slot_score));
                }
            }
        }
        assert!(filled >= 30, "only {filled} template fills across fixtures");
    }

    #[test]
    fn generated_sql_executes() {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let q = "What is the average balance of accounts in the Jesenik branch?";
        let prompt = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
        let intent = extract_intent(q);
        let cap = ModelSize::B7.capacity();
        let ctx = SlotContext::new(&prompt, q, &intent, &cap);
        let c = fill_template(&ctx, 10).unwrap();
        let r = sqlengine::execute_query(&db, &c.sql);
        assert!(r.is_ok(), "{} -> {:?}", c.sql, r.err());
    }

    #[test]
    fn no_value_retriever_degrades_filter_quality() {
        let db = bank_financials_db(1);
        let idx = ValueIndex::build(&db);
        let q = "How many clients have gender 'F'?";
        let intent = extract_intent(q);
        let cap = ModelSize::B15.capacity();
        let with = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft());
        let without = build_prompt(&db, q, None, None, Some(&idx), &PromptOptions::sft().without_value_retriever());
        let ctx_with = SlotContext::new(&with, q, &intent, &cap);
        let ctx_without = SlotContext::new(&without, q, &intent, &cap);
        let c_with = fill_template(&ctx_with, 7).unwrap();
        let c_without = fill_template(&ctx_without, 7).unwrap();
        assert!(c_with.slot_score >= c_without.slot_score);
    }
}
