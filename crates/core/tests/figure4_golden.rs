//! Golden snapshot of the Figure-4 prompt serialization.
//!
//! The serialized prompt is the model's entire view of the database, so
//! its exact text is load-bearing: a formatting drift silently changes
//! every experiment downstream. This test pins the bytes for the §6.2
//! running example (bank_financials, the Jesenik question) against a
//! checked-in fixture.
//!
//! To regenerate after an *intentional* format change:
//! `UPDATE_GOLDEN=1 cargo test -p codes --test figure4_golden`

use std::fs;
use std::path::PathBuf;

use codes::{build_prompt, PromptOptions};
use codes_datasets::finance::bank_financials_db;
use codes_retrieval::ValueIndex;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/figure4_prompt.txt")
}

fn rendered_prompt() -> String {
    let db = bank_financials_db(1);
    let idx = ValueIndex::build(&db);
    let question = "How many clients opened their accounts in Jesenik branch were women?";
    // No classifier: the full-schema path, so the snapshot covers schema
    // serialization, metadata, matched values, and truncation without
    // depending on trained classifier weights.
    build_prompt(&db, question, None, None, Some(&idx), &PromptOptions::sft()).serialize()
}

#[test]
fn figure4_prompt_serialization_is_byte_identical_to_fixture() {
    let text = rendered_prompt();
    // Sanity-check the content before comparing bytes, so a regenerated
    // fixture can never pin a degenerate prompt.
    assert!(text.contains("database schema :"), "prompt lost its schema header:\n{text}");
    assert!(text.contains("foreign keys :"), "prompt lost its foreign keys section:\n{text}");
    assert!(
        text.contains("account.branch = 'Jesenik'"),
        "prompt lost the retrieved Jesenik value:\n{text}"
    );

    let path = fixture_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&path, &text).expect("write regenerated fixture");
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        text == golden,
        "Figure-4 prompt drifted from {} — if the change is intentional, regenerate with \
         UPDATE_GOLDEN=1.\n--- fixture ({} bytes) ---\n{golden}\n--- rendered ({} bytes) ---\n{text}",
        path.display(),
        golden.len(),
        text.len()
    );
}

#[test]
fn figure4_prompt_serialization_is_deterministic_across_rebuilds() {
    assert_eq!(rendered_prompt(), rendered_prompt());
}
