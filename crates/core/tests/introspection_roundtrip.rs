//! Introspection round-trip: a catalog mirrored off a live backend must
//! be indistinguishable from a hand-registered one where it matters — the
//! serialized Figure-4 prompt, the BM25 value index, and the revision
//! stamp the cache invalidation rides on.
//!
//! This is the acceptance bar for live schema introspection: if the
//! mirror dropped a column comment, reordered rows into a different value
//! index, or lost a PK/FK edge, the prompt bytes would differ and the
//! whole reproduction stack would silently drift for attached databases.

use std::sync::Arc;

use codes::{build_prompt, PromptOptions};
use codes_datasets::finance::bank_financials_db;
use codes_retrieval::ValueIndex;
use codes_storage::{introspect, Backend, IntrospectOptions, MemoryBackend};

fn prompt_for(db: &sqlengine::Database) -> String {
    let idx = ValueIndex::build(db);
    let question = "How many clients opened their accounts in Jesenik branch were women?";
    build_prompt(db, question, None, None, Some(&idx), &PromptOptions::sft()).serialize()
}

#[test]
fn introspected_catalog_renders_a_byte_identical_figure4_prompt() {
    let hand_registered = bank_financials_db(1);
    let expected = prompt_for(&hand_registered);

    let backend = MemoryBackend::new(vec![bank_financials_db(1)]);
    let mut conn = backend.connect().expect("in-memory connect");
    // A small page size forces the paged row harvest to actually paginate.
    let options = IntrospectOptions { page_size: 7, ..IntrospectOptions::default() };
    let catalog =
        introspect(&mut conn, "bank_financials", &options).expect("introspection succeeds");

    assert_eq!(
        prompt_for(&catalog.database),
        expected,
        "the introspected mirror and the hand-registered catalog must serialize to \
         byte-identical prompts"
    );
}

#[test]
fn introspected_mirror_carries_the_backend_revision_stamp() {
    let backend = MemoryBackend::new(vec![bank_financials_db(1)]);
    let live_revision = {
        let store = backend.store();
        let store = store.read();
        store.get("bank_financials").expect("db registered").revision()
    };
    let mut conn = backend.connect().expect("connect");
    let catalog = introspect(&mut conn, "bank_financials", &IntrospectOptions::default())
        .expect("introspection succeeds");
    assert_eq!(catalog.revision, live_revision, "catalog stamp matches the live backend");
    assert_eq!(
        catalog.database.revision(),
        live_revision,
        "the executable mirror itself is stamped, so revision-aware value-index reuse and \
         cache generation checks treat it exactly like the live catalog"
    );

    // Re-introspecting an unchanged backend observes the same token —
    // the 'equal revisions imply identical catalog state' invariant that
    // keeps cache generations stable across redundant refreshes.
    let again = introspect(&mut conn, "bank_financials", &IntrospectOptions::default())
        .expect("re-introspection succeeds");
    assert_eq!(again.revision, catalog.revision);

    // A live mutation moves the token, and the fresh mirror carries it.
    let store = backend.store();
    store
        .write()
        .get_mut("bank_financials")
        .expect("db registered")
        .table_mut("client")
        .expect("client table")
        .insert(vec![9_999.into(), "Zora".into(), "F".into(), "Jesenik".into(), 1.into()])
        .expect("row fits");
    let refreshed = introspect(&mut conn, "bank_financials", &IntrospectOptions::default())
        .expect("introspection after mutation succeeds");
    assert_ne!(refreshed.revision, catalog.revision, "mutations move the stamp");
}

#[test]
fn prepare_catalog_reconciles_value_index_and_cache_generation() {
    use codes::{
        pretrain, table4_models, CacheSettings, CodesModel, CodesSystem, PretrainConfig,
        SketchCatalog, SystemCache,
    };

    let registry = codes_obs::Registry::new();
    let cache = Arc::new(SystemCache::with_registry(&registry, CacheSettings::default()));
    let sketches = Arc::new(SketchCatalog::build());
    let spec = table4_models().into_iter().find(|m| m.name == "CodeS-1B").expect("known model");
    let lm = pretrain(&sketches, &spec, &PretrainConfig { scale: 10, seed: 3 });
    let system = CodesSystem::new(CodesModel::new(lm, sketches), PromptOptions::sft())
        .with_cache(Arc::clone(&cache));

    let backend = MemoryBackend::new(vec![bank_financials_db(1)]);
    let mut conn = backend.connect().expect("connect");
    let catalog = introspect(&mut conn, "bank_financials", &IntrospectOptions::default())
        .expect("introspection succeeds");

    system.prepare_catalog(&catalog);
    let generation = cache.generation("bank_financials");
    // Preparing the same catalog again is idempotent: same revision, no
    // generation bump.
    system.prepare_catalog(&catalog);
    assert_eq!(cache.generation("bank_financials"), generation);

    // A refreshed catalog with a moved revision bumps the generation,
    // exactly like a local catalog mutation would.
    backend
        .mutate("bank_financials", |db| {
            db.table_mut("client")
                .expect("client table")
                .insert(vec![8_888.into(), "Milan".into(), "M".into(), "Praha".into(), 1.into()])
                .expect("row fits");
        })
        .expect("db registered");
    let refreshed = introspect(&mut conn, "bank_financials", &IntrospectOptions::default())
        .expect("re-introspection succeeds");
    system.prepare_catalog(&refreshed);
    assert!(
        cache.generation("bank_financials") > generation,
        "a schema change observed through re-introspection invalidates cached entries"
    );
}
