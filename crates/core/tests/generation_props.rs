//! Property-style tests over the generation pipeline: every candidate the
//! grammar emits parses, scores stay bounded, and generation is
//! deterministic.

use std::sync::Arc;

use codes::generator::{fill_template, SlotContext};
use codes::{
    build_prompt, extract_intent, pretrain, table4_models, CodesModel, ModelSize, PretrainConfig,
    PromptOptions, SketchCatalog,
};
use codes_retrieval::ValueIndex;
use proptest::prelude::*;

fn fixture() -> (codes_datasets::Benchmark, Arc<SketchCatalog>) {
    let mut cfg = codes_datasets::BenchmarkConfig::spider(401);
    cfg.train_samples_per_db = 8;
    cfg.dev_samples_per_db = 6;
    (codes_datasets::build_benchmark("props", &cfg), Arc::new(SketchCatalog::build()))
}

#[test]
fn every_filled_template_parses_and_scores_in_bounds() {
    let (bench, _) = fixture();
    let cap = ModelSize::B15.capacity();
    let mut filled_total = 0usize;
    for s in bench.dev.iter().take(30) {
        let db = bench.database(&s.db_id).unwrap();
        let index = ValueIndex::build(db);
        let prompt = build_prompt(db, &s.question, None, None, Some(&index), &PromptOptions::sft());
        let mut intent = extract_intent(&s.question);
        intent.value_hints = prompt.matched_values.len();
        let ctx = SlotContext::new(&prompt, &s.question, &intent, &cap);
        for id in 0..codes_datasets::TEMPLATE_COUNT {
            if let Some(c) = fill_template(&ctx, id) {
                filled_total += 1;
                sqlengine::parse_query(&c.sql)
                    .unwrap_or_else(|e| panic!("template {id} emitted unparseable SQL `{}`: {e}", c.sql));
                assert!(
                    (0.0..=1.0).contains(&c.slot_score),
                    "slot score out of bounds: {} for {}",
                    c.slot_score,
                    c.sql
                );
                assert_eq!(c.template_id, id);
            }
        }
    }
    assert!(filled_total > 150, "too few template fills: {filled_total}");
}

#[test]
fn generation_is_deterministic() {
    let (bench, catalog) = fixture();
    let spec = table4_models().into_iter().find(|m| m.name == "CodeS-3B").unwrap();
    let lm = Arc::new(pretrain(&catalog, &spec, &PretrainConfig { scale: 8, seed: 2 }));
    let model = CodesModel::new(Arc::clone(&lm), Arc::clone(&catalog));
    let s = &bench.dev[0];
    let db = bench.database(&s.db_id).unwrap();
    let index = ValueIndex::build(db);
    let prompt = build_prompt(db, &s.question, None, None, Some(&index), &PromptOptions::sft());
    let a = model.generate(db, &prompt, &s.question, None, &[]);
    let b = model.generate(db, &prompt, &s.question, None, &[]);
    assert_eq!(a.sql, b.sql);
    assert_eq!(a.beam.len(), b.beam.len());
    for (x, y) in a.beam.iter().zip(&b.beam) {
        assert_eq!(x.sql, y.sql);
        assert_eq!(x.score, y.score);
    }
}

#[test]
fn beam_respects_capacity_width() {
    let (bench, catalog) = fixture();
    for (name, size) in [("CodeS-1B", ModelSize::B1), ("CodeS-15B", ModelSize::B15)] {
        let spec = table4_models().into_iter().find(|m| m.name == name).unwrap();
        let lm = Arc::new(pretrain(&catalog, &spec, &PretrainConfig { scale: 8, seed: 2 }));
        let model = CodesModel::new(lm, Arc::clone(&catalog));
        let s = &bench.dev[1];
        let db = bench.database(&s.db_id).unwrap();
        let prompt = build_prompt(db, &s.question, None, None, None, &PromptOptions::sft());
        let g = model.generate(db, &prompt, &s.question, None, &[]);
        assert!(g.beam.len() <= size.capacity().beam_width);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Intent extraction never panics and template scores stay bounded for
    /// arbitrary question-like text.
    #[test]
    fn intent_extraction_is_total(q in "[ a-zA-Z0-9'?.,]{0,80}") {
        let intent = extract_intent(&q);
        for id in 0..codes_datasets::TEMPLATE_COUNT {
            let s = codes::intent::template_intent_score(id, &intent);
            prop_assert!((0.0..=1.2).contains(&s), "template {} score {} for {:?}", id, s, q);
        }
    }

    /// Quoted-span extraction returns spans actually present in the text.
    #[test]
    fn quoted_spans_are_substrings(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        let q = format!("show items named '{a}' or '{b}' today");
        let intent = extract_intent(&q);
        prop_assert_eq!(intent.quoted.len(), 2);
        for span in &intent.quoted {
            prop_assert!(q.contains(span.as_str()));
        }
    }

    /// Numbers extracted from a question parse back to numbers.
    #[test]
    fn extracted_numbers_parse(n in 0u32..1_000_000, m in 0u32..100) {
        let q = format!("items with value over {n} and at most {m} pieces");
        let intent = extract_intent(&q);
        prop_assert!(intent.numbers.iter().all(|x| x.parse::<f64>().is_ok()));
        prop_assert!(intent.numbers.contains(&n.to_string()));
    }
}
