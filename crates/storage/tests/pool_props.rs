//! Property tests for the connection pool: whatever the checkout /
//! checkin / fault interleaving looks like, (1) live backend connections
//! never exceed the pool's capacity, (2) every checkout is checked in or
//! discarded exactly once, and (3) a connection handed out from the free
//! list is always healthy — health-checked recycling means a broken
//! connection can never be recycled into a caller's hands.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use codes_storage::{
    Backend, Connection, ConnectionPool, FaultSpec, FlakyBackend, MemoryBackend, PoolConfig,
    PooledConn, StorageError,
};
use proptest::prelude::*;
use sqlengine::{Backoff, Column, DataType, Database, QueryResult, TableSchema};

fn fixture() -> Database {
    let mut db = Database::new("d");
    let t = db
        .create_table(TableSchema::new("t", vec![Column::new("c", DataType::Integer)]))
        .expect("fresh table");
    t.insert(vec![1.into()]).expect("row fits");
    db
}

/// Wraps any backend and counts live connections from the backend's own
/// point of view, recording the peak — the occupancy bound is asserted
/// against ground truth, not against the pool's self-reported gauges.
struct CountingBackend<B> {
    inner: B,
    live: Arc<AtomicI64>,
    peak: Arc<AtomicI64>,
}

struct CountingConnection {
    inner: Box<dyn Connection>,
    live: Arc<AtomicI64>,
}

impl<B: Backend> Backend for CountingBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn connect(&self) -> Result<Box<dyn Connection>, StorageError> {
        let inner = self.inner.connect()?;
        let live = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(live, Ordering::SeqCst);
        Ok(Box::new(CountingConnection { inner, live: Arc::clone(&self.live) }))
    }
}

impl Drop for CountingConnection {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Connection for CountingConnection {
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError> {
        self.inner.execute(db_id, sql)
    }

    fn ping(&mut self) -> Result<(), StorageError> {
        self.inner.ping()
    }

    fn databases(&mut self) -> Result<Vec<String>, StorageError> {
        self.inner.databases()
    }

    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError> {
        self.inner.tables(db_id)
    }

    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError> {
        self.inner.table_schema(db_id, table)
    }

    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError> {
        self.inner.revision(db_id)
    }
}

struct Harness {
    pool: ConnectionPool,
    live: Arc<AtomicI64>,
    peak: Arc<AtomicI64>,
}

fn harness(seed: u64, capacity: usize, spec: FaultSpec) -> Harness {
    let live = Arc::new(AtomicI64::new(0));
    let peak = Arc::new(AtomicI64::new(0));
    let backend = CountingBackend {
        inner: FlakyBackend::new(
            MemoryBackend::new(vec![fixture()]),
            FaultSpec { seed, ..spec },
        ),
        live: Arc::clone(&live),
        peak: Arc::clone(&peak),
    };
    let registry = codes_obs::Registry::new();
    let pool = ConnectionPool::with_registry(
        Arc::new(backend),
        PoolConfig {
            capacity,
            checkout_timeout: Duration::from_millis(20),
            connect_attempts: 2,
            backoff: Backoff::new(Duration::from_micros(50), Duration::from_micros(200), seed),
            ..PoolConfig::default()
        },
        &registry,
    );
    Harness { pool, live, peak }
}

const STORM: FaultSpec = FaultSpec {
    seed: 0,
    connect_fail: 0.15,
    io_fail: 0.10,
    silent_break: 0.10,
    latency: Duration::ZERO,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decode an op sequence from generated words (the vendored proptest
    /// has no tuple combinators): `word % 3` picks checkout / checkin /
    /// execute, the remaining bits pick which held guard to act on. The
    /// first word seeds the fault stream.
    #[test]
    fn occupancy_bound_and_checkout_conservation(
        words in prop::collection::vec(0u64..u64::MAX, 2..120),
    ) {
        let capacity = 3usize;
        let h = harness(words[0], capacity, STORM);
        let mut held: Vec<PooledConn> = Vec::new();
        for &word in &words[1..] {
            match word % 3 {
                0 => {
                    if let Ok(conn) = h.pool.checkout() {
                        held.push(conn);
                    }
                }
                1 => {
                    if !held.is_empty() {
                        let idx = (word / 3) as usize % held.len();
                        drop(held.remove(idx));
                    }
                }
                _ => {
                    if !held.is_empty() {
                        let idx = (word / 3) as usize % held.len();
                        let _ = held[idx].execute("d", "SELECT c FROM t");
                    }
                }
            }
            prop_assert!(
                h.peak.load(Ordering::SeqCst) <= capacity as i64,
                "live connections never exceed capacity"
            );
        }
        held.clear();
        let stats = h.pool.stats();
        // Every checkout is checked in or discarded exactly once, no
        // guard outlives the sequence, and every live backend connection
        // is parked idle — nothing leaked.
        prop_assert_eq!(stats.checkouts, stats.checkins + stats.discarded());
        prop_assert_eq!(stats.in_use, 0);
        prop_assert_eq!(h.live.load(Ordering::SeqCst), stats.idle);
    }

    /// A connection handed out by the pool is always healthy on arrival:
    /// checkin probes liveness, so silently broken connections are
    /// discarded at the pool boundary, never recycled to a caller.
    #[test]
    fn recycled_connections_are_always_healthy(
        words in prop::collection::vec(0u64..u64::MAX, 2..80),
    ) {
        let h = harness(words[0], 2, STORM);
        for &word in &words[1..] {
            match h.pool.checkout() {
                Ok(mut conn) => {
                    prop_assert!(
                        conn.ping().is_ok(),
                        "a freshly handed-out connection must pass its liveness probe"
                    );
                    if word % 2 == 0 {
                        // Use it (possibly breaking it) before checkin.
                        let _ = conn.execute("d", "SELECT c FROM t");
                    }
                }
                Err(e) => prop_assert!(
                    matches!(e, StorageError::Connect(_) | StorageError::Exhausted { .. }),
                    "only connect refusals or exhaustion may surface, got {e}"
                ),
            }
        }
    }
}

/// Multithreaded storm: six threads hammer a capacity-four pool over a
/// chaotic backend. The occupancy bound and checkout conservation must
/// hold under real contention, and the storm must terminate (bounded
/// checkout timeout — no hangs).
#[test]
fn concurrent_storm_conserves_capacity_and_leaks_nothing() {
    let capacity = 4usize;
    let h = harness(42, capacity, FaultSpec::chaos(42));
    let result = crossbeam::thread::scope(|scope| {
        for t in 0..6u64 {
            let pool = h.pool.clone();
            scope.spawn(move |_| {
                for i in 0..40u64 {
                    match pool.checkout() {
                        Ok(mut conn) => {
                            let _ = conn.execute("d", "SELECT c FROM t");
                            if (t + i) % 7 == 0 {
                                conn.discard();
                            }
                        }
                        Err(e) => assert!(
                            matches!(
                                e,
                                StorageError::Connect(_) | StorageError::Exhausted { .. }
                            ),
                            "unexpected checkout error under storm: {e}"
                        ),
                    }
                }
            });
        }
    });
    assert!(result.is_ok(), "storm threads joined without panicking");
    let stats = h.pool.stats();
    assert!(h.peak.load(Ordering::SeqCst) <= capacity as i64, "occupancy bound held: {stats:?}");
    assert_eq!(
        stats.checkouts,
        stats.checkins + stats.discarded(),
        "every checkout checked in or discarded exactly once: {stats:?}"
    );
    assert_eq!(stats.in_use, 0, "no guard leaked past the storm");
    assert_eq!(
        h.live.load(Ordering::SeqCst),
        stats.idle,
        "live backend connections are exactly the parked ones: {stats:?}"
    );
    assert!(stats.established > 0, "the storm actually exercised the backend");
}
