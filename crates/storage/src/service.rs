//! The serving-side storage facade: attached catalogs over a pooled
//! backend, kept fresh by revision checks.
//!
//! A [`CatalogService`] owns a [`ConnectionPool`] and a map of attached
//! [`Catalog`]s. `attach` introspects a database on registration (the
//! gateway's `POST /v1/databases` endpoint lands here); `sync` is the
//! cheap per-dispatch check — one pooled revision read — that
//! re-introspects and swaps the catalog only when the backend's token
//! moved. Every swap that changes the revision notifies the registered
//! revision observer, which the serving layer wires to
//! `SystemCache::observe_revision`, so a schema change on the live
//! backend bumps cache generations exactly like a local catalog mutation.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sqlengine::Database;

use crate::backend::Connection;
use crate::error::StorageError;
use crate::introspect::{introspect, Catalog, IntrospectOptions};
use crate::pool::ConnectionPool;

/// Callback invoked with the fresh mirror whenever an attach or sync
/// installs a catalog (first sighting included).
pub type RevisionObserver = Box<dyn Fn(&Database) + Send + Sync>;

/// What a [`CatalogService::sync`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOutcome {
    /// The backend's revision matches the attached catalog; nothing moved.
    Unchanged,
    /// The revision moved; the catalog was re-introspected and swapped.
    Refreshed {
        /// Revision of the replaced catalog.
        from: u64,
        /// Revision of the fresh catalog.
        to: u64,
    },
    /// The database was not attached yet; this sync attached it.
    Attached,
}

/// Live view of the databases served through one storage backend.
pub struct CatalogService {
    pool: ConnectionPool,
    options: IntrospectOptions,
    catalogs: RwLock<HashMap<String, Arc<Catalog>>>,
    observer: RwLock<Option<RevisionObserver>>,
}

impl CatalogService {
    /// A service over `pool` with the given introspection options.
    pub fn new(pool: ConnectionPool, options: IntrospectOptions) -> CatalogService {
        CatalogService {
            pool,
            options,
            catalogs: RwLock::new(HashMap::new()),
            observer: RwLock::new(None),
        }
    }

    /// The underlying pool (for health/metrics inspection).
    pub fn pool(&self) -> &ConnectionPool {
        &self.pool
    }

    /// Register the revision observer (replacing any previous one). The
    /// serving layer points this at its cache so generation bumps happen
    /// at swap time, before any post-change request can consult the cache.
    pub fn set_revision_observer(&self, observer: RevisionObserver) {
        *self.observer.write() = Some(observer);
    }

    fn notify(&self, database: &Database) {
        if let Some(observer) = self.observer.read().as_ref() {
            observer(database);
        }
    }

    /// Attach (or re-attach) a database: introspect it over a pooled
    /// connection and install the catalog.
    pub fn attach(&self, db_id: &str) -> Result<Arc<Catalog>, StorageError> {
        let mut conn = self.pool.checkout()?;
        let catalog = Arc::new(introspect(&mut conn, db_id, &self.options)?);
        drop(conn);
        self.catalogs.write().insert(db_id.to_string(), Arc::clone(&catalog));
        self.notify(&catalog.database);
        Ok(catalog)
    }

    /// Attach every database the backend reports. Returns the attached
    /// ids, sorted.
    pub fn attach_all(&self) -> Result<Vec<String>, StorageError> {
        let ids = {
            let mut conn = self.pool.checkout()?;
            conn.databases()?
        };
        for db_id in &ids {
            self.attach(db_id)?;
        }
        Ok(ids)
    }

    /// Reconcile one attached catalog with the live backend: read the
    /// revision over a pooled connection and re-introspect only on change.
    pub fn sync(&self, db_id: &str) -> Result<SyncOutcome, StorageError> {
        let Some(current) = self.catalog(db_id) else {
            self.attach(db_id)?;
            return Ok(SyncOutcome::Attached);
        };
        let live = {
            let mut conn = self.pool.checkout()?;
            conn.revision(db_id)?
        };
        if live == current.revision {
            return Ok(SyncOutcome::Unchanged);
        }
        let fresh = self.attach(db_id)?;
        Ok(SyncOutcome::Refreshed { from: current.revision, to: fresh.revision })
    }

    /// The attached catalog for `db_id`, if any.
    pub fn catalog(&self, db_id: &str) -> Option<Arc<Catalog>> {
        self.catalogs.read().get(db_id).cloned()
    }

    /// Whether `db_id` is attached.
    pub fn contains(&self, db_id: &str) -> bool {
        self.catalogs.read().contains_key(db_id)
    }

    /// Attached database ids, sorted.
    pub fn attached(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.catalogs.read().keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Detach a database (e.g. after the backend dropped it). Returns
    /// whether it was attached.
    pub fn detach(&self, db_id: &str) -> bool {
        self.catalogs.write().remove(db_id).is_some()
    }
}

impl std::fmt::Debug for CatalogService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CatalogService")
            .field("attached", &self.attached())
            .field("capacity", &self.pool.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use crate::pool::PoolConfig;
    use sqlengine::{Column, DataType, TableSchema};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn service() -> (Arc<MemoryBackend>, CatalogService) {
        let mut db = Database::new("d");
        db.create_table(TableSchema::new("t", vec![Column::new("c", DataType::Integer)]))
            .expect("fresh table");
        let backend = Arc::new(MemoryBackend::new(vec![db]));
        let registry = codes_obs::Registry::new();
        let pool = ConnectionPool::with_registry(
            Arc::clone(&backend) as Arc<dyn crate::Backend>,
            PoolConfig { capacity: 2, ..PoolConfig::default() },
            &registry,
        );
        (backend, CatalogService::new(pool, IntrospectOptions::default()))
    }

    #[test]
    fn sync_refreshes_only_on_revision_change_and_notifies() {
        let (backend, service) = service();
        let observed = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&observed);
        service.set_revision_observer(Box::new(move |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        }));

        assert_eq!(service.sync("d").expect("first sync attaches"), SyncOutcome::Attached);
        assert_eq!(observed.load(Ordering::SeqCst), 1);
        assert_eq!(service.sync("d").expect("steady state"), SyncOutcome::Unchanged);
        assert_eq!(observed.load(Ordering::SeqCst), 1, "no notify without a change");

        let from = service.catalog("d").expect("attached").revision;
        backend
            .mutate("d", |db| {
                db.table_mut("t").expect("t exists").insert(vec![9.into()]).expect("row fits");
            })
            .expect("d exists");
        match service.sync("d").expect("refresh") {
            SyncOutcome::Refreshed { from: f, to } => {
                assert_eq!(f, from);
                assert_ne!(f, to);
            }
            other => panic!("expected refresh, got {other:?}"),
        }
        assert_eq!(observed.load(Ordering::SeqCst), 2, "swap notifies the observer");
        let mirrored = service.catalog("d").expect("attached");
        assert_eq!(mirrored.database.table("t").expect("t").rows.len(), 1, "fresh rows visible");
    }

    #[test]
    fn detach_and_contains() {
        let (_backend, service) = service();
        assert!(!service.contains("d"));
        service.attach("d").expect("attach");
        assert!(service.contains("d"));
        assert_eq!(service.attached(), vec!["d".to_string()]);
        assert!(service.detach("d"));
        assert!(!service.detach("d"));
    }
}
