//! Live schema introspection: build a full [`Catalog`] from a connection.
//!
//! This is the paper's Algorithm-1 metadata — tables, columns with types
//! and comments, PK/FK edges, and the cell values the BM25 value indexes
//! and representative-value prompt sections feed on — but *discovered at
//! runtime* over the [`crate::Connection`] trait instead of requiring a
//! pre-registered database. The result is an executable mirror: schema
//! via the catalog-introspection calls, rows harvested through paged
//! `SELECT`s over the same wire every query takes, so everything
//! downstream (Figure-4 prompt construction, value indexing, EX-style
//! execution of candidate SQL) works on the mirror exactly as it would on
//! a hand-registered catalog.
//!
//! **Revision stamping.** The backend's revision token is read before and
//! after the harvest; on mismatch (the schema moved under the reader) the
//! harvest retries, and after [`IntrospectOptions::consistency_retries`]
//! failures reports [`StorageError::Introspect`]. The mirror is stamped
//! with the *backend's* token ([`sqlengine::Database::set_revision`]), so
//! the existing cache generation-invalidation works unchanged: an
//! unchanged schema re-introspects to the same token (no spurious
//! invalidation), a changed schema yields a fresh token and bumps
//! generations exactly like a local catalog mutation.

use sqlengine::Database;

use crate::backend::{quote_ident, Connection};
use crate::error::StorageError;

/// Introspection tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct IntrospectOptions {
    /// Rows fetched per paged `SELECT` during the row harvest.
    pub page_size: usize,
    /// Cap on harvested rows per table; `None` mirrors everything (the
    /// right choice for in-process backends, where the mirror doubles as
    /// the execution target).
    pub max_rows_per_table: Option<usize>,
    /// How many times to restart the harvest when the revision token
    /// moves mid-read before giving up.
    pub consistency_retries: u32,
}

impl Default for IntrospectOptions {
    fn default() -> IntrospectOptions {
        IntrospectOptions { page_size: 256, max_rows_per_table: None, consistency_retries: 3 }
    }
}

/// A catalog discovered from a live connection.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// The backend's revision token at harvest time (also stamped into
    /// [`Catalog::database`]).
    pub revision: u64,
    /// Executable mirror of the discovered schema and data, named after
    /// the source `db_id`.
    pub database: Database,
}

impl Catalog {
    /// The source database id.
    pub fn db_id(&self) -> &str {
        &self.database.name
    }

    /// Number of discovered tables.
    pub fn table_count(&self) -> usize {
        self.database.tables.len()
    }

    /// Number of discovered columns, across all tables.
    pub fn column_count(&self) -> usize {
        self.database.tables.iter().map(|t| t.schema.columns.len()).sum()
    }

    /// Number of harvested cell values, across all tables.
    pub fn value_count(&self) -> usize {
        self.database
            .tables
            .iter()
            .map(|t| t.rows.len() * t.schema.columns.len())
            .sum()
    }
}

/// Wrap a non-transport error into the introspection kind; transport and
/// pool failures keep their own kinds so callers can tell "the backend is
/// down" from "the backend answered nonsense".
fn introspect_err(context: &str, e: StorageError) -> StorageError {
    match e {
        StorageError::Connect(_)
        | StorageError::Exhausted { .. }
        | StorageError::Closed
        | StorageError::UnknownDatabase(_) => e,
        StorageError::Introspect(what) => StorageError::Introspect(format!("{context}: {what}")),
        StorageError::Engine(engine) => {
            StorageError::Introspect(format!("{context}: {engine}"))
        }
    }
}

/// Build a [`Catalog`] for `db_id` over `conn`.
pub fn introspect(
    conn: &mut dyn Connection,
    db_id: &str,
    options: &IntrospectOptions,
) -> Result<Catalog, StorageError> {
    let mut last_moved = (0u64, 0u64);
    for _ in 0..=options.consistency_retries {
        let before = conn.revision(db_id)?;
        let database = harvest(conn, db_id, options)?;
        let after = conn.revision(db_id)?;
        if before == after {
            let mut database = database;
            database.set_revision(before);
            return Ok(Catalog { revision: before, database });
        }
        last_moved = (before, after);
    }
    Err(StorageError::Introspect(format!(
        "{db_id}: revision kept moving during harvest ({} -> {} on the final attempt)",
        last_moved.0, last_moved.1
    )))
}

/// One harvest pass: schemas via catalog introspection, rows via paged
/// SELECTs through `execute`.
fn harvest(
    conn: &mut dyn Connection,
    db_id: &str,
    options: &IntrospectOptions,
) -> Result<Database, StorageError> {
    let page_size = options.page_size.max(1);
    let mut database = Database::new(db_id);
    for table_name in conn.tables(db_id)? {
        let schema = conn.table_schema(db_id, &table_name)?;
        let column_count = schema.columns.len();
        if database.create_table(schema).is_err() {
            return Err(StorageError::Introspect(format!(
                "{db_id}: backend listed table '{table_name}' twice"
            )));
        }
        let mut offset = 0usize;
        loop {
            let remaining = options
                .max_rows_per_table
                .map_or(page_size, |cap| cap.saturating_sub(offset).min(page_size));
            if remaining == 0 {
                break;
            }
            let sql = format!(
                "SELECT * FROM {} LIMIT {remaining} OFFSET {offset}",
                quote_ident(&table_name)
            );
            let page = conn
                .execute(db_id, &sql)
                .map_err(|e| introspect_err(&format!("{db_id}.{table_name} row harvest"), e))?;
            let fetched = page.rows.len();
            if fetched == 0 {
                break;
            }
            // `table_mut` stamps local revisions freely; the final
            // `set_revision` overwrites them with the backend's token.
            let Some(table) = database.table_mut(&table_name) else {
                return Err(StorageError::Introspect(format!(
                    "{db_id}: table '{table_name}' vanished from the mirror"
                )));
            };
            for row in page.rows {
                if row.len() != column_count {
                    return Err(StorageError::Introspect(format!(
                        "{db_id}.{table_name}: row arity {} does not match {} columns",
                        row.len(),
                        column_count
                    )));
                }
                if let Err(e) = table.insert(row) {
                    return Err(StorageError::Introspect(format!(
                        "{db_id}.{table_name}: harvested row rejected by schema: {e}"
                    )));
                }
            }
            offset += fetched;
            if fetched < remaining {
                break;
            }
        }
    }
    Ok(database)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::memory::MemoryBackend;
    use sqlengine::{Column, DataType, TableSchema};

    fn fixture() -> Database {
        let mut db = Database::new("shop");
        let items = db
            .create_table(
                TableSchema::new(
                    "items",
                    vec![
                        Column::new("id", DataType::Integer).primary_key(),
                        Column::new("label", DataType::Text).with_comment("display name"),
                        Column::new("price", DataType::Real),
                    ],
                )
                .with_foreign_key("id", "stock", "item_id"),
            )
            .expect("fresh table");
        for i in 0..700i64 {
            items
                .insert(vec![i.into(), format!("item-{i}").into(), (i as f64 * 0.5).into()])
                .expect("row fits");
        }
        db.create_table(TableSchema::new(
            "stock",
            vec![Column::new("item_id", DataType::Integer), Column::new("n", DataType::Integer)],
        ))
        .expect("fresh table");
        db
    }

    #[test]
    fn mirror_is_faithful_and_revision_stamped() {
        let source = fixture();
        let source_revision = source.revision();
        let backend = MemoryBackend::new(vec![source]);
        let mut conn = backend.connect().expect("connect");
        let catalog =
            introspect(&mut conn, "shop", &IntrospectOptions::default()).expect("introspects");

        assert_eq!(catalog.revision, source_revision, "stamped with the backend's token");
        assert_eq!(catalog.database.revision(), source_revision);
        assert_eq!(catalog.table_count(), 2);
        assert_eq!(catalog.column_count(), 5);
        let items = catalog.database.table("items").expect("mirrored");
        assert_eq!(items.rows.len(), 700, "paged harvest crosses page boundaries");
        assert_eq!(items.schema.columns[1].comment.as_deref(), Some("display name"));
        assert_eq!(items.schema.foreign_keys.len(), 1, "FK edges survive");
        // Row content and order survive the wire.
        assert_eq!(items.rows[699][1], "item-699".into());
    }

    #[test]
    fn row_cap_limits_the_harvest() {
        let backend = MemoryBackend::new(vec![fixture()]);
        let mut conn = backend.connect().expect("connect");
        let options =
            IntrospectOptions { max_rows_per_table: Some(10), ..IntrospectOptions::default() };
        let catalog = introspect(&mut conn, "shop", &options).expect("introspects");
        assert_eq!(catalog.database.table("items").expect("mirrored").rows.len(), 10);
    }

    #[test]
    fn unknown_database_keeps_its_kind() {
        let backend = MemoryBackend::new(vec![]);
        let mut conn = backend.connect().expect("connect");
        let err = introspect(&mut conn, "nowhere", &IntrospectOptions::default())
            .expect_err("no such db");
        assert_eq!(err.kind(), "unknown_database");
    }
}
