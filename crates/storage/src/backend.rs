//! The `Backend`/`Connection` trait split.
//!
//! A [`Backend`] is a factory for connections to a database server; a
//! [`Connection`] is one live session against it. The split mirrors real
//! database drivers: backends are cheap, shared, and `Sync`; connections
//! are stateful, owned by one caller at a time, and can *break* — which is
//! exactly what the pool's health-checked recycling exists to absorb.
//!
//! A connection exposes the three capabilities the CodeS stack needs:
//!
//! * **execute** — run SQL against one database and get rows back;
//! * **catalog introspection** — enumerate databases/tables and fetch each
//!   table's schema (types, PK/FK edges), the raw facts
//!   [`crate::introspect`] assembles into a full [`crate::Catalog`];
//! * **revision stamping** — a token that changes whenever the database's
//!   catalog state changes, the currency of the existing cache
//!   generation-invalidation.

use sqlengine::{QueryResult, TableSchema};

use crate::error::StorageError;

/// A storage backend: a shared, thread-safe factory for connections.
pub trait Backend: Send + Sync {
    /// Backend label, used in metrics and error messages.
    fn name(&self) -> &str;

    /// Open a new connection. Remote-ish backends may refuse
    /// ([`StorageError::Connect`]); the pool re-establishes with backoff.
    fn connect(&self) -> Result<Box<dyn Connection>, StorageError>;
}

/// One live session against a backend. `Send` but not `Sync`: a connection
/// belongs to exactly one caller at a time (the pool enforces this).
pub trait Connection: Send {
    /// Execute one SQL statement against `db_id`.
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError>;

    /// Liveness probe. A broken connection must fail here so the pool can
    /// discard it instead of recycling it.
    fn ping(&mut self) -> Result<(), StorageError>;

    /// The database ids visible over this connection.
    fn databases(&mut self) -> Result<Vec<String>, StorageError>;

    /// The table names of one database, in creation order.
    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError>;

    /// One table's full schema: columns with types/comments/PK flags and
    /// the outgoing foreign-key edges.
    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError>;

    /// The database's current catalog revision token. Two equal tokens
    /// mean identical catalog state; any mutation yields a fresh,
    /// never-reused token.
    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError>;
}

impl Connection for Box<dyn Connection> {
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError> {
        (**self).execute(db_id, sql)
    }

    fn ping(&mut self) -> Result<(), StorageError> {
        (**self).ping()
    }

    fn databases(&mut self) -> Result<Vec<String>, StorageError> {
        (**self).databases()
    }

    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError> {
        (**self).tables(db_id)
    }

    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError> {
        (**self).table_schema(db_id, table)
    }

    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError> {
        (**self).revision(db_id)
    }
}

/// Quote an identifier for embedding in generated SQL (introspection's
/// paged row harvest). Doubles embedded quotes, so arbitrary table names
/// round-trip through the engine's lexer.
pub(crate) fn quote_ident(name: &str) -> String {
    let mut quoted = String::with_capacity(name.len() + 2);
    quoted.push('"');
    for c in name.chars() {
        if c == '"' {
            quoted.push('"');
        }
        quoted.push(c);
    }
    quoted.push('"');
    quoted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_escapes_embedded_quotes() {
        assert_eq!(quote_ident("plain"), "\"plain\"");
        assert_eq!(quote_ident("we\"ird"), "\"we\"\"ird\"");
    }
}
