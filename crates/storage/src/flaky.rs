//! A deterministic "remote-ish" [`Backend`]: real data underneath,
//! injectable latency and connection faults on top.
//!
//! The trait split is only proven when a backend can actually *fail* the
//! way a network database does: refused connects, I/O errors that kill a
//! session mid-statement, and connections that die silently and are only
//! discovered by the next liveness probe. [`FlakyBackend`] wraps any inner
//! backend with exactly those failure modes, decided by a pure
//! SplitMix64 stream over `(seed, connection id, operation counter)` — the
//! same storm replays identically for a given seed, which is what makes
//! the chaos suite assertable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sqlengine::{QueryResult, TableSchema};

use crate::backend::{Backend, Connection};
use crate::error::StorageError;

/// Deterministic fault plan for a [`FlakyBackend`]. Probabilities are in
/// `[0, 1]`; the default injects nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultSpec {
    /// Seed of the fault stream; same seed, same faults.
    pub seed: u64,
    /// Probability that [`Backend::connect`] is refused outright.
    pub connect_fail: f64,
    /// Probability that an operation fails with an I/O error *and* breaks
    /// the connection (every later operation fails until discarded).
    pub io_fail: f64,
    /// Probability that an operation succeeds but silently breaks the
    /// connection afterwards — the failure mode only a liveness probe
    /// catches.
    pub silent_break: f64,
    /// Injected latency per operation (connect included), simulating a
    /// network round-trip.
    pub latency: Duration,
}

impl Default for FaultSpec {
    fn default() -> FaultSpec {
        FaultSpec {
            seed: 0,
            connect_fail: 0.0,
            io_fail: 0.0,
            silent_break: 0.0,
            latency: Duration::ZERO,
        }
    }
}

impl FaultSpec {
    /// A plan that injects nothing but a fixed per-operation latency —
    /// what the storage bench uses to make pooling visible.
    pub fn latency_only(latency: Duration) -> FaultSpec {
        FaultSpec { latency, ..FaultSpec::default() }
    }

    /// A stormy plan for chaos tests: some refused connects, I/O faults,
    /// and silent breaks.
    pub fn chaos(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            connect_fail: 0.10,
            io_fail: 0.05,
            silent_break: 0.05,
            latency: Duration::ZERO,
        }
    }
}

/// SplitMix64: cheap, stateless, deterministic.
fn mix(seed: u64, stream: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(counter.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Unit-interval sample from one mixed word.
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// [`Backend`] wrapper injecting the [`FaultSpec`] over any inner backend.
pub struct FlakyBackend<B: Backend> {
    inner: B,
    spec: FaultSpec,
    /// Connection ids double as fault-stream ids.
    conns: AtomicU64,
    /// Connect attempts get their own counter so refusals don't depend on
    /// how many connections were handed out before.
    attempts: AtomicU64,
}

impl<B: Backend> FlakyBackend<B> {
    /// Wrap `inner` with the given fault plan.
    pub fn new(inner: B, spec: FaultSpec) -> FlakyBackend<B> {
        FlakyBackend { inner, spec, conns: AtomicU64::new(0), attempts: AtomicU64::new(0) }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: Backend> Backend for FlakyBackend<B> {
    fn name(&self) -> &str {
        "flaky"
    }

    fn connect(&self) -> Result<Box<dyn Connection>, StorageError> {
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
        }
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        if unit(mix(self.spec.seed, u64::MAX, attempt)) < self.spec.connect_fail {
            return Err(StorageError::Connect("injected connect refusal".to_string()));
        }
        let id = self.conns.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.connect()?;
        Ok(Box::new(FlakyConnection { inner, spec: self.spec, id, ops: 0, broken: false }))
    }
}

struct FlakyConnection {
    inner: Box<dyn Connection>,
    spec: FaultSpec,
    id: u64,
    ops: u64,
    broken: bool,
}

impl FlakyConnection {
    /// Pre-flight for every operation: latency, broken-state check, and
    /// the two injected failure modes.
    fn gate(&mut self) -> Result<(), StorageError> {
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
        }
        if self.broken {
            return Err(StorageError::Connect("connection is broken".to_string()));
        }
        let word = mix(self.spec.seed, self.id, self.ops);
        self.ops += 1;
        if unit(word) < self.spec.io_fail {
            self.broken = true;
            return Err(StorageError::Connect("injected I/O fault".to_string()));
        }
        // A silent break is decided from an independent sub-stream so the
        // two fault kinds don't shadow each other.
        if unit(mix(word, 1, 1)) < self.spec.silent_break {
            // The current operation succeeds; the *next* one finds the
            // connection dead — gate() runs before the inner call, so
            // flagging now produces exactly that ordering.
            self.broken = true;
            return Ok(());
        }
        Ok(())
    }
}

impl Connection for FlakyConnection {
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError> {
        self.gate()?;
        self.inner.execute(db_id, sql)
    }

    fn ping(&mut self) -> Result<(), StorageError> {
        if !self.spec.latency.is_zero() {
            std::thread::sleep(self.spec.latency);
        }
        // Pings answer the broken-state question truthfully and never
        // inject new faults: the probe exists to *detect* breakage.
        if self.broken {
            return Err(StorageError::Connect("connection is broken".to_string()));
        }
        self.inner.ping()
    }

    fn databases(&mut self) -> Result<Vec<String>, StorageError> {
        self.gate()?;
        self.inner.databases()
    }

    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError> {
        self.gate()?;
        self.inner.tables(db_id)
    }

    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError> {
        self.gate()?;
        self.inner.table_schema(db_id, table)
    }

    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError> {
        self.gate()?;
        self.inner.revision(db_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use sqlengine::{Column, DataType, Database};

    fn store() -> MemoryBackend {
        let mut db = Database::new("d");
        db.create_table(sqlengine::TableSchema::new(
            "t",
            vec![Column::new("c", DataType::Integer)],
        ))
        .expect("fresh table");
        MemoryBackend::new(vec![db])
    }

    #[test]
    fn quiet_spec_is_transparent() {
        let backend = FlakyBackend::new(store(), FaultSpec::default());
        let mut conn = backend.connect().expect("no injected refusals");
        for _ in 0..50 {
            conn.execute("d", "SELECT c FROM t").expect("no injected faults");
            conn.ping().expect("never broken");
        }
    }

    #[test]
    fn faults_are_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let backend = FlakyBackend::new(store(), FaultSpec {
                seed,
                io_fail: 0.3,
                ..FaultSpec::default()
            });
            let mut conn = backend.connect().expect("connects are quiet in this spec");
            (0..20).map(|_| conn.execute("d", "SELECT c FROM t").is_ok()).collect()
        };
        assert_eq!(run(7), run(7), "same seed, same fault stream");
        let distinct: std::collections::HashSet<Vec<bool>> = (0..16).map(run).collect();
        assert!(distinct.len() > 1, "fault streams vary across seeds");
        let outcomes = run(7);
        let first_fail = outcomes.iter().position(|ok| !ok).expect("30% io_fail fires in 20 ops");
        assert!(
            outcomes[first_fail..].iter().all(|ok| !ok),
            "an I/O fault breaks the connection for good: {outcomes:?}"
        );
    }

    #[test]
    fn silent_breaks_are_caught_by_ping_not_by_the_breaking_op() {
        let backend = FlakyBackend::new(store(), FaultSpec {
            seed: 3,
            silent_break: 0.4,
            ..FaultSpec::default()
        });
        let mut conn = backend.connect().expect("quiet connects");
        let mut broke_after_success = false;
        for _ in 0..30 {
            if conn.execute("d", "SELECT c FROM t").is_ok() && conn.ping().is_err() {
                broke_after_success = true;
                break;
            }
        }
        assert!(broke_after_success, "a silent break follows a successful operation");
    }
}
