//! The in-memory sqlengine as one [`Backend`] implementation.
//!
//! What used to be "a `HashMap<String, Database>` handed directly to the
//! serving layer" is now a shared store behind the trait: connections
//! execute through [`sqlengine::execute_query_governed`], introspection
//! reads schemas out of the live catalog, and revision tokens are the
//! engine's own mutation stamps. The store stays mutable from outside
//! (tests, chaos suites, live administration) through
//! [`MemoryBackend::mutate`], which is exactly how a "schema change on the
//! live backend" is simulated.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sqlengine::{Database, ExecLimits, QueryResult, TableSchema};

use crate::backend::{Backend, Connection};
use crate::error::StorageError;

/// The shared database store a [`MemoryBackend`] serves. Cloning the
/// `Arc` shares the live state: mutations through one handle are visible
/// to every connection.
pub type SharedStore = Arc<RwLock<HashMap<String, Database>>>;

/// [`Backend`] over in-process [`sqlengine`] databases.
pub struct MemoryBackend {
    store: SharedStore,
    limits: ExecLimits,
}

impl MemoryBackend {
    /// A backend serving `dbs`, keyed by database name, with unlimited
    /// execution budgets (trusted in-process callers).
    pub fn new(dbs: Vec<Database>) -> MemoryBackend {
        let store = dbs.into_iter().map(|db| (db.name.clone(), db)).collect();
        MemoryBackend { store: Arc::new(RwLock::new(store)), limits: ExecLimits::unlimited() }
    }

    /// A backend over an existing shared store (e.g. one also wrapped by a
    /// fault-injecting backend).
    pub fn over(store: SharedStore) -> MemoryBackend {
        MemoryBackend { store, limits: ExecLimits::unlimited() }
    }

    /// This backend with every [`Connection::execute`] governed by
    /// `limits`.
    pub fn with_limits(mut self, limits: ExecLimits) -> MemoryBackend {
        self.limits = limits;
        self
    }

    /// A handle to the live store.
    pub fn store(&self) -> SharedStore {
        Arc::clone(&self.store)
    }

    /// Mutate one database in place (DDL, row changes). The engine stamps
    /// a fresh revision through `table_mut`/`create_table`, so the change
    /// is observable to re-introspection exactly like any local catalog
    /// mutation.
    pub fn mutate<R>(
        &self,
        db_id: &str,
        f: impl FnOnce(&mut Database) -> R,
    ) -> Result<R, StorageError> {
        let mut store = self.store.write();
        let db = store
            .get_mut(db_id)
            .ok_or_else(|| StorageError::UnknownDatabase(db_id.to_string()))?;
        Ok(f(db))
    }

    /// Add (or replace) a database in the live store.
    pub fn insert_database(&self, db: Database) {
        self.store.write().insert(db.name.clone(), db);
    }
}

impl Backend for MemoryBackend {
    fn name(&self) -> &str {
        "memory"
    }

    fn connect(&self) -> Result<Box<dyn Connection>, StorageError> {
        Ok(Box::new(MemoryConnection { store: Arc::clone(&self.store), limits: self.limits }))
    }
}

/// One session against the shared in-memory store.
struct MemoryConnection {
    store: SharedStore,
    limits: ExecLimits,
}

impl MemoryConnection {
    fn with_db<R>(
        &self,
        db_id: &str,
        f: impl FnOnce(&Database) -> Result<R, StorageError>,
    ) -> Result<R, StorageError> {
        let store = self.store.read();
        let db = store
            .get(db_id)
            .ok_or_else(|| StorageError::UnknownDatabase(db_id.to_string()))?;
        f(db)
    }
}

impl Connection for MemoryConnection {
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError> {
        self.with_db(db_id, |db| {
            sqlengine::execute_query_governed(db, sql, &self.limits)
                .map(|(result, _stats)| result)
                .map_err(StorageError::Engine)
        })
    }

    fn ping(&mut self) -> Result<(), StorageError> {
        // The process *is* the server: an in-memory connection cannot break.
        Ok(())
    }

    fn databases(&mut self) -> Result<Vec<String>, StorageError> {
        let mut names: Vec<String> = self.store.read().keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError> {
        self.with_db(db_id, |db| Ok(db.table_names().into_iter().map(String::from).collect()))
    }

    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError> {
        self.with_db(db_id, |db| {
            db.table(table)
                .map(|t| t.schema.clone())
                .ok_or_else(|| StorageError::Introspect(format!("{db_id}: no table '{table}'")))
        })
    }

    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError> {
        self.with_db(db_id, |db| Ok(db.revision()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::{Column, DataType};

    fn fixture() -> Database {
        let mut db = Database::new("shop");
        let table = db
            .create_table(TableSchema::new(
                "items",
                vec![
                    Column::new("id", DataType::Integer).primary_key(),
                    Column::new("label", DataType::Text),
                ],
            ))
            .expect("fresh table");
        table.insert(vec![1.into(), "anvil".into()]).expect("row fits");
        table.insert(vec![2.into(), "rope".into()]).expect("row fits");
        db
    }

    #[test]
    fn execute_and_introspect_against_live_store() {
        let backend = MemoryBackend::new(vec![fixture()]);
        let mut conn = backend.connect().expect("in-memory connect");
        assert_eq!(conn.databases().expect("list"), vec!["shop".to_string()]);
        assert_eq!(conn.tables("shop").expect("tables"), vec!["items".to_string()]);
        let schema = conn.table_schema("shop", "items").expect("schema");
        assert_eq!(schema.columns.len(), 2);
        assert!(schema.columns[0].primary_key);
        let result = conn.execute("shop", "SELECT label FROM items").expect("query runs");
        assert_eq!(result.row_count(), 2);
        assert!(conn.ping().is_ok());
    }

    #[test]
    fn mutation_changes_the_revision_seen_over_connections() {
        let backend = MemoryBackend::new(vec![fixture()]);
        let mut conn = backend.connect().expect("connect");
        let before = conn.revision("shop").expect("revision");
        backend
            .mutate("shop", |db| {
                db.table_mut("items")
                    .expect("items exists")
                    .insert(vec![3.into(), "tnt".into()])
                    .expect("row fits");
            })
            .expect("shop exists");
        let after = conn.revision("shop").expect("revision");
        assert_ne!(before, after, "mutation must stamp a fresh token");
    }

    #[test]
    fn unknown_database_is_typed() {
        let backend = MemoryBackend::new(vec![]);
        let mut conn = backend.connect().expect("connect");
        let err = conn.execute("nowhere", "SELECT 1").expect_err("no such db");
        assert_eq!(err.kind(), "unknown_database");
    }
}
