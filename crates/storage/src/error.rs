//! The storage layer's failure taxonomy.
//!
//! Three kinds are genuinely new to the stack — connection failure,
//! introspection failure, pool exhaustion — and travel to the gateway as
//! typed JSON errors (`storage_connect`, `storage_introspect`,
//! `storage_exhausted`; see the exhaustive mapping test in
//! `crates/gateway/tests/error_mapping.rs`). Everything else bridges into
//! taxonomies that already exist: statement failures surface as
//! [`sqlengine::Error`], a missing database as the serving layer's
//! `unknown_database`, and a closed pool as `shutting_down`.

use std::fmt;

/// Why a storage operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// Establishing or using a connection failed: the backend refused the
    /// connect, or an I/O fault broke the connection mid-operation.
    Connect(String),
    /// Introspection could not produce a consistent catalog (e.g. the
    /// schema kept changing under the reader, or the backend returned
    /// contradictory facts).
    Introspect(String),
    /// The pool is at capacity and no connection freed up within the
    /// checkout timeout.
    Exhausted {
        /// Configured pool capacity.
        capacity: usize,
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// The backend does not serve this database.
    UnknownDatabase(String),
    /// The pool has been closed; no further checkouts are possible.
    Closed,
    /// The statement itself failed inside the engine — the connection is
    /// fine, the SQL is not.
    Engine(sqlengine::Error),
}

impl StorageError {
    /// Short machine-readable category, stable across layers. The three
    /// storage-specific kinds are prefixed `storage_`; bridged kinds reuse
    /// the category of the taxonomy they bridge into.
    pub fn kind(&self) -> &'static str {
        match self {
            StorageError::Connect(_) => "storage_connect",
            StorageError::Introspect(_) => "storage_introspect",
            StorageError::Exhausted { .. } => "storage_exhausted",
            StorageError::UnknownDatabase(_) => "unknown_database",
            StorageError::Closed => "shutting_down",
            StorageError::Engine(e) => e.kind(),
        }
    }

    /// True when retrying the same operation later may succeed: connection
    /// faults pass, introspection races settle, and pool pressure drains.
    /// A misaddressed database or a closed pool will not get better.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Connect(_)
            | StorageError::Introspect(_)
            | StorageError::Exhausted { .. } => true,
            StorageError::UnknownDatabase(_) | StorageError::Closed => false,
            StorageError::Engine(e) => e.is_transient(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Connect(what) => write!(f, "storage connection failed: {what}"),
            StorageError::Introspect(what) => write!(f, "introspection failed: {what}"),
            StorageError::Exhausted { capacity, waited_ms } => write!(
                f,
                "connection pool exhausted: all {capacity} connections busy for {waited_ms}ms"
            ),
            StorageError::UnknownDatabase(db_id) => {
                write!(f, "unknown database '{db_id}': not served by this backend")
            }
            StorageError::Closed => write!(f, "connection pool is closed"),
            StorageError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<sqlengine::Error> for StorageError {
    fn from(e: sqlengine::Error) -> StorageError {
        StorageError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_transience() {
        assert_eq!(StorageError::Connect("x".into()).kind(), "storage_connect");
        assert_eq!(StorageError::Introspect("x".into()).kind(), "storage_introspect");
        assert_eq!(
            StorageError::Exhausted { capacity: 4, waited_ms: 100 }.kind(),
            "storage_exhausted"
        );
        assert!(StorageError::Connect("x".into()).is_transient());
        assert!(StorageError::Exhausted { capacity: 4, waited_ms: 100 }.is_transient());
        assert!(!StorageError::UnknownDatabase("x".into()).is_transient());
        assert!(!StorageError::Closed.is_transient());
        // Engine kinds flow through unchanged.
        let parse = StorageError::Engine(sqlengine::Error::Parse("bad".into()));
        assert_eq!(parse.kind(), "parse");
        assert!(!parse.is_transient());
    }

    #[test]
    fn display_is_informative() {
        let e = StorageError::Exhausted { capacity: 2, waited_ms: 50 };
        assert!(e.to_string().contains("2 connections"));
        assert!(StorageError::Connect("refused".into()).to_string().contains("refused"));
    }
}
