//! Checkout/checkin connection pool with health-checked recycling.
//!
//! The free list is a bounded channel of *slots*, one per unit of
//! capacity. A slot is either empty (capacity with no live connection) or
//! holds an idle connection with its last-used timestamp. Checkout =
//! receive a slot (blocking up to the checkout timeout — a structural
//! occupancy bound: a connection can only exist while its slot is held);
//! checkin = send the slot back. Because establishment happens only while
//! holding a slot, live connections can never exceed capacity, no matter
//! how many threads race.
//!
//! Recycling is health-checked: a connection that errored during use is
//! probed before reuse, every checkin optionally probes
//! ([`PoolConfig::ping_on_checkin`]), and a probe failure discards the
//! connection — its slot returns empty, and the next checkout
//! re-establishes against the backend with jittered exponential backoff.
//! Idle connections past [`PoolConfig::idle_timeout`] are reaped at
//! checkout instead of being handed out stale.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use sqlengine::{Backoff, QueryResult, TableSchema};

use crate::backend::{Backend, Connection};
use crate::error::StorageError;
use crate::metrics::{PoolMetrics, PoolStats};

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum live connections (and the size of the slot channel).
    pub capacity: usize,
    /// How long a checkout waits for a slot before
    /// [`StorageError::Exhausted`].
    pub checkout_timeout: Duration,
    /// Idle connections older than this are discarded at checkout and
    /// replaced with a fresh establishment. `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Probe liveness on every checkin (not just after an error). Costs
    /// one `ping` per recycle; guarantees the free list only ever holds
    /// connections that were healthy when parked.
    pub ping_on_checkin: bool,
    /// Connect attempts per establishment before giving up.
    pub connect_attempts: u32,
    /// Backoff schedule between connect attempts.
    pub backoff: Backoff,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            capacity: 8,
            checkout_timeout: Duration::from_secs(2),
            idle_timeout: Some(Duration::from_secs(300)),
            ping_on_checkin: true,
            connect_attempts: 3,
            backoff: Backoff::new(Duration::from_millis(1), Duration::from_millis(50), 0),
        }
    }
}

/// One unit of pool capacity: empty, or holding an idle connection.
struct Slot {
    conn: Option<(Box<dyn Connection>, Instant)>,
}

struct PoolInner {
    backend: Arc<dyn Backend>,
    config: PoolConfig,
    slots_tx: Sender<Slot>,
    slots_rx: Receiver<Slot>,
    metrics: PoolMetrics,
    closed: parking_lot::RwLock<bool>,
}

/// The connection pool. Cheap to clone; all clones share the same slots.
#[derive(Clone)]
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
}

impl ConnectionPool {
    /// A pool over `backend`, registering its metrics in the global
    /// registry.
    pub fn new(backend: Arc<dyn Backend>, config: PoolConfig) -> ConnectionPool {
        ConnectionPool::with_registry(backend, config, &codes_obs::global())
    }

    /// A pool registering metrics in `registry` — tests use a private
    /// registry for isolation.
    pub fn with_registry(
        backend: Arc<dyn Backend>,
        config: PoolConfig,
        registry: &codes_obs::Registry,
    ) -> ConnectionPool {
        let capacity = config.capacity.max(1);
        let (slots_tx, slots_rx) = bounded(capacity);
        for _ in 0..capacity {
            // A freshly built channel has room for every slot.
            let _ = slots_tx.try_send(Slot { conn: None });
        }
        ConnectionPool {
            inner: Arc::new(PoolInner {
                backend,
                config: PoolConfig { capacity, ..config },
                slots_tx,
                slots_rx,
                metrics: PoolMetrics::new(registry),
                closed: parking_lot::RwLock::new(false),
            }),
        }
    }

    /// The backend this pool connects to.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.inner.backend
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.config.capacity
    }

    /// Check out a connection, establishing one (with backoff) if the
    /// received slot is empty or its connection is stale/dead.
    pub fn checkout(&self) -> Result<PooledConn, StorageError> {
        if *self.inner.closed.read() {
            return Err(StorageError::Closed);
        }
        let started = Instant::now();
        let slot = match self.inner.slots_rx.recv_timeout(self.inner.config.checkout_timeout) {
            Ok(slot) => slot,
            Err(RecvTimeoutError::Timeout) => {
                self.inner.metrics.exhausted.inc();
                return Err(StorageError::Exhausted {
                    capacity: self.inner.config.capacity,
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
            Err(RecvTimeoutError::Disconnected) => return Err(StorageError::Closed),
        };
        self.inner.metrics.checkout_wait.record_seconds(started.elapsed().as_secs_f64());

        // Prefer recycling an idle connection over establishing a new one:
        // the slot channel is FIFO, so an empty slot can sit ahead of a
        // perfectly good idle connection. Scan the remaining slots for one
        // (holding the empties briefly), and give every surplus slot back.
        let mut slot = slot;
        if slot.conn.is_none() {
            let mut empties_held = 1usize;
            for _ in 1..self.inner.config.capacity {
                match self.inner.slots_rx.try_recv() {
                    Ok(found) if found.conn.is_some() => {
                        slot = found;
                        break;
                    }
                    Ok(_) => empties_held += 1,
                    Err(_) => break,
                }
            }
            let surplus =
                if slot.conn.is_some() { empties_held } else { empties_held - 1 };
            for _ in 0..surplus {
                self.return_empty();
            }
        }

        let conn = match slot.conn {
            Some((conn, parked)) => {
                let stale = self
                    .inner
                    .config
                    .idle_timeout
                    .is_some_and(|limit| parked.elapsed() > limit);
                if stale {
                    self.inner.metrics.discarded_idle.inc();
                    self.inner.metrics.idle.add(-1);
                    drop(conn);
                    match self.establish() {
                        Ok(conn) => conn,
                        Err(e) => {
                            self.return_empty();
                            return Err(e);
                        }
                    }
                } else {
                    self.inner.metrics.idle.add(-1);
                    conn
                }
            }
            None => match self.establish() {
                Ok(conn) => conn,
                Err(e) => {
                    self.return_empty();
                    return Err(e);
                }
            },
        };

        self.inner.metrics.checkouts.inc();
        self.inner.metrics.in_use.add(1);
        Ok(PooledConn { pool: Arc::clone(&self.inner), conn: Some(conn), tainted: false })
    }

    /// Establish a fresh connection, retrying with backoff. The caller
    /// must hold a slot.
    fn establish(&self) -> Result<Box<dyn Connection>, StorageError> {
        let mut last = StorageError::Connect("no connect attempts configured".to_string());
        for attempt in 0..self.inner.config.connect_attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(self.inner.config.backoff.delay(attempt - 1));
            }
            match self.inner.backend.connect() {
                Ok(conn) => {
                    self.inner.metrics.established.inc();
                    return Ok(conn);
                }
                Err(e) => {
                    self.inner.metrics.connect_failures.inc();
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Return an empty slot to the free list (capacity conservation: every
    /// slot taken out must go back, with or without a connection).
    fn return_empty(&self) {
        let _ = self.inner.slots_tx.try_send(Slot { conn: None });
    }

    /// Close the pool: in-flight connections finish and are discarded on
    /// checkin; new checkouts fail with [`StorageError::Closed`]. Idle
    /// connections are dropped immediately.
    pub fn close(&self) {
        *self.inner.closed.write() = true;
        // Drain whatever is idle right now; checked-out connections are
        // handled by their guards' drop. Bounded by capacity so the slots
        // pushed back empty are not re-drained forever.
        for _ in 0..self.inner.config.capacity {
            let Ok(slot) = self.inner.slots_rx.try_recv() else {
                break;
            };
            if slot.conn.is_some() {
                self.inner.metrics.discarded_closed.inc();
                self.inner.metrics.idle.add(-1);
            }
            let _ = self.inner.slots_tx.try_send(Slot { conn: None });
        }
    }

    /// Point-in-time counters (reads the registry handles).
    pub fn stats(&self) -> PoolStats {
        let m = &self.inner.metrics;
        PoolStats {
            checkouts: m.checkouts.get(),
            checkins: m.checkins.get(),
            established: m.established.get(),
            discarded_broken: m.discarded_broken.get(),
            discarded_ping: m.discarded_ping.get(),
            discarded_idle: m.discarded_idle.get(),
            discarded_closed: m.discarded_closed.get(),
            connect_failures: m.connect_failures.get(),
            exhausted: m.exhausted.get(),
            in_use: m.in_use.get(),
            idle: m.idle.get(),
        }
    }
}

/// RAII checkout guard. Implements [`Connection`] by delegation, tracking
/// connection-level failures so drop can decide between recycling and
/// discarding. Dropping the guard checks the connection in; a connection
/// that errored (or, with [`PoolConfig::ping_on_checkin`], any connection)
/// is probed first and discarded on failure.
pub struct PooledConn {
    pool: Arc<PoolInner>,
    conn: Option<Box<dyn Connection>>,
    tainted: bool,
}

impl std::fmt::Debug for PooledConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConn")
            .field("live", &self.conn.is_some())
            .field("tainted", &self.tainted)
            .finish()
    }
}

impl PooledConn {
    /// Run one delegated operation, recording connection-level failures.
    /// Engine/catalog errors don't taint: the connection is fine, the
    /// request was not.
    fn run<R>(
        &mut self,
        f: impl FnOnce(&mut dyn Connection) -> Result<R, StorageError>,
    ) -> Result<R, StorageError> {
        let conn = match self.conn.as_mut() {
            Some(conn) => conn,
            // Unreachable outside `drop`; typed rather than panicking to
            // honor the crate's no-unwrap policy.
            None => return Err(StorageError::Closed),
        };
        let result = f(conn.as_mut());
        if matches!(result, Err(StorageError::Connect(_))) {
            self.tainted = true;
        }
        result
    }

    /// Explicitly discard this connection instead of recycling it.
    pub fn discard(mut self) {
        if self.conn.take().is_some() {
            self.pool.metrics.discarded_broken.inc();
            self.pool.metrics.in_use.add(-1);
            let _ = self.pool.slots_tx.try_send(Slot { conn: None });
        }
    }

    /// Whether a connection-level failure was observed on this checkout.
    pub fn is_tainted(&self) -> bool {
        self.tainted
    }
}

impl Connection for PooledConn {
    fn execute(&mut self, db_id: &str, sql: &str) -> Result<QueryResult, StorageError> {
        self.run(|c| c.execute(db_id, sql))
    }

    fn ping(&mut self) -> Result<(), StorageError> {
        self.run(|c| c.ping())
    }

    fn databases(&mut self) -> Result<Vec<String>, StorageError> {
        self.run(|c| c.databases())
    }

    fn tables(&mut self, db_id: &str) -> Result<Vec<String>, StorageError> {
        self.run(|c| c.tables(db_id))
    }

    fn table_schema(&mut self, db_id: &str, table: &str) -> Result<TableSchema, StorageError> {
        self.run(|c| c.table_schema(db_id, table))
    }

    fn revision(&mut self, db_id: &str) -> Result<u64, StorageError> {
        self.run(|c| c.revision(db_id))
    }
}

impl Drop for PooledConn {
    fn drop(&mut self) {
        let Some(mut conn) = self.conn.take() else {
            return; // already discarded explicitly
        };
        self.pool.metrics.in_use.add(-1);
        if *self.pool.closed.read() {
            self.pool.metrics.discarded_closed.inc();
            let _ = self.pool.slots_tx.try_send(Slot { conn: None });
            return;
        }
        if self.tainted {
            // The connection already reported a transport-level failure;
            // probe it once — a transient blip may have healed, a broken
            // connection must go.
            if conn.ping().is_err() {
                self.pool.metrics.discarded_broken.inc();
                let _ = self.pool.slots_tx.try_send(Slot { conn: None });
                return;
            }
        } else if self.pool.config.ping_on_checkin && conn.ping().is_err() {
            self.pool.metrics.discarded_ping.inc();
            let _ = self.pool.slots_tx.try_send(Slot { conn: None });
            return;
        }
        self.pool.metrics.checkins.inc();
        self.pool.metrics.idle.add(1);
        let _ = self.pool.slots_tx.try_send(Slot { conn: Some((conn, Instant::now())) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flaky::{FaultSpec, FlakyBackend};
    use crate::memory::MemoryBackend;
    use sqlengine::{Column, DataType, Database, TableSchema};

    fn backend() -> MemoryBackend {
        let mut db = Database::new("d");
        let t = db
            .create_table(TableSchema::new("t", vec![Column::new("c", DataType::Integer)]))
            .expect("fresh table");
        t.insert(vec![1.into()]).expect("row fits");
        MemoryBackend::new(vec![db])
    }

    fn quiet_pool(capacity: usize) -> ConnectionPool {
        let registry = codes_obs::Registry::new();
        ConnectionPool::with_registry(
            Arc::new(backend()),
            PoolConfig { capacity, checkout_timeout: Duration::from_millis(50), ..PoolConfig::default() },
            &registry,
        )
    }

    #[test]
    fn checkout_reuses_the_recycled_connection() {
        let pool = quiet_pool(2);
        {
            let mut conn = pool.checkout().expect("capacity free");
            conn.execute("d", "SELECT c FROM t").expect("query runs");
        }
        let _conn = pool.checkout().expect("recycled");
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.checkins, 1);
        assert_eq!(stats.established, 1, "the second checkout reuses, not re-establishes");
        assert_eq!(stats.in_use, 1);
    }

    #[test]
    fn exhaustion_is_typed_and_bounded() {
        let pool = quiet_pool(1);
        let _held = pool.checkout().expect("first checkout");
        let err = pool.checkout().expect_err("capacity 1 is taken");
        assert_eq!(err.kind(), "storage_exhausted");
        let stats = pool.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.in_use, 1);
    }

    #[test]
    fn broken_connections_are_discarded_and_replaced() {
        let registry = codes_obs::Registry::new();
        // io_fail high enough that breaks happen quickly; connects quiet.
        let flaky = FlakyBackend::new(backend(), FaultSpec { seed: 5, io_fail: 0.5, ..FaultSpec::default() });
        let pool = ConnectionPool::with_registry(
            Arc::new(flaky),
            PoolConfig { capacity: 1, ..PoolConfig::default() },
            &registry,
        );
        let mut saw_fault = false;
        for _ in 0..30 {
            let mut conn = pool.checkout().expect("quiet connects");
            if conn.execute("d", "SELECT c FROM t").is_err() {
                saw_fault = true;
            }
        }
        assert!(saw_fault, "50% io_fail fires within 30 checkouts");
        let stats = pool.stats();
        assert!(stats.discarded_broken > 0, "faulted connections are discarded: {stats:?}");
        assert_eq!(
            stats.checkouts,
            stats.checkins + stats.discarded(),
            "every checkout is checked in or discarded exactly once: {stats:?}"
        );
        assert_eq!(stats.in_use, 0);
        assert!(stats.established > stats.discarded(), "discards are re-established");
    }

    #[test]
    fn idle_reaping_discards_stale_connections() {
        let registry = codes_obs::Registry::new();
        let pool = ConnectionPool::with_registry(
            Arc::new(backend()),
            PoolConfig {
                capacity: 1,
                idle_timeout: Some(Duration::ZERO),
                ..PoolConfig::default()
            },
            &registry,
        );
        drop(pool.checkout().expect("establishes"));
        std::thread::sleep(Duration::from_millis(2));
        drop(pool.checkout().expect("reaps and re-establishes"));
        let stats = pool.stats();
        assert_eq!(stats.discarded_idle, 1);
        assert_eq!(stats.established, 2);
    }

    #[test]
    fn close_rejects_new_checkouts_and_drains_idle() {
        let pool = quiet_pool(2);
        drop(pool.checkout().expect("establishes"));
        pool.close();
        assert_eq!(pool.checkout().expect_err("closed").kind(), "shutting_down");
        let stats = pool.stats();
        assert_eq!(stats.idle, 0, "idle connections drained on close");
        assert_eq!(stats.discarded_closed, 1);
    }

    #[test]
    fn connect_refusals_retry_with_backoff_then_surface() {
        let registry = codes_obs::Registry::new();
        let flaky =
            FlakyBackend::new(backend(), FaultSpec { seed: 1, connect_fail: 1.0, ..FaultSpec::default() });
        let pool = ConnectionPool::with_registry(
            Arc::new(flaky),
            PoolConfig { capacity: 1, connect_attempts: 3, ..PoolConfig::default() },
            &registry,
        );
        let err = pool.checkout().expect_err("every connect refused");
        assert_eq!(err.kind(), "storage_connect");
        let stats = pool.stats();
        assert_eq!(stats.connect_failures, 3, "each attempt counted");
        // The slot went back: a later checkout can still try (and fail).
        assert_eq!(pool.checkout().expect_err("still refused").kind(), "storage_connect");
    }
}
