//! Pool observability: the `codes_storage_pool_*` metric family.

use std::sync::Arc;

use codes_obs::{Counter, Gauge, Histogram, Registry};

/// Checkout counter name.
pub const CHECKOUTS: &str = "codes_storage_pool_checkouts_total";
/// Checkin counter name (recycled connections returned to the free list).
pub const CHECKINS: &str = "codes_storage_pool_checkins_total";
/// Established-connection counter name.
pub const ESTABLISHED: &str = "codes_storage_pool_established_total";
/// Discarded-connection counter name (`reason` label: broken / ping_failed
/// / idle / closed).
pub const DISCARDED: &str = "codes_storage_pool_discarded_total";
/// Failed connect-attempt counter name (each backoff retry counts once).
pub const CONNECT_FAILURES: &str = "codes_storage_pool_connect_failures_total";
/// Exhausted-checkout counter name (waited the full timeout, got nothing).
pub const EXHAUSTED: &str = "codes_storage_pool_exhausted_total";
/// In-use gauge name (connections currently checked out).
pub const IN_USE: &str = "codes_storage_pool_in_use";
/// Idle gauge name (live connections waiting on the free list).
pub const IDLE: &str = "codes_storage_pool_idle";
/// Checkout-wait histogram name, in seconds.
pub const CHECKOUT_WAIT: &str = "codes_storage_pool_checkout_wait_seconds";

/// Registered handles; hot paths only touch atomics.
pub(crate) struct PoolMetrics {
    pub(crate) checkouts: Arc<Counter>,
    pub(crate) checkins: Arc<Counter>,
    pub(crate) established: Arc<Counter>,
    pub(crate) discarded_broken: Arc<Counter>,
    pub(crate) discarded_ping: Arc<Counter>,
    pub(crate) discarded_idle: Arc<Counter>,
    pub(crate) discarded_closed: Arc<Counter>,
    pub(crate) connect_failures: Arc<Counter>,
    pub(crate) exhausted: Arc<Counter>,
    pub(crate) in_use: Arc<Gauge>,
    pub(crate) idle: Arc<Gauge>,
    pub(crate) checkout_wait: Arc<Histogram>,
}

impl PoolMetrics {
    pub(crate) fn new(registry: &Registry) -> PoolMetrics {
        PoolMetrics {
            checkouts: registry.counter(CHECKOUTS, &[]),
            checkins: registry.counter(CHECKINS, &[]),
            established: registry.counter(ESTABLISHED, &[]),
            discarded_broken: registry.counter(DISCARDED, &[("reason", "broken")]),
            discarded_ping: registry.counter(DISCARDED, &[("reason", "ping_failed")]),
            discarded_idle: registry.counter(DISCARDED, &[("reason", "idle")]),
            discarded_closed: registry.counter(DISCARDED, &[("reason", "closed")]),
            connect_failures: registry.counter(CONNECT_FAILURES, &[]),
            exhausted: registry.counter(EXHAUSTED, &[]),
            in_use: registry.gauge(IN_USE, &[]),
            idle: registry.gauge(IDLE, &[]),
            checkout_wait: registry.histogram(CHECKOUT_WAIT, &[]),
        }
    }
}

/// Point-in-time pool counters, read back from the registry handles. The
/// accounting identity `checkouts == checkins + discards_of_checked_out`
/// plus `in_use + idle <= capacity` is what the property tests assert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful checkouts handed to callers.
    pub checkouts: u64,
    /// Connections returned healthy to the free list.
    pub checkins: u64,
    /// Connections established against the backend.
    pub established: u64,
    /// Discards of connections that reported broken during use.
    pub discarded_broken: u64,
    /// Discards of connections that failed the checkin liveness probe.
    pub discarded_ping: u64,
    /// Discards of idle connections past the idle timeout.
    pub discarded_idle: u64,
    /// Live connections dropped because the pool closed.
    pub discarded_closed: u64,
    /// Individual failed connect attempts (before backoff retries).
    pub connect_failures: u64,
    /// Checkouts that timed out waiting for a free connection.
    pub exhausted: u64,
    /// Connections checked out right now.
    pub in_use: i64,
    /// Live connections idle on the free list right now.
    pub idle: i64,
}

impl PoolStats {
    /// Total discarded connections, across every reason.
    pub fn discarded(&self) -> u64 {
        self.discarded_broken + self.discarded_ping + self.discarded_idle + self.discarded_closed
    }
}
