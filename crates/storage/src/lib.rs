//! Pluggable storage backends for the CodeS text-to-SQL stack.
//!
//! Everything upstream of this crate used to run against one in-memory
//! [`sqlengine`] handed around by value. This crate turns storage into a
//! subsystem with three layers:
//!
//! 1. **Trait split** ([`Backend`] / [`Connection`]) — execute, catalog
//!    introspection, and revision stamping behind object-safe traits. The
//!    in-memory engine is one implementation ([`MemoryBackend`]); a
//!    deterministic remote-ish one with injectable latency and faults
//!    ([`FlakyBackend`]) proves the contract against a backend that can
//!    actually fail.
//! 2. **Connection pool** ([`ConnectionPool`]) — bounded checkout/checkin
//!    with idle reaping and health-checked recycling: liveness probes on
//!    checkin and after errors, broken connections discarded and
//!    re-established with jittered backoff, `codes_storage_pool_*`
//!    metrics through [`codes_obs`].
//! 3. **Introspection** ([`introspect`], [`Catalog`],
//!    [`CatalogService`]) — the paper's Algorithm-1 schema metadata
//!    (types, PK/FK edges, representative cell values) discovered from a
//!    live connection at runtime and stamped with the backend's revision
//!    token, so the existing cache generation-invalidation keeps working
//!    unchanged across backends.
//!
//! See DESIGN.md §4k for the full design discussion.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod backend;
mod error;
mod flaky;
mod introspect;
mod memory;
pub mod metrics;
mod pool;
mod service;

pub use backend::{Backend, Connection};
pub use error::StorageError;
pub use flaky::{FaultSpec, FlakyBackend};
pub use introspect::{introspect, Catalog, IntrospectOptions};
pub use memory::{MemoryBackend, SharedStore};
pub use metrics::PoolStats;
pub use pool::{ConnectionPool, PoolConfig, PooledConn};
pub use service::{CatalogService, RevisionObserver, SyncOutcome};
