//! Domain-schema specifications and seeded database generation.
//!
//! The Spider benchmark spans 138 domains with small clean databases; BIRD
//! has fewer but wider, dirtier databases with ambiguous column names and
//! comments. This module provides the shared machinery: a library of
//! hand-written domain schemas plus a configurable generator that
//! instantiates them as populated [`Database`]s.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sqlengine::{Column, Database, DataType, TableSchema, Value};

use crate::lexicon;

/// How values of a column are synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // role names describe the generated value kind
pub enum ValueRole {
    /// Sequential primary key.
    Pk,
    /// Foreign key into the table at the given index of the domain spec.
    Fk(usize),
    PersonName,
    City,
    Country,
    OrgName,
    /// "Golden Lion"-style made-up proper names.
    ThingName,
    Genre,
    AcademicField,
    /// Calendar year.
    Year,
    /// Uniform integer in [lo, hi].
    IntRange(i64, i64),
    /// Uniform real in [lo, hi] with 2 decimals.
    RealRange(f64, f64),
    /// Categorical flag drawn from the listed values.
    Flag(&'static [&'static str]),
    /// ISO-ish date string "YYYY-MM-DD".
    DateText,
    /// Short free text built from lexicon words.
    FreeText,
}

/// One column of a domain spec.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSpec {
    /// Clean column name.
    pub name: &'static str,
    /// Storage class.
    pub data_type: DataType,
    /// How values are generated.
    pub role: ValueRole,
    /// Comment attached in BIRD mode (where the column name is replaced by
    /// an ambiguous abbreviation) — mirrors Table 2 of the paper.
    pub ambiguous: Option<AmbiguousName>,
}

/// A cryptic column name plus the explanatory comment.
#[derive(Debug, Clone, Copy)]
pub struct AmbiguousName {
    /// The cryptic short name used in BIRD mode.
    pub short: &'static str,
    /// The explanatory comment attached to it.
    pub comment: &'static str,
}

/// One table of a domain spec.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: &'static str,
    /// Column specs (parents listed before FK users).
    pub columns: Vec<ColumnSpec>,
}

/// A full domain schema.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Domain / database name.
    pub name: &'static str,
    /// Tables, parents before children.
    pub tables: Vec<TableSpec>,
}

fn col(name: &'static str, data_type: DataType, role: ValueRole) -> ColumnSpec {
    ColumnSpec { name, data_type, role, ambiguous: None }
}

fn acol(
    name: &'static str,
    data_type: DataType,
    role: ValueRole,
    short: &'static str,
    comment: &'static str,
) -> ColumnSpec {
    ColumnSpec { name, data_type, role, ambiguous: Some(AmbiguousName { short, comment }) }
}

use DataType::{Integer as I, Real as R, Text as T};
use ValueRole::*;

/// The library of hand-written domain schemas. Each appears in Spider-like
/// benchmarks with clean names and in BIRD-like benchmarks with ambiguous
/// names + comments.
pub fn domains() -> Vec<DomainSpec> {
    vec![
        DomainSpec {
            name: "concert_singer",
            tables: vec![
                TableSpec {
                    name: "stadium",
                    columns: vec![
                        col("stadium_id", I, Pk),
                        col("name", T, ThingName),
                        col("location", T, City),
                        col("capacity", I, IntRange(1_000, 90_000)),
                        acol("average_attendance", I, IntRange(200, 60_000), "avg_att", "average attendance per event"),
                    ],
                },
                TableSpec {
                    name: "singer",
                    columns: vec![
                        col("singer_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                        col("age", I, IntRange(18, 75)),
                        acol("is_male", T, Flag(&["T", "F"]), "im", "whether the singer is male, T or F"),
                    ],
                },
                TableSpec {
                    name: "concert",
                    columns: vec![
                        col("concert_id", I, Pk),
                        col("concert_name", T, ThingName),
                        col("theme", T, FreeText),
                        col("stadium_id", I, Fk(0)),
                        col("year", I, Year),
                    ],
                },
                TableSpec {
                    name: "singer_in_concert",
                    columns: vec![
                        col("record_id", I, Pk),
                        col("concert_id", I, Fk(2)),
                        col("singer_id", I, Fk(1)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "employee_hire",
            tables: vec![
                TableSpec {
                    name: "department",
                    columns: vec![
                        col("department_id", I, Pk),
                        col("name", T, OrgName),
                        col("budget", R, RealRange(50_000.0, 5_000_000.0)),
                        col("city", T, City),
                    ],
                },
                TableSpec {
                    name: "employee",
                    columns: vec![
                        col("employee_id", I, Pk),
                        col("name", T, PersonName),
                        col("department_id", I, Fk(0)),
                        col("salary", R, RealRange(25_000.0, 180_000.0)),
                        acol("hire_date", T, DateText, "hd", "hire date in YYYY-MM-DD format"),
                        col("age", I, IntRange(20, 66)),
                    ],
                },
                TableSpec {
                    name: "evaluation",
                    columns: vec![
                        col("evaluation_id", I, Pk),
                        col("employee_id", I, Fk(1)),
                        col("year", I, Year),
                        acol("bonus_percent", R, RealRange(0.0, 30.0), "bp", "bonus as percent of salary"),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "school_enrollment",
            tables: vec![
                TableSpec {
                    name: "school",
                    columns: vec![
                        col("school_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        acol("enrollment", I, IntRange(100, 8_000), "enr", "number of enrolled students"),
                    ],
                },
                TableSpec {
                    name: "student",
                    columns: vec![
                        col("student_id", I, Pk),
                        col("name", T, PersonName),
                        col("school_id", I, Fk(0)),
                        col("age", I, IntRange(10, 19)),
                        col("gpa", R, RealRange(1.0, 4.0)),
                        col("gender", T, Flag(&["F", "M"])),
                    ],
                },
                TableSpec {
                    name: "course",
                    columns: vec![
                        col("course_id", I, Pk),
                        col("title", T, FreeText),
                        col("credits", I, IntRange(1, 6)),
                        col("school_id", I, Fk(0)),
                    ],
                },
                TableSpec {
                    name: "enrollment",
                    columns: vec![
                        col("enrollment_id", I, Pk),
                        col("student_id", I, Fk(1)),
                        col("course_id", I, Fk(2)),
                        col("grade", R, RealRange(0.0, 100.0)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "pet_owners",
            tables: vec![
                TableSpec {
                    name: "owner",
                    columns: vec![
                        col("owner_id", I, Pk),
                        col("name", T, PersonName),
                        col("city", T, City),
                    ],
                },
                TableSpec {
                    name: "pet",
                    columns: vec![
                        col("pet_id", I, Pk),
                        col("owner_id", I, Fk(0)),
                        col("pet_type", T, Flag(&["dog", "cat", "bird", "fish", "rabbit"])),
                        col("weight", R, RealRange(0.2, 80.0)),
                        col("age", I, IntRange(0, 20)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "flight_company",
            tables: vec![
                TableSpec {
                    name: "airport",
                    columns: vec![
                        col("airport_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        col("country", T, Country),
                    ],
                },
                TableSpec {
                    name: "airline",
                    columns: vec![
                        col("airline_id", I, Pk),
                        col("name", T, OrgName),
                        col("country", T, Country),
                        acol("fleet_size", I, IntRange(3, 900), "fs", "number of aircraft operated"),
                    ],
                },
                TableSpec {
                    name: "flight",
                    columns: vec![
                        col("flight_id", I, Pk),
                        col("airline_id", I, Fk(1)),
                        col("source_airport_id", I, Fk(0)),
                        col("destination_airport_id", I, Fk(0)),
                        col("distance", I, IntRange(80, 12_000)),
                        col("price", R, RealRange(40.0, 3_000.0)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "orders_retail",
            tables: vec![
                TableSpec {
                    name: "customer",
                    columns: vec![
                        col("customer_id", I, Pk),
                        col("name", T, PersonName),
                        col("city", T, City),
                        acol("loyalty_points", I, IntRange(0, 20_000), "lp", "accumulated loyalty points"),
                    ],
                },
                TableSpec {
                    name: "product",
                    columns: vec![
                        col("product_id", I, Pk),
                        col("name", T, ThingName),
                        col("category", T, Flag(&["electronics", "grocery", "clothing", "toys", "garden"])),
                        col("price", R, RealRange(1.0, 2_500.0)),
                    ],
                },
                TableSpec {
                    name: "orders",
                    columns: vec![
                        col("order_id", I, Pk),
                        col("customer_id", I, Fk(0)),
                        col("order_date", T, DateText),
                        col("total_amount", R, RealRange(5.0, 5_000.0)),
                    ],
                },
                TableSpec {
                    name: "order_item",
                    columns: vec![
                        col("order_item_id", I, Pk),
                        col("order_id", I, Fk(2)),
                        col("product_id", I, Fk(1)),
                        col("quantity", I, IntRange(1, 12)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "library_loans",
            tables: vec![
                TableSpec {
                    name: "author",
                    columns: vec![
                        col("author_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                    ],
                },
                TableSpec {
                    name: "book",
                    columns: vec![
                        col("book_id", I, Pk),
                        col("title", T, ThingName),
                        col("author_id", I, Fk(0)),
                        col("publication_year", I, Year),
                        col("pages", I, IntRange(60, 1_400)),
                    ],
                },
                TableSpec {
                    name: "member",
                    columns: vec![
                        col("member_id", I, Pk),
                        col("name", T, PersonName),
                        col("join_year", I, Year),
                    ],
                },
                TableSpec {
                    name: "loan",
                    columns: vec![
                        col("loan_id", I, Pk),
                        col("book_id", I, Fk(1)),
                        col("member_id", I, Fk(2)),
                        col("loan_date", T, DateText),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "movie_platform",
            tables: vec![
                TableSpec {
                    name: "director",
                    columns: vec![
                        col("director_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                    ],
                },
                TableSpec {
                    name: "movie",
                    columns: vec![
                        col("movie_id", I, Pk),
                        col("title", T, ThingName),
                        col("director_id", I, Fk(0)),
                        col("release_year", I, Year),
                        acol("runtime_minutes", I, IntRange(60, 220), "rt", "runtime in minutes"),
                        col("rating", R, RealRange(1.0, 10.0)),
                    ],
                },
                TableSpec {
                    name: "viewer",
                    columns: vec![
                        col("viewer_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                    ],
                },
                TableSpec {
                    name: "review",
                    columns: vec![
                        col("review_id", I, Pk),
                        col("movie_id", I, Fk(1)),
                        col("viewer_id", I, Fk(2)),
                        col("stars", I, IntRange(1, 5)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "hospital_care",
            tables: vec![
                TableSpec {
                    name: "physician",
                    columns: vec![
                        col("physician_id", I, Pk),
                        col("name", T, PersonName),
                        col("specialty", T, Flag(&["cardiology", "neurology", "oncology", "pediatrics", "surgery"])),
                        col("salary", R, RealRange(90_000.0, 400_000.0)),
                    ],
                },
                TableSpec {
                    name: "patient",
                    columns: vec![
                        col("patient_id", I, Pk),
                        col("name", T, PersonName),
                        col("age", I, IntRange(0, 99)),
                        col("city", T, City),
                    ],
                },
                TableSpec {
                    name: "appointment",
                    columns: vec![
                        col("appointment_id", I, Pk),
                        col("physician_id", I, Fk(0)),
                        col("patient_id", I, Fk(1)),
                        col("appointment_date", T, DateText),
                        acol("duration_minutes", I, IntRange(10, 120), "dm", "appointment duration in minutes"),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "sports_league",
            tables: vec![
                TableSpec {
                    name: "team",
                    columns: vec![
                        col("team_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        acol("road_overtime_losses", I, IntRange(0, 20), "rotl", "road overtime loses"),
                        acol("penalty_minutes", I, IntRange(0, 900), "pim", "penalty minutes"),
                    ],
                },
                TableSpec {
                    name: "player",
                    columns: vec![
                        col("player_id", I, Pk),
                        col("name", T, PersonName),
                        col("team_id", I, Fk(0)),
                        col("goals", I, IntRange(0, 60)),
                        col("age", I, IntRange(17, 42)),
                    ],
                },
                TableSpec {
                    name: "match_game",
                    columns: vec![
                        col("match_id", I, Pk),
                        col("home_team_id", I, Fk(0)),
                        col("away_team_id", I, Fk(0)),
                        col("home_score", I, IntRange(0, 9)),
                        col("away_score", I, IntRange(0, 9)),
                        col("season", I, Year),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "real_estate",
            tables: vec![
                TableSpec {
                    name: "agent",
                    columns: vec![
                        col("agent_id", I, Pk),
                        col("name", T, PersonName),
                        acol("commission_rate", R, RealRange(0.5, 6.0), "cr", "commission rate percent"),
                    ],
                },
                TableSpec {
                    name: "property",
                    columns: vec![
                        col("property_id", I, Pk),
                        col("address", T, FreeText),
                        col("city", T, City),
                        col("price", R, RealRange(40_000.0, 3_000_000.0)),
                        col("bedrooms", I, IntRange(1, 8)),
                        col("agent_id", I, Fk(0)),
                    ],
                },
                TableSpec {
                    name: "sale",
                    columns: vec![
                        col("sale_id", I, Pk),
                        col("property_id", I, Fk(1)),
                        col("sale_date", T, DateText),
                        col("sale_price", R, RealRange(35_000.0, 3_200_000.0)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "restaurant_guide",
            tables: vec![
                TableSpec {
                    name: "restaurant",
                    columns: vec![
                        col("restaurant_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        col("cuisine", T, Flag(&["italian", "japanese", "mexican", "indian", "french", "thai"])),
                        col("rating", R, RealRange(1.0, 5.0)),
                    ],
                },
                TableSpec {
                    name: "dish",
                    columns: vec![
                        col("dish_id", I, Pk),
                        col("restaurant_id", I, Fk(0)),
                        col("name", T, FreeText),
                        col("price", R, RealRange(3.0, 90.0)),
                        acol("calories", I, IntRange(50, 2_000), "cal", "energy in kilocalories"),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "music_catalog",
            tables: vec![
                TableSpec {
                    name: "artist",
                    columns: vec![
                        col("artist_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                        col("genre", T, Genre),
                    ],
                },
                TableSpec {
                    name: "album",
                    columns: vec![
                        col("album_id", I, Pk),
                        col("title", T, ThingName),
                        col("artist_id", I, Fk(0)),
                        col("release_year", I, Year),
                    ],
                },
                TableSpec {
                    name: "song",
                    columns: vec![
                        col("song_id", I, Pk),
                        col("title", T, FreeText),
                        col("album_id", I, Fk(1)),
                        acol("duration_seconds", I, IntRange(60, 600), "dur", "duration in seconds"),
                        col("plays", I, IntRange(0, 10_000_000)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "car_dealership",
            tables: vec![
                TableSpec {
                    name: "manufacturer",
                    columns: vec![
                        col("manufacturer_id", I, Pk),
                        col("name", T, OrgName),
                        col("country", T, Country),
                        col("founded_year", I, Year),
                    ],
                },
                TableSpec {
                    name: "car_model",
                    columns: vec![
                        col("model_id", I, Pk),
                        col("name", T, ThingName),
                        col("manufacturer_id", I, Fk(0)),
                        acol("horsepower", I, IntRange(60, 900), "hp", "engine horsepower"),
                        acol("miles_per_gallon", R, RealRange(8.0, 60.0), "mpg", "fuel efficiency in miles per gallon"),
                        col("price", R, RealRange(9_000.0, 250_000.0)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "hotel_booking",
            tables: vec![
                TableSpec {
                    name: "hotel",
                    columns: vec![
                        col("hotel_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        col("stars", I, IntRange(1, 5)),
                    ],
                },
                TableSpec {
                    name: "guest",
                    columns: vec![
                        col("guest_id", I, Pk),
                        col("name", T, PersonName),
                        col("country", T, Country),
                    ],
                },
                TableSpec {
                    name: "booking",
                    columns: vec![
                        col("booking_id", I, Pk),
                        col("hotel_id", I, Fk(0)),
                        col("guest_id", I, Fk(1)),
                        col("check_in", T, DateText),
                        col("nights", I, IntRange(1, 21)),
                        col("total_price", R, RealRange(50.0, 9_000.0)),
                    ],
                },
            ],
        },
        DomainSpec {
            name: "museum_visits",
            tables: vec![
                TableSpec {
                    name: "museum",
                    columns: vec![
                        col("museum_id", I, Pk),
                        col("name", T, ThingName),
                        col("city", T, City),
                        acol("annual_visitors", I, IntRange(5_000, 5_000_000), "av", "annual visitor count"),
                    ],
                },
                TableSpec {
                    name: "exhibit",
                    columns: vec![
                        col("exhibit_id", I, Pk),
                        col("museum_id", I, Fk(0)),
                        col("title", T, FreeText),
                        col("year_opened", I, Year),
                    ],
                },
                TableSpec {
                    name: "visitor",
                    columns: vec![
                        col("visitor_id", I, Pk),
                        col("name", T, PersonName),
                        col("age", I, IntRange(5, 90)),
                    ],
                },
                TableSpec {
                    name: "visit",
                    columns: vec![
                        col("visit_id", I, Pk),
                        col("museum_id", I, Fk(0)),
                        col("visitor_id", I, Fk(2)),
                        col("spent", R, RealRange(0.0, 120.0)),
                    ],
                },
            ],
        },
    ]
}

/// Configuration of database instantiation.
#[derive(Debug, Clone)]
pub struct DbGenConfig {
    /// Minimum rows per table.
    pub min_rows: usize,
    /// Maximum rows per table (link tables get 2x).
    pub max_rows: usize,
    /// BIRD mode: ambiguous column names (comment carries the meaning),
    /// dirty values, and a share of wide filler columns.
    pub bird_mode: bool,
    /// Number of filler columns appended to the first table in BIRD mode.
    pub wide_filler_columns: usize,
}

impl Default for DbGenConfig {
    fn default() -> Self {
        DbGenConfig { min_rows: 30, max_rows: 120, bird_mode: false, wide_filler_columns: 0 }
    }
}

impl DbGenConfig {
    /// Spider-style: small clean databases.
    pub fn spider() -> DbGenConfig {
        DbGenConfig::default()
    }

    /// BIRD-style: larger, dirty, ambiguous and wide.
    pub fn bird() -> DbGenConfig {
        DbGenConfig { min_rows: 150, max_rows: 600, bird_mode: true, wide_filler_columns: 18 }
    }
}

/// Generate a populated database from a domain spec.
///
/// In BIRD mode columns with an [`AmbiguousName`] are renamed to their
/// cryptic short form and the explanatory comment is attached; in Spider
/// mode the clean name is kept and no comment is needed.
pub fn generate_database(spec: &DomainSpec, cfg: &DbGenConfig, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(spec.name);

    // 1. Schemas.
    for (ti, tspec) in spec.tables.iter().enumerate() {
        let mut columns = Vec::new();
        for cspec in &tspec.columns {
            let (name, comment) = match (&cspec.ambiguous, cfg.bird_mode) {
                (Some(a), true) => (a.short.to_string(), Some(a.comment.to_string())),
                _ => (cspec.name.to_string(), None),
            };
            let mut c = Column::new(name, cspec.data_type);
            c.comment = comment;
            if matches!(cspec.role, Pk) {
                c = c.primary_key();
            }
            columns.push(c);
        }
        let mut schema = TableSchema::new(tspec.name, columns);
        for (ci, cspec) in tspec.columns.iter().enumerate() {
            if let Fk(target) = cspec.role {
                let target_spec = &spec.tables[target];
                let target_pk = target_spec
                    .columns
                    .iter()
                    .find(|c| matches!(c.role, Pk))
                    .expect("FK target table must have a PK");
                let this_name = schema.columns[ci].name.clone();
                schema = schema.with_foreign_key(this_name, target_spec.name, resolved_name(target_pk, cfg));
            }
        }
        if ti == 0 && cfg.bird_mode && cfg.wide_filler_columns > 0 {
            // Filler columns carry varied comments (real BIRD comments are
            // individually descriptive, not boilerplate).
            const FILLER_COMMENTS: &[&str] = &[
                "vendor reported quality indicator",
                "sensor reading from the telemetry feed",
                "legacy field imported from the old system",
                "quarterly adjustment factor",
                "normalized percentile score",
                "running total since onboarding",
                "weighted moving average of activity",
                "compliance checklist position",
                "external audit reference code",
                "seasonal correction coefficient",
                "partner channel contribution share",
                "historical baseline measurement",
                "forecast deviation margin",
                "internal risk weighting",
                "cumulative service credits",
                "peak load watermark",
                "maintenance cycle counter",
                "regional calibration offset",
            ];
            for k in 0..cfg.wide_filler_columns {
                let mut c = Column::new(format!("m{k}"), if k % 2 == 0 { I } else { R });
                let base = FILLER_COMMENTS[k % FILLER_COMMENTS.len()];
                c.comment = Some(if k < FILLER_COMMENTS.len() {
                    base.to_string()
                } else {
                    format!("{base} {k}")
                });
                schema.columns.push(c);
            }
        }
        db.create_table(schema).expect("domain specs have unique table names");
    }

    // 2. Rows (parents before children — specs list parents first).
    let mut pk_counts: Vec<usize> = vec![0; spec.tables.len()];
    for (ti, tspec) in spec.tables.iter().enumerate() {
        let base_rows = rng.random_range(cfg.min_rows..=cfg.max_rows);
        // Link tables (mostly FKs) get more rows; small dimension tables fewer.
        let fk_share = tspec.columns.iter().filter(|c| matches!(c.role, Fk(_))).count() as f64
            / tspec.columns.len() as f64;
        let rows = if fk_share > 0.4 { base_rows * 2 } else { base_rows.max(8) };
        pk_counts[ti] = rows;
        let wide_extra = if ti == 0 && cfg.bird_mode { cfg.wide_filler_columns } else { 0 };
        for pk in 0..rows {
            let mut row = Vec::with_capacity(tspec.columns.len() + wide_extra);
            for cspec in &tspec.columns {
                row.push(generate_value(cspec, pk, &pk_counts, cfg, &mut rng));
            }
            for k in 0..wide_extra {
                row.push(if k % 2 == 0 {
                    Value::Integer(rng.random_range(0..10_000))
                } else {
                    Value::Real((rng.random_range(0.0..1_000.0f64) * 100.0).round() / 100.0)
                });
            }
            db.table_mut(tspec.name).unwrap().insert(row).expect("generated row must satisfy schema");
        }
    }
    db
}

fn resolved_name(cspec: &ColumnSpec, cfg: &DbGenConfig) -> String {
    match (&cspec.ambiguous, cfg.bird_mode) {
        (Some(a), true) => a.short.to_string(),
        _ => cspec.name.to_string(),
    }
}

fn generate_value(cspec: &ColumnSpec, pk: usize, pk_counts: &[usize], cfg: &DbGenConfig, rng: &mut StdRng) -> Value {
    let pick = |list: &[&str], rng: &mut StdRng| -> String { list[rng.random_range(0..list.len())].to_string() };
    let raw = match cspec.role {
        Pk => return Value::Integer(pk as i64 + 1),
        Fk(target) => {
            let n = pk_counts[target].max(1);
            return Value::Integer(rng.random_range(0..n) as i64 + 1);
        }
        PersonName => Value::Text(format!(
            "{} {}",
            pick(lexicon::FIRST_NAMES, rng),
            pick(lexicon::LAST_NAMES, rng)
        )),
        City => Value::Text(pick(lexicon::CITIES, rng)),
        Country => Value::Text(pick(lexicon::COUNTRIES, rng)),
        OrgName => Value::Text(format!("{} {}", pick(lexicon::ORG_WORDS, rng), pick(&["Corp", "Group", "Labs", "Inc"], rng))),
        ThingName => Value::Text(format!(
            "{} {}",
            pick(lexicon::NAME_ADJECTIVES, rng),
            pick(lexicon::NAME_NOUNS, rng)
        )),
        Genre => Value::Text(pick(lexicon::GENRES, rng)),
        AcademicField => Value::Text(pick(lexicon::FIELDS, rng)),
        Year => Value::Integer(rng.random_range(1960..=2023)),
        IntRange(lo, hi) => Value::Integer(rng.random_range(lo..=hi)),
        RealRange(lo, hi) => Value::Real((rng.random_range(lo..=hi) * 100.0).round() / 100.0),
        Flag(options) => Value::Text(pick(options, rng)),
        DateText => Value::Text(format!(
            "{:04}-{:02}-{:02}",
            rng.random_range(1990..=2023),
            rng.random_range(1..=12),
            rng.random_range(1..=28)
        )),
        FreeText => Value::Text(format!(
            "{} {} {}",
            pick(lexicon::NAME_ADJECTIVES, rng),
            pick(lexicon::NAME_NOUNS, rng),
            pick(&["plan", "story", "project", "route", "series", "report"], rng)
        )),
    };
    // Dirty values in BIRD mode: random casing / stray whitespace on ~10%.
    if cfg.bird_mode {
        if let Value::Text(s) = &raw {
            let roll = rng.random_range(0..10);
            if roll == 0 {
                return Value::Text(s.to_uppercase());
            } else if roll == 1 {
                return Value::Text(format!(" {s}"));
            }
        }
        // ~3% NULLs in nullable text/real columns (dirty data).
        if !matches!(cspec.role, Pk | Fk(_)) && rng.random_range(0..33) == 0 {
            return Value::Null;
        }
    }
    raw
}

/// The natural-language surface of a column: its comment when present
/// (BIRD), otherwise the normalized identifier.
pub fn column_nl(db: &Database, table: &str, column: &str) -> String {
    if let Some(t) = db.table(table) {
        if let Some(c) = t.schema.column(column) {
            if let Some(comment) = &c.comment {
                return comment.clone();
            }
            return codes_nlp::normalize_identifier(&c.name);
        }
    }
    codes_nlp::normalize_identifier(column)
}

/// The natural-language surface of a table name.
pub fn table_nl(table: &str) -> String {
    codes_nlp::normalize_identifier(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_library_is_large_and_unique() {
        let ds = domains();
        assert!(ds.len() >= 15);
        let names: std::collections::HashSet<_> = ds.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), ds.len());
        for d in &ds {
            assert!(d.tables.len() >= 2, "{} too small", d.name);
            for t in &d.tables {
                assert!(t.columns.iter().filter(|c| matches!(c.role, Pk)).count() <= 1);
            }
        }
    }

    #[test]
    fn fk_targets_are_valid_and_acyclic_forward() {
        for d in domains() {
            for (ti, t) in d.tables.iter().enumerate() {
                for c in &t.columns {
                    if let Fk(target) = c.role {
                        assert!(target < d.tables.len());
                        assert!(target != ti || t.name == "match_game" || target < ti,
                            "{}.{} FK must point to an earlier table", t.name, c.name);
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &domains()[0];
        let a = generate_database(spec, &DbGenConfig::spider(), 42);
        let b = generate_database(spec, &DbGenConfig::spider(), 42);
        assert_eq!(a.table("singer").unwrap().rows, b.table("singer").unwrap().rows);
        let c = generate_database(spec, &DbGenConfig::spider(), 43);
        assert_ne!(a.table("singer").unwrap().rows, c.table("singer").unwrap().rows);
    }

    #[test]
    fn spider_mode_keeps_clean_names() {
        let spec = &domains()[0];
        let db = generate_database(spec, &DbGenConfig::spider(), 1);
        let t = db.table("stadium").unwrap();
        assert!(t.schema.column("average_attendance").is_some());
        assert!(t.schema.column("avg_att").is_none());
    }

    #[test]
    fn bird_mode_uses_ambiguous_names_with_comments() {
        let spec = &domains()[0];
        let db = generate_database(spec, &DbGenConfig::bird(), 1);
        let t = db.table("stadium").unwrap();
        let c = t.schema.column("avg_att").expect("ambiguous name should be used");
        assert_eq!(c.comment.as_deref(), Some("average attendance per event"));
        // Wide filler columns on the first table.
        assert!(t.schema.columns.len() >= 5 + 18);
    }

    #[test]
    fn fks_resolve_to_existing_rows() {
        let spec = &domains()[0];
        let db = generate_database(spec, &DbGenConfig::spider(), 7);
        let concerts = db.table("concert").unwrap();
        let stadiums = db.table("stadium").unwrap().rows.len() as i64;
        let fk_idx = concerts.schema.column_index("stadium_id").unwrap();
        for row in &concerts.rows {
            if let Value::Integer(v) = row[fk_idx] {
                assert!(v >= 1 && v <= stadiums);
            }
        }
    }

    #[test]
    fn executable_against_engine() {
        let spec = &domains()[1];
        let db = generate_database(spec, &DbGenConfig::spider(), 3);
        let r = sqlengine::execute_query(&db, "SELECT COUNT(*) FROM employee").unwrap();
        assert!(r.rows[0][0].as_f64().unwrap() > 0.0);
        let r = sqlengine::execute_query(
            &db,
            "SELECT T1.name FROM department AS T1 JOIN employee AS T2 ON T1.department_id = T2.department_id LIMIT 5",
        )
        .unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn column_nl_prefers_comment() {
        let spec = &domains()[0];
        let bird = generate_database(spec, &DbGenConfig::bird(), 1);
        assert_eq!(column_nl(&bird, "stadium", "avg_att"), "average attendance per event");
        let spider = generate_database(spec, &DbGenConfig::spider(), 1);
        assert_eq!(column_nl(&spider, "stadium", "average_attendance"), "average attendance");
    }

    #[test]
    fn bird_mode_has_dirty_values() {
        let spec = &domains()[0];
        let db = generate_database(spec, &DbGenConfig::bird(), 5);
        let singer = db.table("singer").unwrap();
        let name_idx = singer.schema.column_index("name").unwrap();
        let dirty = singer.rows.iter().any(|r| match &r[name_idx] {
            Value::Text(s) => s.starts_with(' ') || (!s.is_empty() && *s == s.to_uppercase() && s.chars().any(|c| c.is_alphabetic())),
            Value::Null => true,
            _ => false,
        });
        assert!(dirty, "BIRD mode should produce some dirty values");
    }
}
