#![warn(missing_docs)]

//! # codes-datasets
//!
//! Seeded synthetic text-to-SQL benchmark generators reproducing the
//! structural properties of the datasets in the CodeS paper:
//!
//! * [`benchmark`] — Spider-like and BIRD-like cross-domain benchmarks;
//! * [`perturb`] — Spider-Syn / Spider-Realistic / Spider-DK variants;
//! * [`drspider`] — the 17 Dr.Spider perturbation test sets;
//! * [`finance`] / [`academic`] — the Bank-Financials and Aminer-Simplified
//!   new-domain datasets;
//! * [`synth`] + [`templates`] — the underlying schema and question/SQL
//!   generators;
//! * [`rename`] — schema renaming with aligned gold-SQL rewriting.

pub mod academic;
pub mod benchmark;
pub mod drspider;
pub mod finance;
pub mod lexicon;
pub mod perturb;
pub mod rename;
pub mod sample;
pub mod synth;
pub mod templates;

pub use benchmark::{bird_benchmark, build_benchmark, spider_benchmark, Benchmark, BenchmarkConfig};
pub use drspider::{build_drspider_set, Category, DrSpiderSet, PerturbedSet};
pub use perturb::{build_variant, SpiderVariant};
pub use sample::{Hardness, QPart, Sample, ValueMention};
pub use synth::{column_nl, domains, generate_database, table_nl, DbGenConfig, DomainSpec};
pub use templates::{generate_samples, instantiate, template_hardness, TEMPLATE_COUNT};
