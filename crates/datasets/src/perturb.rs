//! NLQ-side perturbations: Spider-Syn, Spider-Realistic and Spider-DK.
//!
//! All three variants keep the database and the gold SQL fixed and rewrite
//! the *question* so that its surface diverges from the schema vocabulary,
//! mimicking real users. Because our questions carry structured
//! [`QPart`]s, the rewrites are exact rather than heuristic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::benchmark::Benchmark;
use crate::lexicon;
use crate::sample::{QPart, Sample};

/// Which Spider variant to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpiderVariant {
    /// Synonym substitution over schema-linked words (Spider-Syn).
    Syn,
    /// Drop explicit column mentions (Spider-Realistic).
    Realistic,
    /// Require domain knowledge: values and columns referenced by aliases
    /// and paraphrases, with no external-knowledge hints (Spider-DK).
    DomainKnowledge,
}

impl SpiderVariant {
    /// Dataset name of the variant.
    pub fn name(&self) -> &'static str {
        match self {
            SpiderVariant::Syn => "spider-syn",
            SpiderVariant::Realistic => "spider-realistic",
            SpiderVariant::DomainKnowledge => "spider-dk",
        }
    }
}

/// Build the perturbed dev set of a base benchmark.
pub fn build_variant(base: &Benchmark, variant: SpiderVariant, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    base.dev
        .iter()
        .map(|s| perturb_sample(s, variant, &mut rng))
        .collect()
}

/// Perturb a single sample's question.
pub fn perturb_sample(sample: &Sample, variant: SpiderVariant, rng: &mut StdRng) -> Sample {
    let mut out = sample.clone();
    match variant {
        SpiderVariant::Syn => {
            for part in &mut out.question_parts {
                match part {
                    QPart::Column { nl, .. } | QPart::Table { nl, .. } => {
                        *nl = synonymize_words(nl, rng, 1.0);
                    }
                    _ => {}
                }
            }
        }
        SpiderVariant::Realistic => {
            // Remove explicit column mentions: each column NL is replaced by
            // a paraphrase when one exists, otherwise by a vague carrier.
            for part in &mut out.question_parts {
                if let QPart::Column { nl, .. } = part {
                    *nl = realistic_paraphrase(nl, rng);
                }
            }
        }
        SpiderVariant::DomainKnowledge => {
            for part in &mut out.question_parts {
                match part {
                    // Values referenced through domain aliases; the model
                    // must know that "female" is stored as 'F'.
                    QPart::ValueRef { text, .. } => {
                        let bare = text.trim_matches('\'');
                        if let Some(alias) = lexicon::value_alias(bare) {
                            *text = alias.to_string();
                        }
                    }
                    QPart::Column { nl, .. } => {
                        *nl = synonymize_words(nl, rng, 0.5);
                    }
                    _ => {}
                }
            }
            // Domain knowledge means no EK hints are available.
            out.external_knowledge = None;
        }
    }
    out.refresh_question();
    out
}

/// Replace each word that has a synonym with one, with probability `p`.
pub fn synonymize_words(text: &str, rng: &mut StdRng, p: f64) -> String {
    let replaced: Vec<String> = text
        .split_whitespace()
        .map(|w| {
            let lower = w.to_lowercase();
            match lexicon::synonyms_of(&lower) {
                Some(syns) if rng.random_range(0.0..1.0) < p => {
                    syns[rng.random_range(0..syns.len())].to_string()
                }
                _ => w.to_string(),
            }
        })
        .collect();
    replaced.join(" ")
}

/// A "realistic" paraphrase of a column mention: attribute phrasing when
/// known, synonym otherwise, vague fallback last.
pub fn realistic_paraphrase(nl: &str, rng: &mut StdRng) -> String {
    const ATTRIBUTES: &[(&str, &str)] = &[
        ("age", "how old they are"),
        ("weight", "how heavy they are"),
        ("height", "how tall they are"),
        ("capacity", "how many people fit"),
        ("price", "how much it costs"),
        ("salary", "how much they earn"),
        ("rating", "how well rated it is"),
        ("population", "how many people live there"),
        ("distance", "how far it goes"),
    ];
    let lower = nl.to_lowercase();
    for (word, phrase) in ATTRIBUTES {
        if lower.contains(word) {
            return phrase.to_string();
        }
    }
    let with_syn = synonymize_words(nl, rng, 1.0);
    if with_syn != nl {
        with_syn
    } else {
        // No paraphrase available: keep the last word only (dropping the
        // qualifying part of multi-word names).
        nl.split_whitespace().last().unwrap_or(nl).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::spider_benchmark;

    #[test]
    fn variants_preserve_sql_and_dbs() {
        let base = spider_benchmark(11);
        for v in [SpiderVariant::Syn, SpiderVariant::Realistic, SpiderVariant::DomainKnowledge] {
            let perturbed = build_variant(&base, v, 7);
            assert_eq!(perturbed.len(), base.dev.len());
            for (p, o) in perturbed.iter().zip(&base.dev) {
                assert_eq!(p.sql, o.sql, "{} must not change gold SQL", v.name());
                assert_eq!(p.db_id, o.db_id);
            }
        }
    }

    #[test]
    fn syn_changes_some_questions() {
        let base = spider_benchmark(12);
        let perturbed = build_variant(&base, SpiderVariant::Syn, 5);
        let changed = perturbed
            .iter()
            .zip(&base.dev)
            .filter(|(p, o)| p.question != o.question)
            .count();
        assert!(changed > base.dev.len() / 4, "only {changed} questions changed");
    }

    #[test]
    fn dk_strips_external_knowledge() {
        let base = spider_benchmark(13);
        let perturbed = build_variant(&base, SpiderVariant::DomainKnowledge, 5);
        assert!(perturbed.iter().all(|s| s.external_knowledge.is_none()));
    }

    #[test]
    fn synonymize_replaces_known_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = synonymize_words("name", &mut rng, 1.0);
        assert_ne!(out, "name");
        let out = synonymize_words("zorglub", &mut rng, 1.0);
        assert_eq!(out, "zorglub");
    }

    #[test]
    fn realistic_uses_attribute_phrases() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(realistic_paraphrase("age", &mut rng), "how old they are");
        assert_eq!(realistic_paraphrase("total price", &mut rng), "how much it costs");
    }
}
