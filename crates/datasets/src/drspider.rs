//! Dr.Spider: 17 perturbation test sets across three categories —
//! 3 database-side, 9 question-side and 5 SQL-side (Table 8 of the paper).
//!
//! DB perturbations rename schemas or re-encode values and rewrite the
//! gold SQL to stay aligned. NLQ perturbations rewrite question parts.
//! SQL perturbations select dev samples whose gold SQL exercises a given
//! construct and paraphrase the construct's surface wording.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sqlengine::Database;

use crate::benchmark::Benchmark;
use crate::lexicon;
use crate::perturb::{realistic_paraphrase, synonymize_words};
use crate::rename::{
    rename_database, rewrite_sql, transform_sql_text_literals, transform_text_values, RenameMap,
};
use crate::sample::{QPart, Sample};

/// The 17 Dr.Spider test sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names mirror the paper's set names (Table 8)
pub enum DrSpiderSet {
    // DB side
    SchemaSynonym,
    SchemaAbbreviation,
    DbContentEquivalence,
    // NLQ side
    KeywordSynonym,
    KeywordCarrier,
    ColumnSynonym,
    ColumnCarrier,
    ColumnAttribute,
    ColumnValue,
    ValueSynonym,
    Multitype,
    Others,
    // SQL side
    Comparison,
    SortOrder,
    NonDbNumber,
    DbText,
    DbNumber,
}

/// Perturbation category, matching Table 8's grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Database-side perturbations (schema renames, value re-encoding).
    Db,
    /// Question-side perturbations (paraphrases).
    Nlq,
    /// SQL-side construct-focused test sets.
    Sql,
}

impl Category {
    /// Table 8's row label for the category.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Db => "DB",
            Category::Nlq => "NLQ",
            Category::Sql => "SQL",
        }
    }
}

impl DrSpiderSet {
    /// All 17 sets, in Table 8's order.
    pub fn all() -> [DrSpiderSet; 17] {
        use DrSpiderSet::*;
        [
            SchemaSynonym,
            SchemaAbbreviation,
            DbContentEquivalence,
            KeywordSynonym,
            KeywordCarrier,
            ColumnSynonym,
            ColumnCarrier,
            ColumnAttribute,
            ColumnValue,
            ValueSynonym,
            Multitype,
            Others,
            Comparison,
            SortOrder,
            NonDbNumber,
            DbText,
            DbNumber,
        ]
    }

    /// The paper's name for the set.
    pub fn name(&self) -> &'static str {
        use DrSpiderSet::*;
        match self {
            SchemaSynonym => "schema-synonym",
            SchemaAbbreviation => "schema-abbreviation",
            DbContentEquivalence => "DBcontent-equivalence",
            KeywordSynonym => "keyword-synonym",
            KeywordCarrier => "keyword-carrier",
            ColumnSynonym => "column-synonym",
            ColumnCarrier => "column-carrier",
            ColumnAttribute => "column-attribute",
            ColumnValue => "column-value",
            ValueSynonym => "value-synonym",
            Multitype => "multitype",
            Others => "others",
            Comparison => "comparison",
            SortOrder => "sort-order",
            NonDbNumber => "nonDB-number",
            DbText => "DB-text",
            DbNumber => "DB-number",
        }
    }

    /// Which of the three perturbation categories the set belongs to.
    pub fn category(&self) -> Category {
        use DrSpiderSet::*;
        match self {
            SchemaSynonym | SchemaAbbreviation | DbContentEquivalence => Category::Db,
            KeywordSynonym | KeywordCarrier | ColumnSynonym | ColumnCarrier | ColumnAttribute
            | ColumnValue | ValueSynonym | Multitype | Others => Category::Nlq,
            Comparison | SortOrder | NonDbNumber | DbText | DbNumber => Category::Sql,
        }
    }
}

/// One built Dr.Spider test set: (possibly transformed) databases plus
/// samples aligned to them.
#[derive(Debug, Clone)]
pub struct PerturbedSet {
    /// Which Dr.Spider set this is.
    pub set: DrSpiderSet,
    /// The (possibly transformed) databases.
    pub databases: Vec<Database>,
    /// Samples aligned to those databases.
    pub samples: Vec<Sample>,
}

/// Build one of the 17 sets from the base benchmark's dev split.
pub fn build_drspider_set(base: &Benchmark, set: DrSpiderSet, seed: u64) -> PerturbedSet {
    let mut rng = StdRng::seed_from_u64(seed ^ (set as u64).wrapping_mul(0x9E37));
    match set.category() {
        Category::Db => build_db_side(base, set, &mut rng),
        Category::Nlq => build_nlq_side(base, set, &mut rng),
        Category::Sql => build_sql_side(base, set, &mut rng),
    }
}

// ---------------------------------------------------------------------------
// DB-side
// ---------------------------------------------------------------------------

fn build_db_side(base: &Benchmark, set: DrSpiderSet, rng: &mut StdRng) -> PerturbedSet {
    let mut databases = Vec::with_capacity(base.databases.len());
    let mut maps: std::collections::HashMap<String, RenameMap> = std::collections::HashMap::new();
    for db in &base.databases {
        match set {
            DrSpiderSet::SchemaSynonym => {
                let map = synonym_rename_map(db, rng);
                databases.push(rename_database(db, &map));
                maps.insert(db.name.clone(), map);
            }
            DrSpiderSet::SchemaAbbreviation => {
                let map = abbreviation_rename_map(db);
                databases.push(rename_database(db, &map));
                maps.insert(db.name.clone(), map);
            }
            DrSpiderSet::DbContentEquivalence => {
                databases.push(transform_text_values(db, |s| s.to_uppercase()));
            }
            _ => unreachable!(),
        }
    }
    let samples = base
        .dev
        .iter()
        .filter_map(|s| {
            let mut out = s.clone();
            out.sql = match set {
                DrSpiderSet::DbContentEquivalence => {
                    transform_sql_text_literals(&s.sql, |t| t.to_uppercase()).ok()?
                }
                _ => rewrite_sql(&s.sql, maps.get(&s.db_id)?).ok()?,
            };
            Some(out)
        })
        .collect();
    PerturbedSet { set, databases, samples }
}

/// Rename schema identifiers to synonyms, avoiding collisions.
fn synonym_rename_map(db: &Database, rng: &mut StdRng) -> RenameMap {
    let mut map = RenameMap::default();
    let mut used_tables: std::collections::HashSet<String> =
        db.tables.iter().map(|t| t.schema.name.to_lowercase()).collect();
    let mut used_columns: std::collections::HashSet<String> = db
        .tables
        .iter()
        .flat_map(|t| t.schema.columns.iter().map(|c| c.name.to_lowercase()))
        .collect();
    for t in &db.tables {
        let old = t.schema.name.to_lowercase();
        if let Some(new) = rename_words(&old, rng) {
            if used_tables.insert(new.clone()) {
                map.tables.insert(old, new);
            }
        }
        for c in &t.schema.columns {
            let old = c.name.to_lowercase();
            if map.columns.contains_key(&old) {
                continue;
            }
            if let Some(new) = rename_words(&old, rng) {
                if used_columns.insert(new.clone()) {
                    map.columns.insert(old, new);
                }
            }
        }
    }
    map
}

/// Underscore-joined synonym replacement of an identifier's words.
fn rename_words(ident: &str, rng: &mut StdRng) -> Option<String> {
    let words: Vec<&str> = ident.split('_').collect();
    let mut any = false;
    let renamed: Vec<String> = words
        .iter()
        .map(|w| match lexicon::synonyms_of(w) {
            Some(syns) => {
                any = true;
                syns[rng.random_range(0..syns.len())].replace(' ', "_")
            }
            None => w.to_string(),
        })
        .collect();
    if any {
        Some(renamed.join("_"))
    } else {
        None
    }
}

/// Abbreviate identifier words (lexicon table, falling back to prefixes).
fn abbreviation_rename_map(db: &Database) -> RenameMap {
    let mut map = RenameMap::default();
    let mut used_tables: std::collections::HashSet<String> =
        db.tables.iter().map(|t| t.schema.name.to_lowercase()).collect();
    let mut used_columns: std::collections::HashSet<String> = db
        .tables
        .iter()
        .flat_map(|t| t.schema.columns.iter().map(|c| c.name.to_lowercase()))
        .collect();
    let abbreviate = |ident: &str| -> Option<String> {
        let words: Vec<&str> = ident.split('_').collect();
        let mut any = false;
        let out: Vec<String> = words
            .iter()
            .map(|w| {
                if let Some(a) = lexicon::abbreviation_of(w) {
                    any = true;
                    a.to_string()
                } else if w.len() > 5 {
                    any = true;
                    w[..3].to_string()
                } else {
                    w.to_string()
                }
            })
            .collect();
        if any {
            Some(out.join("_"))
        } else {
            None
        }
    };
    for t in &db.tables {
        let old = t.schema.name.to_lowercase();
        if let Some(new) = abbreviate(&old) {
            if used_tables.insert(new.clone()) {
                map.tables.insert(old, new);
            }
        }
        for c in &t.schema.columns {
            let old = c.name.to_lowercase();
            if map.columns.contains_key(&old) {
                continue;
            }
            if let Some(new) = abbreviate(&old) {
                if used_columns.insert(new.clone()) {
                    map.columns.insert(old, new);
                }
            }
        }
    }
    map
}

// ---------------------------------------------------------------------------
// NLQ-side
// ---------------------------------------------------------------------------

fn build_nlq_side(base: &Benchmark, set: DrSpiderSet, rng: &mut StdRng) -> PerturbedSet {
    let samples = base
        .dev
        .iter()
        .map(|s| {
            let mut out = s.clone();
            apply_nlq(&mut out, set, base, rng);
            out.refresh_question();
            out
        })
        .collect();
    PerturbedSet { set, databases: base.databases.clone(), samples }
}

fn apply_nlq(sample: &mut Sample, set: DrSpiderSet, base: &Benchmark, rng: &mut StdRng) {
    match set {
        DrSpiderSet::KeywordSynonym => {
            for part in &mut sample.question_parts {
                match part {
                    QPart::AggWord { nl, .. } => *nl = agg_synonym(nl, rng),
                    QPart::OpWord { nl, .. } => *nl = op_synonym(nl, rng),
                    QPart::Lit(s) if s == "how many" => *s = "what is the count of".into(),
                    _ => {}
                }
            }
        }
        DrSpiderSet::KeywordCarrier => {
            sample
                .question_parts
                .insert(0, QPart::lit(["could you tell me", "i would like to know", "please show me"][rng.random_range(0..3usize)]));
        }
        DrSpiderSet::ColumnSynonym => {
            for part in &mut sample.question_parts {
                if let QPart::Column { nl, .. } = part {
                    *nl = synonymize_words(nl, rng, 1.0);
                }
            }
        }
        DrSpiderSet::ColumnCarrier => {
            for part in &mut sample.question_parts {
                if let QPart::Column { nl, .. } = part {
                    *nl = format!("the value of {nl}");
                }
            }
        }
        DrSpiderSet::ColumnAttribute => {
            for part in &mut sample.question_parts {
                if let QPart::Column { nl, .. } = part {
                    *nl = realistic_paraphrase(nl, rng);
                }
            }
        }
        DrSpiderSet::ColumnValue => {
            // Refer to a column through an example value instead of its name.
            let db = base.database(&sample.db_id).cloned();
            for part in &mut sample.question_parts {
                if let QPart::Column { table, column, nl } = part {
                    if let Some(db) = &db {
                        if let Some(t) = db.table(table) {
                            let vals = t.representative_values(column, 1);
                            if let Some(v) = vals.first() {
                                *nl = format!("the field with values like '{}'", v.render().trim());
                                continue;
                            }
                        }
                    }
                    *nl = format!("that {nl} field");
                }
            }
        }
        DrSpiderSet::ValueSynonym => {
            for part in &mut sample.question_parts {
                if let QPart::ValueRef { text, .. } = part {
                    let bare = text.trim_matches('\'').to_string();
                    *text = match lexicon::value_alias(&bare) {
                        Some(alias) => alias.to_string(),
                        None => bare.to_lowercase(),
                    };
                }
            }
        }
        DrSpiderSet::Multitype => {
            apply_nlq(sample, DrSpiderSet::ColumnSynonym, base, rng);
            apply_nlq(sample, DrSpiderSet::ValueSynonym, base, rng);
            apply_nlq(sample, DrSpiderSet::KeywordSynonym, base, rng);
        }
        DrSpiderSet::Others => {
            // Generic lead-in paraphrase plus a trailing qualifier.
            if let Some(QPart::Lit(first)) = sample.question_parts.first_mut() {
                *first = match first.as_str() {
                    "show the" | "list the" => "i want to see the".into(),
                    "what is the" => "tell me the".into(),
                    "how many" => "what number of".into(),
                    other => format!("regarding our records, {other}"),
                };
            }
            sample.question_parts.push(QPart::lit("in the database"));
        }
        _ => unreachable!(),
    }
}

fn agg_synonym(nl: &str, rng: &mut StdRng) -> String {
    let options: &[&str] = match nl {
        "average" => &["mean", "typical"],
        "total" => &["sum of", "overall"],
        "maximum" => &["highest", "top", "greatest"],
        "minimum" => &["lowest", "smallest"],
        _ => return nl.to_string(),
    };
    options[rng.random_range(0..options.len())].to_string()
}

fn op_synonym(nl: &str, rng: &mut StdRng) -> String {
    let options: &[&str] = match nl {
        "more than" | "greater than" | "over" => &["exceeding", "above"],
        "less than" | "below" | "under" => &["beneath", "lower than"],
        "at least" | "no less than" => &["a minimum of"],
        "at most" | "no more than" => &["a maximum of"],
        _ => return nl.to_string(),
    };
    options[rng.random_range(0..options.len())].to_string()
}

// ---------------------------------------------------------------------------
// SQL-side
// ---------------------------------------------------------------------------

/// Template ids exercising each SQL-side construct (see templates.rs).
fn sql_side_templates(set: DrSpiderSet) -> &'static [usize] {
    match set {
        DrSpiderSet::Comparison => &[6, 11, 18, 31, 34, 39],
        DrSpiderSet::SortOrder => &[9, 15, 16, 24, 30, 32],
        DrSpiderSet::NonDbNumber => &[14, 16, 36],
        DrSpiderSet::DbText => &[5, 7, 10, 11, 19, 21, 22, 25, 29, 33, 37],
        DrSpiderSet::DbNumber => &[6, 18, 26, 27, 31, 38],
        _ => unreachable!(),
    }
}

fn build_sql_side(base: &Benchmark, set: DrSpiderSet, rng: &mut StdRng) -> PerturbedSet {
    let wanted = sql_side_templates(set);
    let mut samples: Vec<Sample> = base
        .dev
        .iter()
        .filter(|s| wanted.contains(&s.template_id))
        .cloned()
        .collect();
    if samples.is_empty() {
        samples = base.dev.clone();
    }
    // Light question paraphrase so the set is a perturbation, not a copy.
    for s in &mut samples {
        for part in &mut s.question_parts {
            match part {
                QPart::OpWord { nl, .. } => *nl = op_synonym(nl, rng),
                QPart::AggWord { nl, .. } => *nl = agg_synonym(nl, rng),
                _ => {}
            }
        }
        s.refresh_question();
    }
    PerturbedSet { set, databases: base.databases.clone(), samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::spider_benchmark;

    #[test]
    fn all_seventeen_sets_build() {
        let base = spider_benchmark(21);
        for set in DrSpiderSet::all() {
            let built = build_drspider_set(&base, set, 3);
            assert!(!built.samples.is_empty(), "{} is empty", set.name());
            // Every sample's gold SQL must execute on the set's databases.
            for s in &built.samples {
                let db = built
                    .databases
                    .iter()
                    .find(|d| d.name == s.db_id)
                    .unwrap_or_else(|| panic!("{}: missing db {}", set.name(), s.db_id));
                sqlengine::execute_query(db, &s.sql)
                    .unwrap_or_else(|e| panic!("{}: gold fails `{}`: {e}", set.name(), s.sql));
            }
        }
    }

    #[test]
    fn categories_partition_3_9_5() {
        let mut counts = std::collections::HashMap::new();
        for s in DrSpiderSet::all() {
            *counts.entry(s.category()).or_insert(0) += 1;
        }
        assert_eq!(counts[&Category::Db], 3);
        assert_eq!(counts[&Category::Nlq], 9);
        assert_eq!(counts[&Category::Sql], 5);
    }

    #[test]
    fn schema_synonym_renames_schema() {
        let base = spider_benchmark(22);
        let built = build_drspider_set(&base, DrSpiderSet::SchemaSynonym, 3);
        // At least one database has a renamed table or column.
        let changed = built.databases.iter().zip(&base.databases).any(|(new, old)| {
            new.table_names() != old.table_names()
                || new.tables.iter().zip(&old.tables).any(|(a, b)| {
                    a.schema.columns.iter().map(|c| &c.name).ne(b.schema.columns.iter().map(|c| &c.name))
                })
        });
        assert!(changed);
    }

    #[test]
    fn content_equivalence_uppercases_values() {
        let base = spider_benchmark(23);
        let built = build_drspider_set(&base, DrSpiderSet::DbContentEquivalence, 3);
        let any_upper = built.databases.iter().any(|db| {
            db.text_values()
                .iter()
                .any(|(_, _, v)| v.chars().any(|c| c.is_alphabetic()) && *v == v.to_uppercase())
        });
        assert!(any_upper);
        // Questions keep their original casing.
        assert_eq!(built.samples[0].question, base.dev[0].question);
    }

    #[test]
    fn nlq_sets_change_questions_only() {
        let base = spider_benchmark(24);
        for set in [
            DrSpiderSet::KeywordCarrier,
            DrSpiderSet::ColumnCarrier,
            DrSpiderSet::Others,
        ] {
            let built = build_drspider_set(&base, set, 3);
            let changed = built
                .samples
                .iter()
                .zip(&base.dev)
                .filter(|(p, o)| p.question != o.question)
                .count();
            // KeywordCarrier/Others always inject text; ColumnCarrier only
            // touches samples that actually mention a column.
            let minimum = if set == DrSpiderSet::ColumnCarrier {
                base.dev.len() * 3 / 4
            } else {
                base.dev.len()
            };
            assert!(changed >= minimum, "{}: only {changed} changed", set.name());
            for (p, o) in built.samples.iter().zip(&base.dev) {
                assert_eq!(p.sql, o.sql);
            }
        }
    }

    #[test]
    fn sql_side_sets_filter_by_template() {
        let base = spider_benchmark(25);
        let built = build_drspider_set(&base, DrSpiderSet::SortOrder, 3);
        let allowed = sql_side_templates(DrSpiderSet::SortOrder);
        // Either properly filtered, or the fallback (full dev) was used.
        if built.samples.len() != base.dev.len() {
            assert!(built.samples.iter().all(|s| allowed.contains(&s.template_id)));
        }
    }
}
