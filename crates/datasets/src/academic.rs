//! Aminer-Simplified: the paper's academic-domain dataset (§9.1.1),
//! sampled from an AMiner-like academic graph. Its difficulty comes from
//! the intricate join relationships (author ↔ paper ↔ venue ↔ affiliation).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use sqlengine::{Column, Database, DataType, TableSchema, Value};

use crate::finance::manual_sample;
use crate::lexicon;
use crate::sample::Sample;
use crate::templates::generate_samples;

/// Build the Aminer-Simplified database (deterministic in `seed`).
pub fn aminer_db(seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("aminer_simplified");

    db.create_table(TableSchema::new(
        "affiliation",
        vec![
            Column::new("affiliation_id", DataType::Integer).primary_key(),
            Column::new("name", DataType::Text),
            Column::new("country", DataType::Text),
        ],
    ))
    .unwrap();

    db.create_table(TableSchema::new(
        "venue",
        vec![
            Column::new("venue_id", DataType::Integer).primary_key(),
            Column::new("name", DataType::Text),
            Column::new("field", DataType::Text).with_comment("research field of the venue"),
            Column::new("h_index", DataType::Integer).with_comment("venue h-index"),
        ],
    ))
    .unwrap();

    db.create_table(
        TableSchema::new(
            "author",
            vec![
                Column::new("author_id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text),
                Column::new("affiliation_id", DataType::Integer),
                Column::new("n_citation", DataType::Integer).with_comment("total citation count of the author"),
            ],
        )
        .with_foreign_key("affiliation_id", "affiliation", "affiliation_id"),
    )
    .unwrap();

    db.create_table(
        TableSchema::new(
            "paper",
            vec![
                Column::new("paper_id", DataType::Integer).primary_key(),
                Column::new("title", DataType::Text),
                Column::new("abstract", DataType::Text).with_comment("paper abstract text"),
                Column::new("year", DataType::Integer),
                Column::new("venue_id", DataType::Integer),
                Column::new("n_citation", DataType::Integer).with_comment("citation count of the paper"),
            ],
        )
        .with_foreign_key("venue_id", "venue", "venue_id"),
    )
    .unwrap();

    db.create_table(
        TableSchema::new(
            "author_paper",
            vec![
                Column::new("ap_id", DataType::Integer).primary_key(),
                Column::new("author_id", DataType::Integer),
                Column::new("paper_id", DataType::Integer),
                Column::new("author_order", DataType::Integer).with_comment("position in the author list, 1 = first author"),
            ],
        )
        .with_foreign_key("author_id", "author", "author_id")
        .with_foreign_key("paper_id", "paper", "paper_id"),
    )
    .unwrap();

    // Populate.
    let pick = |list: &[&str], rng: &mut StdRng| -> String { list[rng.random_range(0..list.len())].to_string() };
    let n_affil = 30;
    for i in 0..n_affil {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!("{} University", pick(lexicon::CITIES, &mut rng))),
            Value::Text(pick(lexicon::COUNTRIES, &mut rng)),
        ];
        db.table_mut("affiliation").unwrap().insert(row).unwrap();
    }
    let n_venues = 25;
    for i in 0..n_venues {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!(
                "Conference on {}",
                title_case(&pick(lexicon::FIELDS, &mut rng))
            )),
            Value::Text(pick(lexicon::FIELDS, &mut rng)),
            Value::Integer(rng.random_range(10..200)),
        ];
        db.table_mut("venue").unwrap().insert(row).unwrap();
    }
    let n_authors = 250;
    for i in 0..n_authors {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!(
                "{} {}",
                pick(lexicon::FIRST_NAMES, &mut rng),
                pick(lexicon::LAST_NAMES, &mut rng)
            )),
            Value::Integer(rng.random_range(1..=n_affil as i64)),
            Value::Integer(rng.random_range(0..30_000)),
        ];
        db.table_mut("author").unwrap().insert(row).unwrap();
    }
    let n_papers = 500;
    for i in 0..n_papers {
        let topic = pick(lexicon::FIELDS, &mut rng);
        let adj = pick(lexicon::NAME_ADJECTIVES, &mut rng);
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!("{adj} methods for {topic}")),
            Value::Text(format!(
                "We study {topic} and present a {} approach with strong results.",
                adj.to_lowercase()
            )),
            Value::Integer(rng.random_range(1995..=2023)),
            Value::Integer(rng.random_range(1..=n_venues as i64)),
            Value::Integer(rng.random_range(0..2_000)),
        ];
        db.table_mut("paper").unwrap().insert(row).unwrap();
    }
    for i in 0..1_200 {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Integer(rng.random_range(1..=n_authors as i64)),
            Value::Integer(rng.random_range(1..=n_papers as i64)),
            Value::Integer(rng.random_range(1..=6)),
        ];
        db.table_mut("author_paper").unwrap().insert(row).unwrap();
    }
    db
}

fn title_case(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Hand-written seed questions for the academic domain.
pub fn seed_samples(db: &Database) -> Vec<Sample> {
    let pairs: &[(&str, &str)] = &[
        ("How many papers are in the database?", "SELECT COUNT(*) FROM paper"),
        (
            "What is the abstract of 'Golden methods for databases'?",
            "SELECT abstract FROM paper WHERE title = 'Golden methods for databases'",
        ),
        (
            "Who are the authors affiliated with institutions in Japan?",
            "SELECT name FROM author WHERE affiliation_id IN (SELECT affiliation_id FROM affiliation WHERE country = 'Japan')",
        ),
        (
            "Which venue has published the most papers?",
            "SELECT T2.name FROM paper AS T1 JOIN venue AS T2 ON T1.venue_id = T2.venue_id GROUP BY T2.name ORDER BY COUNT(*) DESC LIMIT 1",
        ),
        (
            "List the titles of papers published after 2020.",
            "SELECT title FROM paper WHERE year > 2020",
        ),
        (
            "What is the average citation count of papers in machine learning venues?",
            "SELECT AVG(T1.n_citation) FROM paper AS T1 JOIN venue AS T2 ON T1.venue_id = T2.venue_id WHERE T2.field = 'machine learning'",
        ),
        (
            "Find the names of first authors of papers with more than 1000 citations.",
            "SELECT DISTINCT T3.name FROM author_paper AS T1 JOIN paper AS T2 ON T1.paper_id = T2.paper_id JOIN author AS T3 ON T1.author_id = T3.author_id WHERE T1.author_order = 1 AND T2.n_citation > 1000",
        ),
        (
            "How many authors does each affiliation have?",
            "SELECT T2.name, COUNT(*) FROM author AS T1 JOIN affiliation AS T2 ON T1.affiliation_id = T2.affiliation_id GROUP BY T2.name",
        ),
        (
            "Which author has written the most papers?",
            "SELECT T2.name FROM author_paper AS T1 JOIN author AS T2 ON T1.author_id = T2.author_id GROUP BY T2.name ORDER BY COUNT(*) DESC LIMIT 1",
        ),
        (
            "What is the highest h-index among venues in the databases field?",
            "SELECT MAX(h_index) FROM venue WHERE field = 'databases'",
        ),
        (
            "Count the papers published per year since 2018, most recent first.",
            "SELECT year, COUNT(*) FROM paper WHERE year >= 2018 GROUP BY year ORDER BY year DESC",
        ),
        (
            "List the venues that have published no papers.",
            "SELECT name FROM venue WHERE venue_id NOT IN (SELECT venue_id FROM paper WHERE venue_id IS NOT NULL)",
        ),
        (
            "Show the titles of papers written by authors from 'Praha University'.",
            "SELECT DISTINCT T3.title FROM author_paper AS T1 JOIN author AS T2 ON T1.author_id = T2.author_id JOIN paper AS T3 ON T1.paper_id = T3.paper_id WHERE T2.affiliation_id IN (SELECT affiliation_id FROM affiliation WHERE name = 'Praha University')",
        ),
        (
            "What is the total citation count of all computer vision papers?",
            "SELECT SUM(T1.n_citation) FROM paper AS T1 JOIN venue AS T2 ON T1.venue_id = T2.venue_id WHERE T2.field = 'computer vision'",
        ),
        (
            "Which country hosts the affiliation with the most cited author?",
            "SELECT T2.country FROM author AS T1 JOIN affiliation AS T2 ON T1.affiliation_id = T2.affiliation_id ORDER BY T1.n_citation DESC LIMIT 1",
        ),
    ];
    pairs
        .iter()
        .map(|(q, sql)| manual_sample(db, q, sql))
        .collect()
}

/// Template-generated test set (stands in for the 97 annotated questions).
pub fn test_samples(db: &Database, n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_samples(db, n, &mut rng, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let db = aminer_db(1);
        assert_eq!(db.tables.len(), 5);
        // Deep join graph: author_paper links two parents.
        let ap = db.table("author_paper").unwrap();
        assert_eq!(ap.schema.foreign_keys.len(), 2);
    }

    #[test]
    fn seed_samples_execute() {
        let db = aminer_db(1);
        for s in seed_samples(&db) {
            let r = sqlengine::execute_query(&db, &s.sql);
            assert!(r.is_ok(), "{} -> {:?}", s.sql, r.err());
        }
    }

    #[test]
    fn test_set_generates_joins() {
        let db = aminer_db(1);
        let tests = test_samples(&db, 50, 2);
        assert!(tests.len() >= 45);
        assert!(tests.iter().any(|s| s.sql.contains("JOIN")));
    }

    #[test]
    fn deterministic() {
        let a = aminer_db(4);
        let b = aminer_db(4);
        assert_eq!(a.table("paper").unwrap().rows, b.table("paper").unwrap().rows);
    }
}
