//! Consistent renaming of schema identifiers across a database and its
//! gold SQL queries — the machinery behind Dr.Spider's DB-side
//! perturbations (schema-synonym, schema-abbreviation) and the
//! DBcontent-equivalence value transformation.

use std::collections::HashMap;

use sqlengine::ast::{Expr, FromClause, Query, Select, SelectItem, SetExpr, TableFactor};
use sqlengine::{parse_query, Database, Value};

/// A global rename map: old lower-cased identifier -> new identifier.
/// Tables and columns are renamed globally (the same old name maps to the
/// same new name everywhere) so unqualified references stay unambiguous.
#[derive(Debug, Clone, Default)]
pub struct RenameMap {
    /// Lower-cased old table name -> new name.
    pub tables: HashMap<String, String>,
    /// Lower-cased old column name -> new name.
    pub columns: HashMap<String, String>,
}

impl RenameMap {
    /// True when no renames are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.columns.is_empty()
    }

    fn table(&self, name: &str) -> Option<&String> {
        self.tables.get(&name.to_lowercase())
    }

    fn column(&self, name: &str) -> Option<&String> {
        self.columns.get(&name.to_lowercase())
    }
}

/// Build a renamed copy of `db` (schema names only; rows are shared
/// content-wise).
pub fn rename_database(db: &Database, map: &RenameMap) -> Database {
    let mut out = db.clone();
    for table in &mut out.tables {
        if let Some(new) = map.table(&table.schema.name) {
            table.schema.name = new.clone();
        }
        for col in &mut table.schema.columns {
            if let Some(new) = map.column(&col.name) {
                col.name = new.clone();
            }
        }
        for fk in &mut table.schema.foreign_keys {
            if let Some(new) = map.column(&fk.column) {
                fk.column = new.clone();
            }
            if let Some(new) = map.table(&fk.ref_table) {
                fk.ref_table = new.clone();
            }
            if let Some(new) = map.column(&fk.ref_column) {
                fk.ref_column = new.clone();
            }
        }
    }
    out
}

/// Rewrite a SQL query under the rename map. Aliases (`T1`, `T2`) are left
/// intact; base table names and column names are replaced.
pub fn rewrite_sql(sql: &str, map: &RenameMap) -> sqlengine::Result<String> {
    let mut q = parse_query(sql)?;
    rewrite_query(&mut q, map);
    Ok(q.to_string())
}

fn rewrite_query(q: &mut Query, map: &RenameMap) {
    rewrite_set_expr(&mut q.body, map);
    for item in &mut q.order_by {
        rewrite_expr(&mut item.expr, map);
    }
    if let Some(l) = &mut q.limit {
        rewrite_expr(l, map);
    }
    if let Some(o) = &mut q.offset {
        rewrite_expr(o, map);
    }
}

fn rewrite_set_expr(se: &mut SetExpr, map: &RenameMap) {
    match se {
        SetExpr::Select(s) => rewrite_select(s, map),
        SetExpr::Nested(q) => rewrite_query(q, map),
        SetExpr::SetOp { left, right, .. } => {
            rewrite_set_expr(left, map);
            rewrite_set_expr(right, map);
        }
    }
}

fn rewrite_select(s: &mut Select, map: &RenameMap) {
    for item in &mut s.projection {
        match item {
            SelectItem::Expr { expr, .. } => rewrite_expr(expr, map),
            SelectItem::QualifiedWildcard(t) => {
                if let Some(new) = map.table(t) {
                    *t = new.clone();
                }
            }
            SelectItem::Wildcard => {}
        }
    }
    if let Some(from) = &mut s.from {
        rewrite_from(from, map);
    }
    if let Some(sel) = &mut s.selection {
        rewrite_expr(sel, map);
    }
    for g in &mut s.group_by {
        rewrite_expr(g, map);
    }
    if let Some(h) = &mut s.having {
        rewrite_expr(h, map);
    }
}

fn rewrite_from(from: &mut FromClause, map: &RenameMap) {
    rewrite_factor(&mut from.base, map);
    for j in &mut from.joins {
        rewrite_factor(&mut j.factor, map);
        if let Some(on) = &mut j.on {
            rewrite_expr(on, map);
        }
    }
}

fn rewrite_factor(f: &mut TableFactor, map: &RenameMap) {
    match f {
        TableFactor::Table { name, .. } => {
            if let Some(new) = map.table(name) {
                *name = new.clone();
            }
        }
        TableFactor::Derived { subquery, .. } => rewrite_query(subquery, map),
    }
}

fn rewrite_expr(e: &mut Expr, map: &RenameMap) {
    match e {
        Expr::Column { table, name } => {
            // Qualifiers that are base table names get renamed; aliases
            // (T1, ...) are not in the map and pass through.
            if let Some(t) = table {
                if let Some(new) = map.table(t) {
                    *t = new.clone();
                }
            }
            if let Some(new) = map.column(name) {
                *name = new.clone();
            }
        }
        Expr::Literal(_) => {}
        Expr::Unary { expr, .. } => rewrite_expr(expr, map),
        Expr::Binary { left, right, .. } => {
            rewrite_expr(left, map);
            rewrite_expr(right, map);
        }
        Expr::Function { args, .. } => {
            for a in args {
                rewrite_expr(a, map);
            }
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                rewrite_expr(op, map);
            }
            for (c, r) in branches {
                rewrite_expr(c, map);
                rewrite_expr(r, map);
            }
            if let Some(el) = else_expr {
                rewrite_expr(el, map);
            }
        }
        Expr::InList { expr, list, .. } => {
            rewrite_expr(expr, map);
            for item in list {
                rewrite_expr(item, map);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            rewrite_expr(expr, map);
            rewrite_query(query, map);
        }
        Expr::ScalarSubquery(q) => rewrite_query(q, map),
        Expr::Exists { query, .. } => rewrite_query(query, map),
        Expr::Between { expr, low, high, .. } => {
            rewrite_expr(expr, map);
            rewrite_expr(low, map);
            rewrite_expr(high, map);
        }
        Expr::Like { expr, pattern, .. } => {
            rewrite_expr(expr, map);
            rewrite_expr(pattern, map);
        }
        Expr::IsNull { expr, .. } => rewrite_expr(expr, map),
        Expr::Cast { expr, .. } => rewrite_expr(expr, map),
    }
}

/// Apply a text-value transformation to every text cell of a database —
/// the DBcontent-equivalence perturbation. Returns the transformed copy.
pub fn transform_text_values(db: &Database, f: impl Fn(&str) -> String) -> Database {
    let mut out = db.clone();
    for table in &mut out.tables {
        for row in &mut table.rows {
            for v in row.iter_mut() {
                if let Value::Text(s) = v {
                    *v = Value::Text(f(s));
                }
            }
        }
    }
    out
}

/// Apply the same transformation to the text literals of a SQL query so
/// the gold query still matches the transformed database.
pub fn transform_sql_text_literals(sql: &str, f: impl Fn(&str) -> String + Copy) -> sqlengine::Result<String> {
    let mut q = parse_query(sql)?;
    transform_query_literals(&mut q, f);
    Ok(q.to_string())
}

fn transform_query_literals(q: &mut Query, f: impl Fn(&str) -> String + Copy) {
    walk_query_exprs(q, &mut |e| {
        match e {
            Expr::Literal(Value::Text(s)) => {
                *s = f(s);
            }
            Expr::Like { pattern, .. } => {
                if let Expr::Literal(Value::Text(p)) = pattern.as_mut() {
                    // Preserve wildcard sentinels while transforming content.
                    let inner: String = p.trim_matches('%').to_string();
                    if !inner.is_empty() {
                        let transformed = f(&inner);
                        *p = p.replace(&inner, &transformed);
                    }
                }
            }
            _ => {}
        }
    });
}

/// Call `visit` on every expression of a query, including nested queries.
fn walk_query_exprs(q: &mut Query, visit: &mut impl FnMut(&mut Expr)) {
    fn walk_set(se: &mut SetExpr, visit: &mut impl FnMut(&mut Expr)) {
        match se {
            SetExpr::Select(s) => {
                for item in &mut s.projection {
                    if let SelectItem::Expr { expr, .. } = item {
                        walk_expr(expr, visit);
                    }
                }
                if let Some(from) = &mut s.from {
                    if let TableFactor::Derived { subquery, .. } = &mut from.base {
                        walk_query_exprs_inner(subquery, visit);
                    }
                    for j in &mut from.joins {
                        if let TableFactor::Derived { subquery, .. } = &mut j.factor {
                            walk_query_exprs_inner(subquery, visit);
                        }
                        if let Some(on) = &mut j.on {
                            walk_expr(on, visit);
                        }
                    }
                }
                if let Some(sel) = &mut s.selection {
                    walk_expr(sel, visit);
                }
                for g in &mut s.group_by {
                    walk_expr(g, visit);
                }
                if let Some(h) = &mut s.having {
                    walk_expr(h, visit);
                }
            }
            SetExpr::Nested(q) => walk_query_exprs_inner(q, visit),
            SetExpr::SetOp { left, right, .. } => {
                walk_set(left, visit);
                walk_set(right, visit);
            }
        }
    }
    fn walk_query_exprs_inner(q: &mut Query, visit: &mut impl FnMut(&mut Expr)) {
        walk_set(&mut q.body, visit);
        for item in &mut q.order_by {
            walk_expr(&mut item.expr, visit);
        }
    }
    fn walk_expr(e: &mut Expr, visit: &mut impl FnMut(&mut Expr)) {
        visit(e);
        match e {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                walk_expr(expr, visit)
            }
            Expr::Binary { left, right, .. } => {
                walk_expr(left, visit);
                walk_expr(right, visit);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    walk_expr(a, visit);
                }
            }
            Expr::Case { operand, branches, else_expr } => {
                if let Some(op) = operand {
                    walk_expr(op, visit);
                }
                for (c, r) in branches {
                    walk_expr(c, visit);
                    walk_expr(r, visit);
                }
                if let Some(el) = else_expr {
                    walk_expr(el, visit);
                }
            }
            Expr::InList { expr, list, .. } => {
                walk_expr(expr, visit);
                for i in list {
                    walk_expr(i, visit);
                }
            }
            Expr::InSubquery { expr, query, .. } => {
                walk_expr(expr, visit);
                walk_query_exprs_inner(query, visit);
            }
            Expr::ScalarSubquery(q) => walk_query_exprs_inner(q, visit),
            Expr::Exists { query, .. } => walk_query_exprs_inner(query, visit),
            Expr::Between { expr, low, high, .. } => {
                walk_expr(expr, visit);
                walk_expr(low, visit);
                walk_expr(high, visit);
            }
            Expr::Like { expr, .. } => {
                // Pattern handled by the caller's visit (kept intact here so
                // wildcards survive).
                walk_expr(expr, visit);
            }
            Expr::Column { .. } | Expr::Literal(_) => {}
        }
    }
    walk_query_exprs_inner(q, visit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlengine::database_from_script;

    fn db() -> Database {
        database_from_script(
            "d",
            "CREATE TABLE singer (singer_id INTEGER PRIMARY KEY, name TEXT, country TEXT);
             CREATE TABLE song (song_id INTEGER PRIMARY KEY, singer_id INTEGER REFERENCES singer(singer_id), title TEXT);
             INSERT INTO singer VALUES (1, 'Joe', 'France');
             INSERT INTO song VALUES (1, 1, 'Hello');",
        )
        .unwrap()
    }

    fn map() -> RenameMap {
        let mut m = RenameMap::default();
        m.tables.insert("singer".into(), "vocalist".into());
        m.columns.insert("name".into(), "label".into());
        m
    }

    #[test]
    fn database_rename_updates_schema_and_fks() {
        let renamed = rename_database(&db(), &map());
        assert!(renamed.table("vocalist").is_some());
        assert!(renamed.table("singer").is_none());
        assert!(renamed.table("vocalist").unwrap().schema.column("label").is_some());
        let fk = &renamed.table("song").unwrap().schema.foreign_keys[0];
        assert_eq!(fk.ref_table, "vocalist");
    }

    #[test]
    fn sql_rewrite_is_consistent_and_executable() {
        let renamed = rename_database(&db(), &map());
        let sql = "SELECT T1.name FROM singer AS T1 JOIN song AS T2 ON T1.singer_id = T2.singer_id WHERE T2.title = 'Hello'";
        let rewritten = rewrite_sql(sql, &map()).unwrap();
        assert!(rewritten.contains("vocalist"));
        assert!(rewritten.contains("label"));
        let r = sqlengine::execute_query(&renamed, &rewritten).unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn unqualified_columns_renamed() {
        let out = rewrite_sql("SELECT name FROM singer WHERE name = 'Joe'", &map()).unwrap();
        assert_eq!(out, "SELECT label FROM vocalist WHERE label = 'Joe'");
    }

    #[test]
    fn aliases_pass_through() {
        let out = rewrite_sql("SELECT T1.country FROM singer AS T1", &map()).unwrap();
        assert!(out.contains("T1.country"));
    }

    #[test]
    fn value_transformation_keeps_gold_aligned() {
        let base = db();
        let upper = transform_text_values(&base, |s| s.to_uppercase());
        let gold = "SELECT name FROM singer WHERE country = 'France'";
        let new_gold = transform_sql_text_literals(gold, |s| s.to_uppercase()).unwrap();
        assert!(new_gold.contains("'FRANCE'"));
        let r = sqlengine::execute_query(&upper, &new_gold).unwrap();
        assert_eq!(r.rows.len(), 1);
        // The untouched gold no longer matches the transformed database.
        let stale = sqlengine::execute_query(&upper, gold).unwrap();
        assert_eq!(stale.rows.len(), 0);
    }

    #[test]
    fn like_wildcards_survive_transformation() {
        let out = transform_sql_text_literals(
            "SELECT name FROM singer WHERE title LIKE '%Hello%'",
            |s| s.to_uppercase(),
        )
        .unwrap();
        assert!(out.contains("'%HELLO%'"), "{out}");
    }
}
