//! The SQL/question template catalog.
//!
//! §7 of the paper extracts 75 common SQL templates from Spider and pairs
//! each with several question templates. This module implements that
//! catalog as executable generators: 40 SQL shapes, each with 2–3 question
//! phrasings (≈90 question templates), spanning Spider's four hardness
//! levels. Every instantiation is validated by executing the gold SQL
//! against the database.

use rand::rngs::StdRng;
use rand::RngExt;

use sqlengine::{Column, Database, Table, Value};

use crate::lexicon;
use crate::sample::{render_question, Hardness, QPart, Sample, ValueMention};
use crate::synth::column_nl;

/// Number of SQL templates in the catalog.
pub const TEMPLATE_COUNT: usize = 41;

/// Hardness of each template id.
pub fn template_hardness(id: usize) -> Hardness {
    match id {
        0..=9 | 40 => Hardness::Easy,
        10..=22 => Hardness::Medium,
        23..=32 => Hardness::Hard,
        _ => Hardness::Extra,
    }
}

/// Generate `n` validated samples over `db`, drawing templates uniformly.
/// `bird` switches on alias-coded value mentions and external knowledge.
pub fn generate_samples(db: &Database, n: usize, rng: &mut StdRng, bird: bool) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 30 {
        attempts += 1;
        let id = rng.random_range(0..TEMPLATE_COUNT);
        if let Some(sample) = instantiate(id, db, rng, bird) {
            if sqlengine::execute_query(db, &sample.sql).is_ok() {
                out.push(sample);
            }
        }
    }
    out
}

/// Instantiate one template against a database. Returns `None` when the
/// schema cannot satisfy the template's needs (no FK pair, no numeric
/// column, ...).
pub fn instantiate(id: usize, db: &Database, rng: &mut StdRng, bird: bool) -> Option<Sample> {
    let mut b = Builder::new(db, rng, id, bird);
    let ok = b.build(id)?;
    debug_assert!(ok);
    Some(b.finish())
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

struct Builder<'a> {
    db: &'a Database,
    rng: &'a mut StdRng,
    template_id: usize,
    bird: bool,
    parts: Vec<QPart>,
    sql: String,
    used_tables: Vec<String>,
    used_columns: Vec<(String, String)>,
    value_mentions: Vec<ValueMention>,
    knowledge: Vec<String>,
}

impl<'a> Builder<'a> {
    fn new(db: &'a Database, rng: &'a mut StdRng, template_id: usize, bird: bool) -> Builder<'a> {
        Builder {
            db,
            rng,
            template_id,
            bird,
            parts: Vec::new(),
            sql: String::new(),
            used_tables: Vec::new(),
            used_columns: Vec::new(),
            value_mentions: Vec::new(),
            knowledge: Vec::new(),
        }
    }

    fn finish(self) -> Sample {
        let question = render_question(&self.parts);
        let external_knowledge = if self.knowledge.is_empty() {
            None
        } else {
            Some(self.knowledge.join("; "))
        };
        Sample {
            db_id: self.db.name.clone(),
            question,
            question_parts: self.parts,
            sql: self.sql,
            template_id: self.template_id,
            hardness: template_hardness(self.template_id),
            used_tables: self.used_tables,
            used_columns: self.used_columns,
            value_mentions: self.value_mentions,
            external_knowledge,
        }
    }

    // -- bookkeeping ---------------------------------------------------------

    fn use_table(&mut self, t: &str) {
        if !self.used_tables.iter().any(|x| x == t) {
            self.used_tables.push(t.to_string());
        }
    }

    fn use_column(&mut self, t: &str, c: &str) {
        self.use_table(t);
        if !self.used_columns.iter().any(|(a, b)| a == t && b == c) {
            self.used_columns.push((t.to_string(), c.to_string()));
        }
    }

    // -- random pickers -------------------------------------------------------

    fn pick<'t, T>(&mut self, items: &'t [T]) -> Option<&'t T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.rng.random_range(0..items.len())])
        }
    }

    fn coin(&mut self, k: usize) -> usize {
        self.rng.random_range(0..k)
    }

    fn any_table(&mut self) -> Option<&'a Table> {
        let candidates: Vec<&Table> = self.db.tables.iter().filter(|t| !t.rows.is_empty()).collect();
        self.pick(&candidates).copied()
    }

    /// A non-key numeric column of `t` (not PK, not FK).
    fn numeric_col(&mut self, t: &'a Table) -> Option<&'a Column> {
        let fk_cols: Vec<&str> = t.schema.foreign_keys.iter().map(|f| f.column.as_str()).collect();
        let candidates: Vec<&Column> = t
            .schema
            .columns
            .iter()
            .filter(|c| c.data_type.is_numeric() && !c.primary_key && !fk_cols.contains(&c.name.as_str()))
            .collect();
        self.pick(&candidates).copied()
    }

    /// A text column of `t` with at least one non-null value.
    fn text_col(&mut self, t: &'a Table) -> Option<&'a Column> {
        let candidates: Vec<&Column> = t
            .schema
            .columns
            .iter()
            .filter(|c| {
                c.data_type == sqlengine::DataType::Text
                    && !t.representative_values(&c.name, 1).is_empty()
            })
            .collect();
        self.pick(&candidates).copied()
    }

    /// Any non-PK "content" column (text or numeric, not a key).
    fn content_col(&mut self, t: &'a Table) -> Option<&'a Column> {
        let fk_cols: Vec<&str> = t.schema.foreign_keys.iter().map(|f| f.column.as_str()).collect();
        let candidates: Vec<&Column> = t
            .schema
            .columns
            .iter()
            .filter(|c| !c.primary_key && !fk_cols.contains(&c.name.as_str()))
            .collect();
        self.pick(&candidates).copied()
    }

    /// A second content column different from `other`.
    fn content_col_not(&mut self, t: &'a Table, other: &str) -> Option<&'a Column> {
        let fk_cols: Vec<&str> = t.schema.foreign_keys.iter().map(|f| f.column.as_str()).collect();
        let candidates: Vec<&Column> = t
            .schema
            .columns
            .iter()
            .filter(|c| !c.primary_key && !fk_cols.contains(&c.name.as_str()) && c.name != other)
            .collect();
        self.pick(&candidates).copied()
    }

    /// A random FK edge: (child table, fk column, parent table, parent pk).
    fn fk_edge(&mut self) -> Option<(String, String, String, String)> {
        let edges = self.db.foreign_keys();
        let (child, fk) = self.pick(&edges)?.clone();
        // Child must have rows for joins to be interesting.
        if self.db.table(&child).map(|t| t.rows.is_empty()).unwrap_or(true) {
            return None;
        }
        Some((child, fk.column, fk.ref_table, fk.ref_column))
    }

    /// Sample a concrete text value of `t.c`.
    fn text_value(&mut self, t: &Table, c: &str) -> Option<String> {
        let values = t.representative_values(c, 50);
        let v = self.pick(&values)?;
        match v {
            Value::Text(s) => Some(s.trim().to_string()),
            other => Some(other.render()),
        }
    }

    /// Sample a numeric threshold near the column's median.
    fn numeric_threshold(&mut self, t: &Table, c: &str) -> Option<Value> {
        let idx = t.schema.column_index(c)?;
        let mut vals: Vec<f64> = t.rows.iter().filter_map(|r| r[idx].as_f64()).collect();
        if vals.is_empty() {
            return None;
        }
        vals.sort_by(|a, b| a.total_cmp(b));
        let pos = self.rng.random_range(vals.len() / 4..=(3 * vals.len() / 4).min(vals.len() - 1));
        let v = vals[pos];
        Some(match t.schema.columns[idx].data_type {
            sqlengine::DataType::Integer => Value::Integer(v as i64),
            _ => Value::Real((v * 100.0).round() / 100.0),
        })
    }

    // -- question-part helpers -------------------------------------------------

    fn lit(&mut self, s: &str) {
        self.parts.push(QPart::lit(s));
    }

    fn table_part(&mut self, t: &str, plural: bool) {
        let base = crate::synth::table_nl(t);
        let mut nl = if plural { pluralize(&base) } else { base };
        // See column_part: BIRD questions drift far from schema vocabulary,
        // Spider questions only occasionally.
        let p = if self.bird { 0.35 } else { 0.10 };
        nl = crate::perturb::synonymize_words(&nl, self.rng, p);
        self.parts.push(QPart::Table { name: t.to_string(), nl });
        self.use_table(t);
    }

    fn column_part(&mut self, t: &str, c: &str) {
        let mut nl = column_nl(self.db, t, c);
        // BIRD users phrase questions freely rather than quoting the column
        // comment: paraphrase the surface (synonyms, dropped qualifiers) so
        // schema linking is genuinely ambiguous, as in the real benchmark.
        if self.bird {
            nl = crate::perturb::synonymize_words(&nl, self.rng, 0.5);
        } else {
            // Even clean-benchmark users drift from schema vocabulary
            // occasionally (Spider annotators paraphrase).
            nl = crate::perturb::synonymize_words(&nl, self.rng, 0.12);
        }
        if self.bird {
            let word_count = nl.split_whitespace().count();
            if word_count > 2 && self.rng.random_range(0..2) == 0 {
                let drop = self.rng.random_range(0..word_count);
                nl = nl
                    .split_whitespace()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, w)| w)
                    .collect::<Vec<_>>()
                    .join(" ");
            }
        }
        self.parts.push(QPart::Column { table: t.to_string(), column: c.to_string(), nl });
        self.use_column(t, c);
        self.maybe_column_knowledge(t, c);
    }

    /// Mention a text value; in BIRD mode, often by a form that needs
    /// external knowledge to resolve — a natural-language alias ("women"
    /// for 'F') or a degraded partial mention ("praha" for 'Praha
    /// University'). The EK records the exact stored value, reproducing
    /// BIRD's dirty-value/knowledge-gap characteristic.
    fn value_part(&mut self, t: &str, c: &str, value: &str) {
        let mut text = format!("'{value}'");
        if self.bird {
            if let Some(alias) = lexicon::value_alias(value) {
                if self.coin(3) != 0 {
                    text = alias.to_string();
                    self.knowledge
                        .push(format!("{alias} refers to {t}.{c} = '{value}'"));
                }
            } else if value.split_whitespace().count() > 1 && self.coin(2) == 0 {
                let first = value.split_whitespace().next().unwrap().to_lowercase();
                if first.len() >= 4 {
                    text = first.clone();
                    self.knowledge
                        .push(format!("{first} refers to {t}.{c} = '{value}'"));
                }
            }
        }
        self.parts.push(QPart::ValueRef {
            table: t.to_string(),
            column: c.to_string(),
            text: text.clone(),
        });
        self.value_mentions.push(ValueMention {
            table: t.to_string(),
            column: c.to_string(),
            text,
        });
        self.use_column(t, c);
    }

    fn number_part(&mut self, v: &Value) {
        self.parts.push(QPart::Number { text: v.render() });
    }

    fn agg_part(&mut self, agg: &str) {
        let nl = match agg {
            "AVG" => "average",
            "SUM" => "total",
            "MAX" => "maximum",
            "MIN" => "minimum",
            _ => "number of",
        };
        self.parts.push(QPart::AggWord { agg: agg.to_string(), nl: nl.to_string() });
    }

    fn op_part(&mut self, op: &str) {
        let choices: &[&str] = match op {
            ">" => &["more than", "greater than", "over"],
            "<" => &["less than", "below", "under"],
            ">=" => &["at least", "no less than"],
            "<=" => &["at most", "no more than"],
            _ => &["equal to"],
        };
        let nl = choices[self.coin(choices.len())].to_string();
        self.parts.push(QPart::OpWord { op: op.to_string(), nl });
    }

    /// Record external knowledge explaining an ambiguous (commented) column
    /// when in BIRD mode. BIRD attaches EK to a large share of its samples,
    /// so most uses of a commented column come with the hint.
    fn maybe_column_knowledge(&mut self, t: &str, c: &str) {
        if !self.bird {
            return;
        }
        if let Some(col) = self.db.table(t).and_then(|tb| tb.schema.column(c)) {
            if let Some(comment) = &col.comment {
                if self.coin(4) != 0 {
                    self.knowledge.push(format!("{comment} is stored in {t}.{c}"));
                }
            }
        }
    }

    // -- the catalog -----------------------------------------------------------

    /// Build the question parts and SQL for template `id`. Returns `None`
    /// when the database cannot satisfy the template.
    fn build(&mut self, id: usize) -> Option<bool> {
        match id {
            // -------------------------------------------------- easy
            0 => {
                // SELECT COUNT(*) FROM T
                let t = self.any_table()?;
                match self.coin(3) {
                    0 => self.lit("how many"),
                    1 => self.lit("count the number of"),
                    _ => self.lit("what is the total number of"),
                }
                self.table_part(&t.schema.name, true);
                if self.parts[0].surface() == "how many" {
                    self.lit("are there");
                }
                self.sql = format!("SELECT COUNT(*) FROM {}", t.schema.name);
            }
            1 => {
                // SELECT C FROM T
                let t = self.any_table()?;
                let c = self.content_col(t)?;
                match self.coin(3) {
                    0 => self.lit("show the"),
                    1 => self.lit("list the"),
                    _ => self.lit("what is the"),
                }
                self.column_part(&t.schema.name, &c.name);
                self.lit("of all");
                self.table_part(&t.schema.name, true);
                self.maybe_column_knowledge(&t.schema.name, &c.name);
                self.sql = format!("SELECT {} FROM {}", c.name, t.schema.name);
            }
            2 => {
                // SELECT C1, C2 FROM T
                let t = self.any_table()?;
                let c1 = self.content_col(t)?;
                let c2 = self.content_col_not(t, &c1.name)?;
                match self.coin(2) {
                    0 => self.lit("what are the"),
                    _ => self.lit("give the"),
                }
                self.column_part(&t.schema.name, &c1.name);
                self.lit("and");
                self.column_part(&t.schema.name, &c2.name);
                self.lit("of every");
                self.table_part(&t.schema.name, false);
                self.sql = format!("SELECT {}, {} FROM {}", c1.name, c2.name, t.schema.name);
            }
            3 => {
                // SELECT * FROM T
                let t = self.any_table()?;
                match self.coin(2) {
                    0 => self.lit("show all information about each"),
                    _ => self.lit("return every detail of the"),
                }
                self.table_part(&t.schema.name, false);
                self.sql = format!("SELECT * FROM {}", t.schema.name);
            }
            4 => {
                // SELECT DISTINCT C FROM T
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                match self.coin(2) {
                    0 => self.lit("list the distinct"),
                    _ => self.lit("what are the different"),
                }
                self.column_part(&t.schema.name, &c.name);
                self.lit("of the");
                self.table_part(&t.schema.name, true);
                self.sql = format!("SELECT DISTINCT {} FROM {}", c.name, t.schema.name);
            }
            5 => {
                // SELECT C FROM T WHERE Cv = 'V'
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let c = self.content_col_not(t, &cv.name)?;
                let v = self.text_value(t, &cv.name)?;
                match self.coin(2) {
                    0 => self.lit("what is the"),
                    _ => self.lit("find the"),
                }
                self.column_part(&t.schema.name, &c.name);
                self.lit("of the");
                self.table_part(&t.schema.name, false);
                self.lit("whose");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("is");
                self.value_part(&t.schema.name, &cv.name, &v);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} = '{}'",
                    c.name,
                    t.schema.name,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            6 => {
                // SELECT C FROM T WHERE Cn > V
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let v = self.numeric_threshold(t, &cn.name)?;
                let op = *["<", ">"].get(self.coin(2)).unwrap();
                self.lit("show the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("with");
                self.column_part(&t.schema.name, &cn.name);
                self.op_part(op);
                self.number_part(&v);
                self.maybe_column_knowledge(&t.schema.name, &cn.name);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} {} {}",
                    c.name,
                    t.schema.name,
                    cn.name,
                    op,
                    v.render()
                );
            }
            7 => {
                // SELECT COUNT(*) FROM T WHERE Cv = 'V'
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let v = self.text_value(t, &cv.name)?;
                self.lit("how many");
                self.table_part(&t.schema.name, true);
                self.lit("have");
                self.column_part(&t.schema.name, &cv.name);
                self.value_part(&t.schema.name, &cv.name, &v);
                self.sql = format!(
                    "SELECT COUNT(*) FROM {} WHERE {} = '{}'",
                    t.schema.name,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            8 => {
                // SELECT AGG(Cn) FROM T
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let agg = *["AVG", "SUM", "MAX", "MIN"].get(self.coin(4)).unwrap();
                self.lit("what is the");
                self.agg_part(agg);
                self.column_part(&t.schema.name, &cn.name);
                self.lit("of all");
                self.table_part(&t.schema.name, true);
                self.maybe_column_knowledge(&t.schema.name, &cn.name);
                self.sql = format!("SELECT {agg}({}) FROM {}", cn.name, t.schema.name);
            }
            9 => {
                // SELECT C FROM T ORDER BY Cn DESC LIMIT 1 (argmax)
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let desc = self.coin(2) == 0;
                self.lit("what is the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of the");
                self.table_part(&t.schema.name, false);
                self.lit(if desc { "with the highest" } else { "with the lowest" });
                self.column_part(&t.schema.name, &cn.name);
                self.sql = format!(
                    "SELECT {} FROM {} ORDER BY {} {} LIMIT 1",
                    c.name,
                    t.schema.name,
                    cn.name,
                    if desc { "DESC" } else { "ASC" }
                );
            }
            // -------------------------------------------------- medium
            10 => {
                // SELECT AGG(Cn) FROM T WHERE Cv = 'V'
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let cv = self.text_col(t)?;
                if cv.name == cn.name {
                    return None;
                }
                let v = self.text_value(t, &cv.name)?;
                let agg = *["AVG", "SUM", "MAX", "MIN"].get(self.coin(4)).unwrap();
                self.lit("what is the");
                self.agg_part(agg);
                self.column_part(&t.schema.name, &cn.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("whose");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("is");
                self.value_part(&t.schema.name, &cv.name, &v);
                self.sql = format!(
                    "SELECT {agg}({}) FROM {} WHERE {} = '{}'",
                    cn.name,
                    t.schema.name,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            11 => {
                // SELECT C FROM T WHERE Cv = 'V' AND Cn > V2
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col(t)?;
                let v = self.text_value(t, &cv.name)?;
                let v2 = self.numeric_threshold(t, &cn.name)?;
                let op = *["<", ">"].get(self.coin(2)).unwrap();
                self.lit("find the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("whose");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("is");
                self.value_part(&t.schema.name, &cv.name, &v);
                self.lit("and whose");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("is");
                self.op_part(op);
                self.number_part(&v2);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} = '{}' AND {} {} {}",
                    c.name,
                    t.schema.name,
                    cv.name,
                    v.replace('\'', "''"),
                    cn.name,
                    op,
                    v2.render()
                );
            }
            12 => {
                // SELECT C, COUNT(*) FROM T GROUP BY C
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                match self.coin(2) {
                    0 => self.lit("for each"),
                    _ => self.lit("per"),
                }
                self.column_part(&t.schema.name, &c.name);
                self.lit(", how many");
                self.table_part(&t.schema.name, true);
                self.lit("are there");
                self.sql = format!(
                    "SELECT {}, COUNT(*) FROM {} GROUP BY {}",
                    c.name, t.schema.name, c.name
                );
            }
            13 => {
                // SELECT C, AGG(Cn) FROM T GROUP BY C
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                let cn = self.numeric_col(t)?;
                if c.name == cn.name {
                    return None;
                }
                let agg = *["AVG", "SUM", "MAX", "MIN"].get(self.coin(4)).unwrap();
                self.lit("show each");
                self.column_part(&t.schema.name, &c.name);
                self.lit("and the");
                self.agg_part(agg);
                self.column_part(&t.schema.name, &cn.name);
                self.lit("of its");
                self.table_part(&t.schema.name, true);
                self.sql = format!(
                    "SELECT {}, {agg}({}) FROM {} GROUP BY {}",
                    c.name, cn.name, t.schema.name, c.name
                );
            }
            14 => {
                // SELECT C FROM T GROUP BY C HAVING COUNT(*) >= N
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                let n = Value::Integer(self.rng.random_range(2..=4));
                self.lit("which");
                self.column_part(&t.schema.name, &c.name);
                self.lit("values appear in");
                self.op_part(">=");
                self.number_part(&n);
                self.table_part(&t.schema.name, true);
                self.sql = format!(
                    "SELECT {} FROM {} GROUP BY {} HAVING COUNT(*) >= {}",
                    c.name,
                    t.schema.name,
                    c.name,
                    n.render()
                );
            }
            15 => {
                // argmax group: SELECT C FROM T GROUP BY C ORDER BY COUNT(*) DESC LIMIT 1
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                match self.coin(2) {
                    0 => self.lit("which"),
                    _ => self.lit("what"),
                }
                self.column_part(&t.schema.name, &c.name);
                self.lit("is most common among");
                self.table_part(&t.schema.name, true);
                self.sql = format!(
                    "SELECT {} FROM {} GROUP BY {} ORDER BY COUNT(*) DESC LIMIT 1",
                    c.name, t.schema.name, c.name
                );
            }
            16 => {
                // SELECT C FROM T ORDER BY Cn ASC LIMIT N
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let n = Value::Integer(self.rng.random_range(2..=5));
                let desc = self.coin(2) == 0;
                self.lit("list the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of the");
                self.number_part(&n);
                self.table_part(&t.schema.name, true);
                self.lit(if desc { "with the highest" } else { "with the lowest" });
                self.column_part(&t.schema.name, &cn.name);
                self.sql = format!(
                    "SELECT {} FROM {} ORDER BY {} {} LIMIT {}",
                    c.name,
                    t.schema.name,
                    cn.name,
                    if desc { "DESC" } else { "ASC" },
                    n.render()
                );
            }
            17 => {
                // SELECT COUNT(DISTINCT C) FROM T
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                self.lit("how many different");
                self.column_part(&t.schema.name, &c.name);
                self.lit("values are present among");
                self.table_part(&t.schema.name, true);
                self.sql = format!("SELECT COUNT(DISTINCT {}) FROM {}", c.name, t.schema.name);
            }
            18 => {
                // BETWEEN
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let lo = self.numeric_threshold(t, &cn.name)?;
                let hi = lo.add(&Value::Integer(self.rng.random_range(2..=20))).ok()?;
                self.lit("show the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("whose");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("is between");
                self.number_part(&lo);
                self.lit("and");
                self.number_part(&hi);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} BETWEEN {} AND {}",
                    c.name,
                    t.schema.name,
                    cn.name,
                    lo.render(),
                    hi.render()
                );
            }
            19 => {
                // LIKE
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let c = self.content_col(t)?;
                let v = self.text_value(t, &cv.name)?;
                let needle: String = v.split_whitespace().next()?.to_string();
                if needle.len() < 3 {
                    return None;
                }
                self.lit("which");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("have a");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("containing");
                self.value_part(&t.schema.name, &cv.name, &needle);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} LIKE '%{}%'",
                    c.name,
                    t.schema.name,
                    cv.name,
                    needle.replace('\'', "''")
                );
            }
            20 => {
                // IS NULL / IS NOT NULL count
                let t = self.any_table()?;
                let c = self.content_col(t)?;
                let negated = self.coin(2) == 0;
                self.lit("how many");
                self.table_part(&t.schema.name, true);
                self.lit(if negated { "have a known" } else { "are missing a" });
                self.column_part(&t.schema.name, &c.name);
                self.sql = format!(
                    "SELECT COUNT(*) FROM {} WHERE {} IS {}NULL",
                    t.schema.name,
                    c.name,
                    if negated { "NOT " } else { "" }
                );
            }
            21 => {
                // join select: SELECT child.C FROM child JOIN parent ON fk WHERE parent.Cv = 'V'
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let child_t = self.db.table(&child)?;
                let parent_t = self.db.table(&parent)?;
                let c = self.content_col(child_t)?;
                let cv = self.text_col(parent_t)?;
                let v = self.text_value(parent_t, &cv.name)?;
                self.lit("show the");
                self.column_part(&child, &c.name);
                self.lit("of");
                self.table_part(&child, true);
                self.lit("whose");
                self.table_part(&parent, false);
                self.lit("has");
                self.column_part(&parent, &cv.name);
                self.value_part(&parent, &cv.name, &v);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT T1.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                    c.name,
                    child,
                    parent,
                    fk,
                    ppk,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            22 => {
                // join count
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let parent_t = self.db.table(&parent)?;
                let cv = self.text_col(parent_t)?;
                let v = self.text_value(parent_t, &cv.name)?;
                self.lit("how many");
                self.table_part(&child, true);
                self.lit("belong to the");
                self.table_part(&parent, false);
                self.lit("whose");
                self.column_part(&parent, &cv.name);
                self.lit("is");
                self.value_part(&parent, &cv.name, &v);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT COUNT(*) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                    child,
                    parent,
                    fk,
                    ppk,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            // -------------------------------------------------- hard
            23 => {
                // join group count: per parent label, count children
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let parent_t = self.db.table(&parent)?;
                let label = self.text_col(parent_t)?;
                self.lit("for each");
                self.column_part(&parent, &label.name);
                self.lit("of the");
                self.table_part(&parent, true);
                self.lit(", count the");
                self.table_part(&child, true);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT T2.{}, COUNT(*) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} GROUP BY T2.{}",
                    label.name, child, parent, fk, ppk, label.name
                );
            }
            24 => {
                // join group argmax
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let parent_t = self.db.table(&parent)?;
                let label = self.text_col(parent_t)?;
                self.lit("which");
                self.column_part(&parent, &label.name);
                self.lit("of the");
                self.table_part(&parent, true);
                self.lit("has the most");
                self.table_part(&child, true);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT T2.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} GROUP BY T2.{} ORDER BY COUNT(*) DESC LIMIT 1",
                    label.name, child, parent, fk, ppk, label.name
                );
            }
            25 => {
                // join agg with filter
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let child_t = self.db.table(&child)?;
                let parent_t = self.db.table(&parent)?;
                let cn = self.numeric_col(child_t)?;
                let cv = self.text_col(parent_t)?;
                let v = self.text_value(parent_t, &cv.name)?;
                let agg = *["AVG", "SUM", "MAX"].get(self.coin(3)).unwrap();
                self.lit("what is the");
                self.agg_part(agg);
                self.column_part(&child, &cn.name);
                self.lit("of");
                self.table_part(&child, true);
                self.lit("in the");
                self.table_part(&parent, false);
                self.lit("whose");
                self.column_part(&parent, &cv.name);
                self.lit("is");
                self.value_part(&parent, &cv.name, &v);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT {agg}(T1.{}) FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} WHERE T2.{} = '{}'",
                    cn.name,
                    child,
                    parent,
                    fk,
                    ppk,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            26 => {
                // WHERE Cn > (SELECT AVG(Cn) FROM T)
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                self.lit("show the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("with above-average");
                self.column_part(&t.schema.name, &cn.name);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} > (SELECT AVG({}) FROM {})",
                    c.name, t.schema.name, cn.name, cn.name, t.schema.name
                );
            }
            27 => {
                // IN subquery
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let child_t = self.db.table(&child)?;
                let parent_t = self.db.table(&parent)?;
                let label = self.content_col(parent_t)?;
                let cn = self.numeric_col(child_t)?;
                let v = self.numeric_threshold(child_t, &cn.name)?;
                self.lit("find the");
                self.column_part(&parent, &label.name);
                self.lit("of");
                self.table_part(&parent, true);
                self.lit("that have");
                self.table_part(&child, true);
                self.lit("with");
                self.column_part(&child, &cn.name);
                self.op_part(">");
                self.number_part(&v);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} WHERE {} > {})",
                    label.name,
                    parent,
                    ppk,
                    fk,
                    child,
                    cn.name,
                    v.render()
                );
            }
            28 => {
                // NOT IN subquery
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let parent_t = self.db.table(&parent)?;
                let label = self.content_col(parent_t)?;
                self.lit("which");
                self.column_part(&parent, &label.name);
                self.lit("of");
                self.table_part(&parent, true);
                self.lit("have no");
                self.table_part(&child, true);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} NOT IN (SELECT {} FROM {} WHERE {} IS NOT NULL)",
                    label.name, parent, ppk, fk, child, fk
                );
            }
            29 => {
                // OR condition over two values
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let c = self.content_col_not(t, &cv.name)?;
                let values = t.representative_values(&cv.name, 10);
                if values.len() < 2 {
                    return None;
                }
                let v1 = values[self.coin(values.len())].render();
                let v2 = values
                    .iter()
                    .map(|v| v.render())
                    .find(|v| *v != v1)?;
                self.lit("show the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("whose");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("is either");
                self.value_part(&t.schema.name, &cv.name, v1.trim());
                self.lit("or");
                self.value_part(&t.schema.name, &cv.name, v2.trim());
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} = '{}' OR {} = '{}'",
                    c.name,
                    t.schema.name,
                    cv.name,
                    v1.trim().replace('\'', "''"),
                    cv.name,
                    v2.trim().replace('\'', "''")
                );
            }
            30 => {
                // two columns ordered by numeric desc
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                self.lit("list the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("and");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("of all");
                self.table_part(&t.schema.name, true);
                self.lit("sorted by");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("in descending order");
                self.sql = format!(
                    "SELECT {}, {} FROM {} ORDER BY {} DESC",
                    c.name, cn.name, t.schema.name, cn.name
                );
            }
            31 => {
                // HAVING over aggregate of numeric
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                let cn = self.numeric_col(t)?;
                if c.name == cn.name {
                    return None;
                }
                let v = self.numeric_threshold(t, &cn.name)?;
                self.lit("which");
                self.column_part(&t.schema.name, &c.name);
                self.lit("groups of");
                self.table_part(&t.schema.name, true);
                self.lit("have an average");
                self.column_part(&t.schema.name, &cn.name);
                self.op_part(">");
                self.number_part(&v);
                self.sql = format!(
                    "SELECT {} FROM {} GROUP BY {} HAVING AVG({}) > {}",
                    c.name,
                    t.schema.name,
                    c.name,
                    cn.name,
                    v.render()
                );
            }
            32 => {
                // count + group + order full
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                self.lit("count the");
                self.table_part(&t.schema.name, true);
                self.lit("per");
                self.column_part(&t.schema.name, &c.name);
                self.lit(", most numerous first");
                self.sql = format!(
                    "SELECT {}, COUNT(*) FROM {} GROUP BY {} ORDER BY COUNT(*) DESC",
                    c.name, t.schema.name, c.name
                );
            }
            // -------------------------------------------------- extra
            33 => {
                // UNION of two value filters
                let t = self.any_table()?;
                let cv = self.text_col(t)?;
                let c = self.content_col_not(t, &cv.name)?;
                let cn = self.numeric_col(t)?;
                let v = self.text_value(t, &cv.name)?;
                let thr = self.numeric_threshold(t, &cn.name)?;
                self.lit("show the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of");
                self.table_part(&t.schema.name, true);
                self.lit("whose");
                self.column_part(&t.schema.name, &cv.name);
                self.lit("is");
                self.value_part(&t.schema.name, &cv.name, &v);
                self.lit("or whose");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("is");
                self.op_part(">");
                self.number_part(&thr);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} = '{}' UNION SELECT {} FROM {} WHERE {} > {}",
                    c.name,
                    t.schema.name,
                    cv.name,
                    v.replace('\'', "''"),
                    c.name,
                    t.schema.name,
                    cn.name,
                    thr.render()
                );
            }
            34 => {
                // INTERSECT of two numeric filters
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let lo = self.numeric_threshold(t, &cn.name)?;
                let hi = lo.add(&Value::Integer(self.rng.random_range(3..=25))).ok()?;
                self.lit("which");
                self.column_part(&t.schema.name, &c.name);
                self.lit("values belong to");
                self.table_part(&t.schema.name, true);
                self.lit("with");
                self.column_part(&t.schema.name, &cn.name);
                self.lit("above");
                self.number_part(&lo);
                self.lit("and also below");
                self.number_part(&hi);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} > {} INTERSECT SELECT {} FROM {} WHERE {} < {}",
                    c.name,
                    t.schema.name,
                    cn.name,
                    lo.render(),
                    c.name,
                    t.schema.name,
                    cn.name,
                    hi.render()
                );
            }
            35 => {
                // EXCEPT: parents without children
                let (child, fk, parent, ppk) = self.fk_edge()?;
                self.lit("list the");
                self.column_part(&parent, &ppk);
                self.lit("of");
                self.table_part(&parent, true);
                self.lit("that do not appear in any");
                self.table_part(&child, false);
                self.use_column(&child, &fk);
                self.sql = format!(
                    "SELECT {} FROM {} EXCEPT SELECT {} FROM {}",
                    ppk, parent, fk, child
                );
            }
            36 => {
                // IN subquery with GROUP BY/HAVING
                let (child, fk, parent, ppk) = self.fk_edge()?;
                let parent_t = self.db.table(&parent)?;
                let label = self.content_col(parent_t)?;
                let n = Value::Integer(self.rng.random_range(2..=3));
                self.lit("find the");
                self.column_part(&parent, &label.name);
                self.lit("of");
                self.table_part(&parent, true);
                self.lit("with");
                self.op_part(">");
                self.number_part(&n);
                self.table_part(&child, true);
                self.use_column(&child, &fk);
                self.use_column(&parent, &ppk);
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} IN (SELECT {} FROM {} GROUP BY {} HAVING COUNT(*) > {})",
                    label.name,
                    parent,
                    ppk,
                    fk,
                    child,
                    fk,
                    n.render()
                );
            }
            37 => {
                // two-hop join (3 tables) when available
                let edges = self.db.foreign_keys();
                // Find child with two FKs to different parents (a link table).
                // (link table, (fk1, parent1), (fk2, parent2), (pk1, pk2))
                type TwoHop = (String, (String, String), (String, String), (String, String));
                let mut link: Option<TwoHop> = None;
                for t in &self.db.tables {
                    let fks = &t.schema.foreign_keys;
                    if fks.len() >= 2 && fks[0].ref_table != fks[1].ref_table {
                        link = Some((
                            t.schema.name.clone(),
                            (fks[0].column.clone(), fks[0].ref_table.clone()),
                            (fks[1].column.clone(), fks[1].ref_table.clone()),
                            (fks[0].ref_column.clone(), fks[1].ref_column.clone()),
                        ));
                        break;
                    }
                }
                let _ = edges;
                let (link_t, (fk1, p1), (fk2, p2), (pk1, pk2)) = link?;
                let p2_t = self.db.table(&p2)?;
                let label1 = self.content_col(self.db.table(&p1)?)?;
                let cv = self.text_col(p2_t)?;
                let v = self.text_value(p2_t, &cv.name)?;
                self.lit("show the");
                self.column_part(&p1, &label1.name);
                self.lit("of");
                self.table_part(&p1, true);
                self.lit("linked through");
                self.table_part(&link_t, true);
                self.lit("to the");
                self.table_part(&p2, false);
                self.lit("whose");
                self.column_part(&p2, &cv.name);
                self.lit("is");
                self.value_part(&p2, &cv.name, &v);
                self.use_column(&link_t, &fk1);
                self.use_column(&link_t, &fk2);
                self.use_column(&p1, &pk1);
                self.use_column(&p2, &pk2);
                self.sql = format!(
                    "SELECT DISTINCT T2.{} FROM {} AS T1 JOIN {} AS T2 ON T1.{} = T2.{} JOIN {} AS T3 ON T1.{} = T3.{} WHERE T3.{} = '{}'",
                    label1.name,
                    link_t,
                    p1,
                    fk1,
                    pk1,
                    p2,
                    fk2,
                    pk2,
                    cv.name,
                    v.replace('\'', "''")
                );
            }
            38 => {
                // argmin via scalar subquery
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let c = self.content_col_not(t, &cn.name)?;
                let use_min = self.coin(2) == 0;
                self.lit("what is the");
                self.column_part(&t.schema.name, &c.name);
                self.lit("of the");
                self.table_part(&t.schema.name, false);
                self.lit(if use_min { "whose" } else { "that has the" });
                self.column_part(&t.schema.name, &cn.name);
                self.lit(if use_min { "equals the minimum" } else { "equal to the maximum" });
                let f = if use_min { "MIN" } else { "MAX" };
                self.sql = format!(
                    "SELECT {} FROM {} WHERE {} = (SELECT {f}({}) FROM {})",
                    c.name, t.schema.name, cn.name, cn.name, t.schema.name
                );
            }
            39 => {
                // filtered group argmax
                let t = self.any_table()?;
                let c = self.text_col(t)?;
                let cn = self.numeric_col(t)?;
                if c.name == cn.name {
                    return None;
                }
                let v = self.numeric_threshold(t, &cn.name)?;
                self.lit("among");
                self.table_part(&t.schema.name, true);
                self.lit("with");
                self.column_part(&t.schema.name, &cn.name);
                self.op_part(">");
                self.number_part(&v);
                self.lit(", count them per");
                self.column_part(&t.schema.name, &c.name);
                self.lit("from most to least");
                self.sql = format!(
                    "SELECT {}, COUNT(*) FROM {} WHERE {} > {} GROUP BY {} ORDER BY COUNT(*) DESC",
                    c.name,
                    t.schema.name,
                    cn.name,
                    v.render(),
                    c.name
                );
            }
            40 => {
                // SELECT COUNT(*) FROM T WHERE Cn op V
                let t = self.any_table()?;
                let cn = self.numeric_col(t)?;
                let v = self.numeric_threshold(t, &cn.name)?;
                let op = *["<", ">"].get(self.coin(2)).unwrap();
                match self.coin(2) {
                    0 => self.lit("how many"),
                    _ => self.lit("count the"),
                }
                self.table_part(&t.schema.name, true);
                self.lit("have");
                self.column_part(&t.schema.name, &cn.name);
                self.op_part(op);
                self.number_part(&v);
                self.sql = format!(
                    "SELECT COUNT(*) FROM {} WHERE {} {} {}",
                    t.schema.name,
                    cn.name,
                    op,
                    v.render()
                );
            }
            _ => return None,
        }
        Some(true)
    }
}

/// Naive pluralization for NL table surfaces.
pub fn pluralize(word: &str) -> String {
    if word.ends_with('s') || word.ends_with("sh") || word.ends_with("ch") {
        format!("{word}es")
    } else if let Some(stem) = word.strip_suffix('y') {
        if stem.ends_with(|c: char| "aeiou".contains(c)) {
            format!("{word}s")
        } else {
            format!("{stem}ies")
        }
    } else {
        format!("{word}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{domains, generate_database, DbGenConfig};
    use rand::SeedableRng;

    fn spider_db(idx: usize) -> Database {
        generate_database(&domains()[idx], &DbGenConfig::spider(), 11)
    }

    #[test]
    fn pluralize_rules() {
        assert_eq!(pluralize("singer"), "singers");
        assert_eq!(pluralize("city"), "cities");
        assert_eq!(pluralize("boy"), "boys");
        assert_eq!(pluralize("match"), "matches");
        assert_eq!(pluralize("orders"), "orderses"); // degenerate but harmless
    }

    #[test]
    fn every_template_instantiates_on_some_domain() {
        let dbs: Vec<Database> = (0..domains().len()).map(spider_db).collect();
        let mut rng = StdRng::seed_from_u64(7);
        for id in 0..TEMPLATE_COUNT {
            let mut ok = false;
            'outer: for db in &dbs {
                for _ in 0..25 {
                    if let Some(s) = instantiate(id, db, &mut rng, false) {
                        sqlengine::execute_query(db, &s.sql)
                            .unwrap_or_else(|e| panic!("template {id} produced invalid SQL `{}`: {e}", s.sql));
                        ok = true;
                        break 'outer;
                    }
                }
            }
            assert!(ok, "template {id} never instantiated");
        }
    }

    #[test]
    fn generated_samples_execute_and_have_metadata() {
        let db = spider_db(0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = generate_samples(&db, 60, &mut rng, false);
        assert!(samples.len() >= 55, "only {} samples generated", samples.len());
        for s in &samples {
            assert!(!s.question.is_empty());
            assert!(!s.used_tables.is_empty(), "no used tables for {}", s.sql);
            assert!(sqlengine::execute_query(&db, &s.sql).is_ok());
            // every used column names a real column
            for (t, c) in &s.used_columns {
                let table = db.table(t).unwrap_or_else(|| panic!("bad table {t} in {}", s.sql));
                assert!(table.schema.column(c).is_some(), "bad column {t}.{c} in {}", s.sql);
            }
        }
    }

    #[test]
    fn hardness_distribution_covers_all_levels() {
        let db = spider_db(0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples = generate_samples(&db, 150, &mut rng, false);
        let levels: std::collections::HashSet<_> = samples.iter().map(|s| s.hardness).collect();
        assert!(levels.len() >= 3, "expected varied hardness, got {levels:?}");
    }

    #[test]
    fn bird_mode_produces_external_knowledge_sometimes() {
        let spec = &domains()[0];
        let db = generate_database(spec, &DbGenConfig::bird(), 11);
        let mut rng = StdRng::seed_from_u64(9);
        let samples = generate_samples(&db, 120, &mut rng, true);
        let with_ek = samples.iter().filter(|s| s.external_knowledge.is_some()).count();
        assert!(with_ek > 0, "no EK generated across {} samples", samples.len());
    }

    #[test]
    fn question_mentions_values_it_filters_on() {
        let db = spider_db(0);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10 {
            if let Some(s) = instantiate(5, &db, &mut rng, false) {
                assert_eq!(s.value_mentions.len(), 1);
                assert!(s.question.contains(s.value_mentions[0].text.trim_matches('\'')));
                return;
            }
        }
        panic!("template 5 never instantiated");
    }

    #[test]
    fn deterministic_given_seed() {
        let db = spider_db(1);
        let mut r1 = StdRng::seed_from_u64(21);
        let mut r2 = StdRng::seed_from_u64(21);
        let a = generate_samples(&db, 20, &mut r1, false);
        let b = generate_samples(&db, 20, &mut r2, false);
        assert_eq!(
            a.iter().map(|s| &s.sql).collect::<Vec<_>>(),
            b.iter().map(|s| &s.sql).collect::<Vec<_>>()
        );
    }
}
