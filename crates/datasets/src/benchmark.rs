//! Benchmark assembly: Spider-like and BIRD-like train/dev splits.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlengine::Database;

use crate::sample::Sample;
use crate::synth::{domains, generate_database, DbGenConfig};
use crate::templates::generate_samples;

/// A text-to-SQL benchmark: databases plus train/dev samples.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (`spider`, `bird`, ...).
    pub name: String,
    /// All databases, train and dev.
    pub databases: Vec<Database>,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Held-out dev samples (cross-domain).
    pub dev: Vec<Sample>,
}

impl Benchmark {
    /// Look up a database by id.
    pub fn database(&self, db_id: &str) -> Option<&Database> {
        self.databases.iter().find(|d| d.name == db_id)
    }

    /// All train questions (for retriever indexing).
    pub fn train_questions(&self) -> Vec<String> {
        self.train.iter().map(|s| s.question.clone()).collect()
    }
}

/// Scale knobs for benchmark construction. Defaults produce a benchmark
/// that runs the full evaluation suite in seconds; the bench harness scales
/// them up.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Database instances per domain (cross-domain coverage = domains × this).
    pub instances_per_domain: usize,
    /// Samples generated per training database.
    pub train_samples_per_db: usize,
    /// Samples generated per dev database.
    pub dev_samples_per_db: usize,
    /// Fraction of domains held out for the dev split (Spider is
    /// cross-domain: dev databases are unseen in training).
    pub dev_domain_fraction: f64,
    /// Generation seed.
    pub seed: u64,
    /// BIRD mode: ambiguous schemas, dirty values, external knowledge.
    pub bird: bool,
}

impl BenchmarkConfig {
    /// Spider-like defaults (clean schemas, small databases).
    pub fn spider(seed: u64) -> BenchmarkConfig {
        BenchmarkConfig {
            instances_per_domain: 1,
            train_samples_per_db: 40,
            dev_samples_per_db: 10,
            dev_domain_fraction: 0.25,
            seed,
            bird: false,
        }
    }

    /// BIRD-like defaults (ambiguous wide schemas, dirty values, EK).
    pub fn bird(seed: u64) -> BenchmarkConfig {
        BenchmarkConfig {
            instances_per_domain: 1,
            train_samples_per_db: 40,
            dev_samples_per_db: 10,
            dev_domain_fraction: 0.25,
            seed,
            bird: true,
        }
    }
}

/// Build a benchmark according to the config. Dev databases come from
/// held-out domains, so evaluation is cross-domain like Spider/BIRD.
pub fn build_benchmark(name: &str, cfg: &BenchmarkConfig) -> Benchmark {
    let specs = domains();
    let n_dev_domains = ((specs.len() as f64 * cfg.dev_domain_fraction).round() as usize)
        .clamp(1, specs.len().saturating_sub(1));
    // Deterministic domain split: last `n_dev_domains` domains are dev.
    let split = specs.len() - n_dev_domains;
    let db_cfg = if cfg.bird { DbGenConfig::bird() } else { DbGenConfig::spider() };

    let mut databases = Vec::new();
    let mut train = Vec::new();
    let mut dev = Vec::new();
    for (di, spec) in specs.iter().enumerate() {
        for inst in 0..cfg.instances_per_domain {
            let db_seed = cfg.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((di * 131 + inst) as u64);
            let mut db = generate_database(spec, &db_cfg, db_seed);
            if cfg.instances_per_domain > 1 {
                db.name = format!("{}_{}", spec.name, inst);
            }
            let is_dev = di >= split;
            let n = if is_dev { cfg.dev_samples_per_db } else { cfg.train_samples_per_db };
            let mut rng = StdRng::seed_from_u64(db_seed ^ 0xABCD);
            let mut samples = generate_samples(&db, n, &mut rng, cfg.bird);
            for s in &mut samples {
                s.db_id = db.name.clone();
            }
            if is_dev {
                dev.extend(samples);
            } else {
                train.extend(samples);
            }
            databases.push(db);
        }
    }
    Benchmark { name: name.to_string(), databases, train, dev }
}

/// Convenience: the default Spider-like benchmark.
pub fn spider_benchmark(seed: u64) -> Benchmark {
    build_benchmark("spider", &BenchmarkConfig::spider(seed))
}

/// Convenience: the default BIRD-like benchmark.
pub fn bird_benchmark(seed: u64) -> Benchmark {
    build_benchmark("bird", &BenchmarkConfig::bird(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spider_split_is_cross_domain() {
        let b = spider_benchmark(1);
        let train_dbs: std::collections::HashSet<_> = b.train.iter().map(|s| &s.db_id).collect();
        let dev_dbs: std::collections::HashSet<_> = b.dev.iter().map(|s| &s.db_id).collect();
        assert!(!train_dbs.is_empty() && !dev_dbs.is_empty());
        assert!(train_dbs.is_disjoint(&dev_dbs), "dev databases must be unseen");
    }

    #[test]
    fn every_sample_resolves_to_a_database() {
        let b = spider_benchmark(2);
        for s in b.train.iter().chain(&b.dev) {
            let db = b.database(&s.db_id).expect("db exists");
            assert!(sqlengine::execute_query(db, &s.sql).is_ok(), "gold fails: {}", s.sql);
        }
    }

    #[test]
    fn bird_has_knowledge_and_dirty_schemas() {
        let b = bird_benchmark(3);
        assert!(b.train.iter().chain(&b.dev).any(|s| s.external_knowledge.is_some()));
        // At least one database has a commented column.
        assert!(b
            .databases
            .iter()
            .any(|db| db.tables.iter().any(|t| t.schema.columns.iter().any(|c| c.comment.is_some()))));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = spider_benchmark(9);
        let b = spider_benchmark(9);
        assert_eq!(a.train.len(), b.train.len());
        assert_eq!(a.train[0].sql, b.train[0].sql);
        let c = spider_benchmark(10);
        assert!(a.train[0].sql != c.train[0].sql || a.train[0].question != c.train[0].question);
    }

    #[test]
    fn bird_databases_are_larger_than_spider() {
        let s = spider_benchmark(4);
        let b = bird_benchmark(4);
        let avg = |bm: &Benchmark| {
            bm.databases.iter().map(|d| d.value_count()).sum::<usize>() as f64 / bm.databases.len() as f64
        };
        assert!(avg(&b) > avg(&s) * 2.0);
    }

    #[test]
    fn instances_per_domain_multiplies_databases() {
        let mut cfg = BenchmarkConfig::spider(5);
        cfg.instances_per_domain = 2;
        cfg.train_samples_per_db = 5;
        cfg.dev_samples_per_db = 2;
        let b = build_benchmark("spider2", &cfg);
        assert_eq!(b.databases.len(), domains().len() * 2);
        // Suffixed names are unique.
        let names: std::collections::HashSet<_> = b.databases.iter().map(|d| &d.name).collect();
        assert_eq!(names.len(), b.databases.len());
    }
}
