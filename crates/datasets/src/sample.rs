//! Text-to-SQL samples with structured question parts.
//!
//! Questions are not stored as opaque strings: they are sequences of
//! [`QPart`]s recording which spans refer to tables, columns and values.
//! The robustness perturbations (Spider-Syn, Dr.Spider, ...) rewrite these
//! parts precisely instead of guessing at the surface text.

/// One building block of a question.
#[derive(Debug, Clone, PartialEq)]
pub enum QPart {
    /// Literal carrier text ("show the", "of all").
    Lit(String),
    /// A reference to a table, rendered by its NL surface.
    Table {
        /// Schema table name.
        name: String,
        /// Natural-language surface used in the question.
        nl: String,
    },
    /// A reference to a column.
    Column {
        /// Owning table.
        table: String,
        /// Schema column name.
        column: String,
        /// Natural-language surface used in the question.
        nl: String,
    },
    /// A value mentioned in the question that exists in the database.
    ValueRef {
        /// Table holding the value.
        table: String,
        /// Column holding the value.
        column: String,
        /// Surface form as it appears in the question.
        text: String,
    },
    /// A number that does NOT come from the database (LIMIT k, thresholds).
    Number {
        /// The number as written.
        text: String,
    },
    /// An aggregation keyword ("average", "total number of").
    AggWord {
        /// SQL aggregate name (`AVG`, ...).
        agg: String,
        /// Surface wording.
        nl: String,
    },
    /// A comparison keyword ("more than", "at most").
    OpWord {
        /// SQL operator (`>`, `<=`, ...).
        op: String,
        /// Surface wording.
        nl: String,
    },
}

impl QPart {
    /// A literal carrier-text part.
    pub fn lit(s: &str) -> QPart {
        QPart::Lit(s.to_string())
    }

    /// The rendered surface of this part.
    pub fn surface(&self) -> &str {
        match self {
            QPart::Lit(s) => s,
            QPart::Table { nl, .. } => nl,
            QPart::Column { nl, .. } => nl,
            QPart::ValueRef { text, .. } => text,
            QPart::Number { text } => text,
            QPart::AggWord { nl, .. } => nl,
            QPart::OpWord { nl, .. } => nl,
        }
    }
}

/// Render parts into a question sentence.
pub fn render_question(parts: &[QPart]) -> String {
    let mut out = String::new();
    for p in parts {
        let s = p.surface();
        if s.is_empty() {
            continue;
        }
        if !out.is_empty() && !s.starts_with(['?', ',', '.']) {
            out.push(' ');
        }
        out.push_str(s);
    }
    let mut q = out.trim().to_string();
    if !q.ends_with('?') && !q.ends_with('.') {
        q.push('?');
    }
    // Capitalize the first letter.
    let mut chars = q.chars();
    match chars.next() {
        Some(f) => f.to_uppercase().collect::<String>() + chars.as_str(),
        None => q,
    }
}

/// SQL hardness following Spider's 4-level convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hardness {
    /// Single-table, no aggregation tricks.
    Easy,
    /// Grouping, single joins, simple predicates.
    Medium,
    /// Joins with grouping, subqueries.
    Hard,
    /// Set operations, nested subqueries, multi-hop joins.
    Extra,
}

impl Hardness {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Hardness::Easy => "easy",
            Hardness::Medium => "medium",
            Hardness::Hard => "hard",
            Hardness::Extra => "extra",
        }
    }

    /// Inverse of [`Hardness::label`] (used when reloading journaled
    /// evaluation records).
    pub fn from_label(label: &str) -> Option<Hardness> {
        match label {
            "easy" => Some(Hardness::Easy),
            "medium" => Some(Hardness::Medium),
            "hard" => Some(Hardness::Hard),
            "extra" => Some(Hardness::Extra),
            _ => None,
        }
    }
}

/// A database value mentioned by the question.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueMention {
    /// Table holding the value.
    pub table: String,
    /// Column holding the value.
    pub column: String,
    /// Surface form in the question.
    pub text: String,
}

/// One text-to-SQL sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Database this sample is asked over.
    pub db_id: String,
    /// Rendered question text.
    pub question: String,
    /// Structured question parts (basis of `question` and perturbations).
    pub question_parts: Vec<QPart>,
    /// Gold SQL text.
    pub sql: String,
    /// Which template generated the sample.
    pub template_id: usize,
    /// Spider hardness level of the gold SQL.
    pub hardness: Hardness,
    /// Ground-truth schema items (for schema-classifier supervision).
    pub used_tables: Vec<String>,
    /// Ground-truth `(table, column)` pairs the gold SQL touches.
    pub used_columns: Vec<(String, String)>,
    /// Values the question mentions (for value-retriever diagnostics).
    pub value_mentions: Vec<ValueMention>,
    /// BIRD-style external knowledge, when available.
    pub external_knowledge: Option<String>,
}

impl Sample {
    /// Re-render `question` from `question_parts` (after perturbation).
    pub fn refresh_question(&mut self) {
        self.question = render_question(&self.question_parts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_basics() {
        let parts = vec![
            QPart::lit("show the"),
            QPart::Column { table: "singer".into(), column: "name".into(), nl: "name".into() },
            QPart::lit("of all"),
            QPart::Table { name: "singer".into(), nl: "singers".into() },
        ];
        assert_eq!(render_question(&parts), "Show the name of all singers?");
    }

    #[test]
    fn punctuation_attaches_without_space() {
        let parts = vec![QPart::lit("how many"), QPart::lit("?")];
        assert_eq!(render_question(&parts), "How many?");
    }

    #[test]
    fn empty_parts_skipped() {
        let parts = vec![QPart::lit(""), QPart::lit("list"), QPart::lit("")];
        assert_eq!(render_question(&parts), "List?");
    }

    #[test]
    fn hardness_labels() {
        assert_eq!(Hardness::Extra.label(), "extra");
        assert!(Hardness::Easy < Hardness::Extra);
    }
}
