//! Word lists and synonym tables used by the synthetic benchmark
//! generators and the robustness perturbations.

/// Person given names used to populate name-like columns.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda", "David",
    "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica", "Thomas",
    "Sarah", "Charles", "Karen", "Hana", "Tomas", "Marta", "Jiri", "Elena", "Omar", "Aisha",
    "Wei", "Ming", "Yuki", "Hiro", "Lars", "Ingrid", "Pedro", "Lucia", "Ivan", "Olga",
];

/// Person family names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis", "Martinez",
    "Lopez", "Wilson", "Anderson", "Taylor", "Thomas", "Moore", "Jackson", "White", "Harris",
    "Novak", "Svoboda", "Dvorak", "Kim", "Chen", "Tanaka", "Muller", "Schmidt", "Rossi",
    "Silva", "Santos", "Petrov", "Ivanov", "Kowalski", "Nagy", "Horvat", "Yilmaz", "Haddad",
];

/// City names.
pub const CITIES: &[&str] = &[
    "Springfield", "Riverton", "Lakewood", "Fairview", "Georgetown", "Ashland", "Milton",
    "Oakdale", "Bristol", "Clinton", "Dayton", "Florence", "Greenville", "Hudson", "Jesenik",
    "Kingston", "Lebanon", "Madison", "Newport", "Oxford", "Praha", "Quincy", "Richmond",
    "Salem", "Troy", "Union", "Vernon", "Winchester", "York", "Zlin", "Brno", "Ostrava",
];

/// Country names.
pub const COUNTRIES: &[&str] = &[
    "United States", "Canada", "France", "Germany", "Japan", "Brazil", "Australia", "India",
    "Netherlands", "Spain", "Italy", "Mexico", "Sweden", "Norway", "Poland", "Czechia",
    "Portugal", "Austria", "Belgium", "Denmark", "Finland", "Greece", "Hungary", "Ireland",
];

/// Company-ish names for org columns.
pub const ORG_WORDS: &[&str] = &[
    "Acme", "Globex", "Initech", "Umbrella", "Stark", "Wayne", "Pied", "Hooli", "Vandelay",
    "Wonka", "Cyberdyne", "Tyrell", "Aperture", "BlueSun", "Gringotts", "Monarch", "Nakatomi",
    "Oscorp", "Prestige", "Sirius", "Zorg", "Helix", "Vertex", "Quanta", "Nimbus",
];

/// Adjective-ish words for product/venue names.
pub const NAME_ADJECTIVES: &[&str] = &[
    "Golden", "Silver", "Crimson", "Royal", "Grand", "Little", "Old", "New", "Bright",
    "Silent", "Wild", "Iron", "Emerald", "Amber", "Swift", "Gentle", "Brave", "Lucky",
];

/// Noun-ish words for product/venue names.
pub const NAME_NOUNS: &[&str] = &[
    "Lion", "Eagle", "River", "Harbor", "Garden", "Bridge", "Tower", "Falcon", "Crown",
    "Meadow", "Summit", "Canyon", "Willow", "Anchor", "Beacon", "Compass", "Lantern", "Orchid",
];

/// Music/art genres.
pub const GENRES: &[&str] = &[
    "rock", "pop", "jazz", "classical", "folk", "electronic", "country", "blues", "metal",
    "reggae", "soul", "disco",
];

/// Academic fields for the Aminer-like dataset.
pub const FIELDS: &[&str] = &[
    "databases", "machine learning", "computer vision", "networks", "security", "graphics",
    "theory", "robotics", "bioinformatics", "data mining", "nlp", "systems",
];

/// A synonym table: maps a common schema word to alternatives. Used by
/// Spider-Syn / Dr.Spider schema-synonym and question perturbations.
pub const SYNONYMS: &[(&str, &[&str])] = &[
    ("name", &["title", "label", "designation"]),
    ("age", &["years", "year of age"]),
    ("country", &["nation", "homeland"]),
    ("city", &["town", "municipality"]),
    ("salary", &["pay", "wage", "earnings"]),
    ("capacity", &["size", "seating", "volume"]),
    ("price", &["cost", "amount charged"]),
    ("year", &["yr", "calendar year"]),
    ("singer", &["vocalist", "performer"]),
    ("student", &["pupil", "learner"]),
    ("teacher", &["instructor", "educator"]),
    ("employee", &["worker", "staff member"]),
    ("customer", &["client", "patron"]),
    ("order", &["purchase", "transaction"]),
    ("average", &["mean", "typical"]),
    ("count", &["number", "total number"]),
    ("maximum", &["highest", "largest", "greatest"]),
    ("minimum", &["lowest", "smallest", "least"]),
    ("show", &["list", "display", "give"]),
    ("find", &["locate", "identify", "retrieve"]),
    ("department", &["division", "unit"]),
    ("budget", &["funds", "allocation"]),
    ("grade", &["score", "mark"]),
    ("title", &["heading", "name"]),
    ("gender", &["sex"]),
    ("stadium", &["arena", "venue"]),
    ("concert", &["show", "performance"]),
    ("song", &["track", "tune"]),
    ("movie", &["film", "picture"]),
    ("director", &["filmmaker"]),
    ("author", &["writer"]),
    ("paper", &["article", "publication"]),
    ("branch", &["office", "location"]),
    ("balance", &["amount held", "funds remaining"]),
    ("amount", &["sum", "quantity"]),
    ("date", &["day", "time"]),
    ("population", &["number of residents", "inhabitants"]),
    ("weight", &["mass", "heaviness"]),
    ("height", &["stature", "tallness"]),
    ("rating", &["score", "rank"]),
];

/// Abbreviation table used by Dr.Spider's schema-abbreviation perturbation
/// and by BIRD-style ambiguous column generation.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("name", "nm"),
    ("number", "no"),
    ("average", "avg"),
    ("department", "dept"),
    ("quantity", "qty"),
    ("amount", "amt"),
    ("address", "addr"),
    ("account", "acct"),
    ("balance", "bal"),
    ("customer", "cust"),
    ("employee", "emp"),
    ("manager", "mgr"),
    ("location", "loc"),
    ("description", "desc"),
    ("category", "cat"),
    ("reference", "ref"),
    ("transaction", "txn"),
    ("percent", "pct"),
    ("maximum", "max"),
    ("minimum", "min"),
    ("population", "pop"),
    ("organization", "org"),
    ("student", "stu"),
    ("country", "ctry"),
    ("salary", "sal"),
    ("payment", "pmt"),
    ("revenue", "rev"),
    ("identifier", "id"),
    ("year", "yr"),
    ("month", "mo"),
];

/// Natural-language aliases of coded database values. BIRD-style questions
/// may mention the alias ("women") while the database stores the code
/// ('F'); external knowledge spells out the mapping.
pub const VALUE_ALIASES: &[(&str, &str)] = &[
    ("F", "female"),
    ("M", "male"),
    ("T", "true"),
    ("dog", "canine"),
    ("cat", "feline"),
    ("electronics", "electronic goods"),
    ("grocery", "groceries"),
    ("italian", "Italian cuisine"),
    ("japanese", "Japanese cuisine"),
    ("rock", "rock music"),
    ("pop", "pop music"),
];

/// Alias of a coded value, if known.
pub fn value_alias(value: &str) -> Option<&'static str> {
    VALUE_ALIASES.iter().find(|(v, _)| *v == value).map(|(_, a)| *a)
}

/// Inverse alias lookup: the stored code for an NL phrase.
pub fn value_code(alias: &str) -> Option<&'static str> {
    VALUE_ALIASES.iter().find(|(_, a)| *a == alias).map(|(v, _)| *v)
}

/// Look up synonyms of a word (lower-case), if any.
pub fn synonyms_of(word: &str) -> Option<&'static [&'static str]> {
    SYNONYMS
        .iter()
        .find(|(w, _)| *w == word)
        .map(|(_, syns)| *syns)
}

/// Abbreviate a word if the table knows it.
pub fn abbreviation_of(word: &str) -> Option<&'static str> {
    ABBREVIATIONS.iter().find(|(w, _)| *w == word).map(|(_, a)| *a)
}

/// Expansion: inverse abbreviation lookup.
pub fn expansion_of(abbrev: &str) -> Option<&'static str> {
    ABBREVIATIONS.iter().find(|(_, a)| *a == abbrev).map(|(w, _)| *w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonym_lookup() {
        assert!(synonyms_of("name").unwrap().contains(&"title"));
        assert!(synonyms_of("zzz").is_none());
    }

    #[test]
    fn abbreviation_roundtrip() {
        assert_eq!(abbreviation_of("department"), Some("dept"));
        assert_eq!(expansion_of("dept"), Some("department"));
    }

    #[test]
    fn word_lists_nonempty_and_distinct() {
        for list in [FIRST_NAMES, LAST_NAMES, CITIES, COUNTRIES, ORG_WORDS] {
            assert!(list.len() >= 20);
            let set: std::collections::HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len());
        }
    }

    #[test]
    fn synonyms_never_equal_headword() {
        for (word, syns) in SYNONYMS {
            for s in *syns {
                assert_ne!(word, s);
            }
        }
    }
}
