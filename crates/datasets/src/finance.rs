//! Bank-Financials: the paper's finance-domain dataset (§9.1.1).
//!
//! Four tables, the largest with 65 columns of abbreviated financial
//! metrics (each carrying an explanatory comment), mirroring the schema
//! ambiguity challenge Figure 2 illustrates. A small pool of hand-written
//! seed (question, SQL) pairs plays the role of the 30 manually annotated
//! real-user samples that the bi-directional augmentation starts from, and
//! a template-generated test set stands in for the 91 annotated real
//! questions.

use rand::rngs::StdRng;
use rand::SeedableRng;

use sqlengine::{Column, Database, DataType, TableSchema, Value};

use crate::sample::{render_question, Hardness, QPart, Sample, ValueMention};
use crate::templates::generate_samples;

/// Abbreviated financial-metric columns of the wide `corp_info` table:
/// (column name, comment). 60 metrics + 5 identity columns = 65 columns.
pub const METRICS: &[(&str, &str)] = &[
    ("roa", "return on assets"),
    ("roe", "return on equity"),
    ("nim", "net interest margin"),
    ("npl_ratio", "non-performing loan ratio"),
    ("car", "capital adequacy ratio"),
    ("ldr", "loan to deposit ratio"),
    ("cir", "cost to income ratio"),
    ("eps", "earnings per share"),
    ("bvps", "book value per share"),
    ("dps", "dividend per share"),
    ("rev_yoy", "revenue year-over-year growth percent"),
    ("np_yoy", "net profit year-over-year growth percent"),
    ("ta", "total assets in millions"),
    ("tl", "total liabilities in millions"),
    ("te", "total equity in millions"),
    ("ti", "total income in millions"),
    ("nii", "net interest income in millions"),
    ("nfi", "net fee income in millions"),
    ("opex", "operating expenses in millions"),
    ("ppop", "pre-provision operating profit in millions"),
    ("llp", "loan loss provisions in millions"),
    ("npat", "net profit after tax in millions"),
    ("gl", "gross loans in millions"),
    ("td", "total deposits in millions"),
    ("cash_ta", "cash to total assets percent"),
    ("liq_ratio", "liquidity ratio"),
    ("lev_ratio", "leverage ratio"),
    ("t1_ratio", "tier one capital ratio"),
    ("rwa", "risk weighted assets in millions"),
    ("cost_risk", "cost of risk percent"),
    ("cov_ratio", "npl coverage ratio"),
    ("casa", "current and savings account ratio"),
    ("yoa", "yield on assets"),
    ("cof", "cost of funds"),
    ("spread", "interest rate spread"),
    ("fee_ratio", "fee income ratio"),
    ("trade_inc", "trading income in millions"),
    ("fx_inc", "foreign exchange income in millions"),
    ("staff_cnt", "number of staff"),
    ("branch_cnt", "number of branches"),
    ("atm_cnt", "number of ATMs"),
    ("cust_cnt", "number of customers in thousands"),
    ("mcap", "market capitalization in millions"),
    ("pe", "price to earnings ratio"),
    ("pb", "price to book ratio"),
    ("div_yield", "dividend yield percent"),
    ("payout", "dividend payout ratio"),
    ("beta", "stock beta"),
    ("vol_30d", "30-day stock volatility"),
    ("ret_1y", "one-year stock return percent"),
    ("esg", "ESG score"),
    ("cred_rat", "credit rating score"),
    ("audit_fee", "annual audit fee in thousands"),
    ("tax_rate", "effective tax rate percent"),
    ("rnd_exp", "research and development expense in millions"),
    ("it_exp", "information technology expense in millions"),
    ("mkt_exp", "marketing expense in millions"),
    ("sub_cnt", "number of subsidiaries"),
    ("ovs_ratio", "overseas revenue ratio percent"),
    ("grn_loans", "green loans in millions"),
];

/// Build the Bank-Financials database (deterministic in `seed`).
pub fn bank_financials_db(seed: u64) -> Database {
    use rand::RngExt;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new("bank_financials");

    // corp_info: 5 identity columns + 60 metric columns = 65.
    let mut cols = vec![
        Column::new("corp_id", DataType::Integer).primary_key(),
        Column::new("corp_name", DataType::Text),
        Column::new("industry", DataType::Text),
        Column::new("city", DataType::Text),
        Column::new("listed_year", DataType::Integer),
    ];
    for (name, comment) in METRICS {
        cols.push(Column::new(*name, DataType::Real).with_comment(*comment));
    }
    assert_eq!(cols.len(), 65);
    db.create_table(TableSchema::new("corp_info", cols)).unwrap();

    db.create_table(
        TableSchema::new(
            "client",
            vec![
                Column::new("client_id", DataType::Integer).primary_key(),
                Column::new("name", DataType::Text),
                Column::new("gender", DataType::Text).with_comment("client gender, F for female and M for male"),
                Column::new("city", DataType::Text),
                Column::new("corp_id", DataType::Integer),
            ],
        )
        .with_foreign_key("corp_id", "corp_info", "corp_id"),
    )
    .unwrap();

    db.create_table(
        TableSchema::new(
            "account",
            vec![
                Column::new("account_id", DataType::Integer).primary_key(),
                Column::new("client_id", DataType::Integer),
                Column::new("balance", DataType::Real),
                Column::new("open_date", DataType::Text).with_comment("account opening date, YYYY-MM-DD"),
                Column::new("branch", DataType::Text).with_comment("branch city where the account was opened"),
            ],
        )
        .with_foreign_key("client_id", "client", "client_id"),
    )
    .unwrap();

    db.create_table(
        TableSchema::new(
            "txn",
            vec![
                Column::new("txn_id", DataType::Integer).primary_key(),
                Column::new("account_id", DataType::Integer),
                Column::new("amount", DataType::Real),
                Column::new("txn_date", DataType::Text).with_comment("transaction date, YYYY-MM-DD"),
                Column::new("txn_type", DataType::Text).with_comment("transaction type: deposit, withdrawal or transfer"),
            ],
        )
        .with_foreign_key("account_id", "account", "account_id"),
    )
    .unwrap();

    // Populate.
    let industries = ["banking", "insurance", "securities", "asset management", "fintech"];
    let n_corps = 40;
    for i in 0..n_corps {
        let mut row: Vec<Value> = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!(
                "{} {}",
                crate::lexicon::ORG_WORDS[rng.random_range(0..crate::lexicon::ORG_WORDS.len())],
                ["Bank", "Financial", "Holdings", "Capital"][rng.random_range(0..4usize)]
            )),
            Value::Text(industries[rng.random_range(0..industries.len())].to_string()),
            Value::Text(crate::lexicon::CITIES[rng.random_range(0..crate::lexicon::CITIES.len())].to_string()),
            Value::Integer(rng.random_range(1980..=2020)),
        ];
        for _ in METRICS {
            row.push(Value::Real((rng.random_range(0.0..5_000.0f64) * 100.0).round() / 100.0));
        }
        db.table_mut("corp_info").unwrap().insert(row).unwrap();
    }
    let n_clients = 300;
    for i in 0..n_clients {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Text(format!(
                "{} {}",
                crate::lexicon::FIRST_NAMES[rng.random_range(0..crate::lexicon::FIRST_NAMES.len())],
                crate::lexicon::LAST_NAMES[rng.random_range(0..crate::lexicon::LAST_NAMES.len())]
            )),
            Value::Text(if rng.random_range(0..2) == 0 { "F" } else { "M" }.to_string()),
            Value::Text(crate::lexicon::CITIES[rng.random_range(0..crate::lexicon::CITIES.len())].to_string()),
            Value::Integer(rng.random_range(1..=n_corps as i64)),
        ];
        db.table_mut("client").unwrap().insert(row).unwrap();
    }
    let n_accounts = 500;
    for i in 0..n_accounts {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Integer(rng.random_range(1..=n_clients as i64)),
            Value::Real((rng.random_range(0.0..250_000.0f64) * 100.0).round() / 100.0),
            Value::Text(format!(
                "{:04}-{:02}-{:02}",
                rng.random_range(2000..=2023),
                rng.random_range(1..=12),
                rng.random_range(1..=28)
            )),
            Value::Text(crate::lexicon::CITIES[rng.random_range(0..crate::lexicon::CITIES.len())].to_string()),
        ];
        db.table_mut("account").unwrap().insert(row).unwrap();
    }
    for i in 0..1_500 {
        let row = vec![
            Value::Integer(i as i64 + 1),
            Value::Integer(rng.random_range(1..=n_accounts as i64)),
            Value::Real((rng.random_range(1.0..50_000.0f64) * 100.0).round() / 100.0),
            Value::Text(format!(
                "{:04}-{:02}-{:02}",
                rng.random_range(2015..=2023),
                rng.random_range(1..=12),
                rng.random_range(1..=28)
            )),
            Value::Text(["deposit", "withdrawal", "transfer"][rng.random_range(0..3usize)].to_string()),
        ];
        db.table_mut("txn").unwrap().insert(row).unwrap();
    }
    db
}

/// Hand-written seed questions — the "few genuine user queries" that §7's
/// question-to-SQL augmentation direction starts from.
pub fn seed_samples(db: &Database) -> Vec<Sample> {
    let pairs: &[(&str, &str)] = &[
        ("How many clients do we have?", "SELECT COUNT(*) FROM client"),
        (
            "How many clients opened their accounts in Jesenik branch were women?",
            "SELECT COUNT(*) FROM client AS T1 JOIN account AS T2 ON T1.client_id = T2.client_id WHERE T2.branch = 'Jesenik' AND T1.gender = 'F'",
        ),
        (
            "What is the average balance across all accounts?",
            "SELECT AVG(balance) FROM account",
        ),
        (
            "Which company has the highest return on assets?",
            "SELECT corp_name FROM corp_info ORDER BY roa DESC LIMIT 1",
        ),
        (
            "List the names of companies in the banking industry.",
            "SELECT corp_name FROM corp_info WHERE industry = 'banking'",
        ),
        (
            "What is the total deposit amount recorded in transactions?",
            "SELECT SUM(amount) FROM txn WHERE txn_type = 'deposit'",
        ),
        (
            "Show the name of each client with an account balance above 100000.",
            "SELECT DISTINCT T1.name FROM client AS T1 JOIN account AS T2 ON T1.client_id = T2.client_id WHERE T2.balance > 100000",
        ),
        (
            "How many companies are listed after 2010?",
            "SELECT COUNT(*) FROM corp_info WHERE listed_year > 2010",
        ),
        (
            "What is the average net interest margin of securities companies?",
            "SELECT AVG(nim) FROM corp_info WHERE industry = 'securities'",
        ),
        (
            "Which branch has the most accounts?",
            "SELECT branch FROM account GROUP BY branch ORDER BY COUNT(*) DESC LIMIT 1",
        ),
        (
            "Count the transactions per transaction type.",
            "SELECT txn_type, COUNT(*) FROM txn GROUP BY txn_type",
        ),
        (
            "What is the capital adequacy ratio of the company with the largest total assets?",
            "SELECT car FROM corp_info ORDER BY ta DESC LIMIT 1",
        ),
        (
            "List the cities of clients whose company is in the fintech industry.",
            "SELECT DISTINCT T1.city FROM client AS T1 JOIN corp_info AS T2 ON T1.corp_id = T2.corp_id WHERE T2.industry = 'fintech'",
        ),
        (
            "Find clients who have no account.",
            "SELECT name FROM client WHERE client_id NOT IN (SELECT client_id FROM account WHERE client_id IS NOT NULL)",
        ),
        (
            "What is the maximum single withdrawal amount?",
            "SELECT MAX(amount) FROM txn WHERE txn_type = 'withdrawal'",
        ),
    ];
    pairs
        .iter()
        .map(|(q, sql)| manual_sample(db, q, sql))
        .collect()
}

/// A manually annotated sample (question parts are a single literal).
pub fn manual_sample(db: &Database, question: &str, sql: &str) -> Sample {
    debug_assert!(
        sqlengine::execute_query(db, sql).is_ok(),
        "seed SQL must execute: {sql}"
    );
    let parts = vec![QPart::lit(question.trim_end_matches(['?', '.']))];
    Sample {
        db_id: db.name.clone(),
        question: render_question(&parts),
        question_parts: parts,
        sql: sql.to_string(),
        template_id: usize::MAX, // not template-generated
        hardness: Hardness::Medium,
        used_tables: Vec::new(),
        used_columns: Vec::new(),
        value_mentions: Vec::<ValueMention>::new(),
        external_knowledge: None,
    }
}

/// The held-out test set: template questions standing in for the 91
/// manually annotated real-user questions.
pub fn test_samples(db: &Database, n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    generate_samples(db, n, &mut rng, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corp_info_has_65_columns() {
        let db = bank_financials_db(1);
        assert_eq!(db.table("corp_info").unwrap().schema.columns.len(), 65);
        assert_eq!(db.tables.len(), 4);
    }

    #[test]
    fn metric_columns_are_commented() {
        let db = bank_financials_db(1);
        let t = db.table("corp_info").unwrap();
        let c = t.schema.column("roa").unwrap();
        assert_eq!(c.comment.as_deref(), Some("return on assets"));
    }

    #[test]
    fn seed_samples_execute() {
        let db = bank_financials_db(1);
        let seeds = seed_samples(&db);
        assert!(seeds.len() >= 15);
        for s in &seeds {
            let r = sqlengine::execute_query(&db, &s.sql);
            assert!(r.is_ok(), "{} -> {:?}", s.sql, r.err());
        }
    }

    #[test]
    fn jesenik_example_finds_women() {
        // The paper's §6.2 running example must be answerable.
        let db = bank_financials_db(1);
        let r = sqlengine::execute_query(
            &db,
            "SELECT COUNT(*) FROM client AS T1 JOIN account AS T2 ON T1.client_id = T2.client_id \
             WHERE T2.branch = 'Jesenik' AND T1.gender = 'F'",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn test_set_generates() {
        let db = bank_financials_db(1);
        let tests = test_samples(&db, 40, 9);
        assert!(tests.len() >= 35);
        for s in &tests {
            assert!(sqlengine::execute_query(&db, &s.sql).is_ok());
        }
    }

    #[test]
    fn deterministic() {
        let a = bank_financials_db(3);
        let b = bank_financials_db(3);
        assert_eq!(a.table("client").unwrap().rows, b.table("client").unwrap().rows);
    }
}
