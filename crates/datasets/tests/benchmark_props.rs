//! Property tests over benchmark generation: every generated sample is
//! internally consistent, and every perturbation keeps gold SQL executable
//! on its databases.

use proptest::prelude::*;

use codes_datasets::{
    build_drspider_set, build_variant, spider_benchmark, DrSpiderSet, SpiderVariant,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed yields a structurally sound benchmark.
    #[test]
    fn benchmarks_are_consistent_for_any_seed(seed in 0u64..10_000) {
        let mut cfg = codes_datasets::BenchmarkConfig::spider(seed);
        cfg.train_samples_per_db = 4;
        cfg.dev_samples_per_db = 3;
        let b = codes_datasets::build_benchmark("prop", &cfg);
        prop_assert!(!b.train.is_empty());
        prop_assert!(!b.dev.is_empty());
        for s in b.train.iter().chain(&b.dev) {
            let db = b.database(&s.db_id).expect("sample db exists");
            // Gold executes.
            prop_assert!(sqlengine::execute_query(db, &s.sql).is_ok(), "gold fails: {}", s.sql);
            // Metadata refers to real schema items.
            for t in &s.used_tables {
                prop_assert!(db.table(t).is_some(), "bad used_table {t}");
            }
            for (t, c) in &s.used_columns {
                prop_assert!(
                    db.table(t).map(|tb| tb.schema.column(c).is_some()).unwrap_or(false),
                    "bad used_column {t}.{c}"
                );
            }
            // Question renders from its parts.
            let mut s2 = s.clone();
            s2.refresh_question();
            prop_assert_eq!(&s2.question, &s.question);
        }
    }

    /// Spider variants keep gold SQL fixed and executable.
    #[test]
    fn variants_preserve_gold(seed in 0u64..1_000) {
        let base = spider_benchmark(seed % 7 + 1);
        for v in [SpiderVariant::Syn, SpiderVariant::Realistic, SpiderVariant::DomainKnowledge] {
            let out = build_variant(&base, v, seed);
            prop_assert_eq!(out.len(), base.dev.len());
            for (p, o) in out.iter().zip(&base.dev) {
                prop_assert_eq!(&p.sql, &o.sql);
            }
        }
    }
}

#[test]
fn drspider_sets_stay_aligned_across_seeds() {
    let base = spider_benchmark(3);
    for seed in [1u64, 99, 12345] {
        for set in [
            DrSpiderSet::SchemaSynonym,
            DrSpiderSet::SchemaAbbreviation,
            DrSpiderSet::DbContentEquivalence,
            DrSpiderSet::Multitype,
        ] {
            let built = build_drspider_set(&base, set, seed);
            for s in &built.samples {
                let db = built
                    .databases
                    .iter()
                    .find(|d| d.name == s.db_id)
                    .expect("db present");
                assert!(
                    sqlengine::execute_query(db, &s.sql).is_ok(),
                    "{} seed {seed}: gold `{}` fails",
                    set.name(),
                    s.sql
                );
            }
        }
    }
}
